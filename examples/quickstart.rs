//! Quickstart: train Vero on a synthetic binary-classification workload,
//! evaluate, inspect the cost breakdown, and round-trip the model to disk.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gbdt_data::synthetic::SyntheticConfig;
use vero::{Vero, VeroConfig, VeroModel};

fn main() {
    // 1. A 10K x 200 sparse binary dataset (20% density), like a small
    //    high-dimensional workload.
    let dataset = SyntheticConfig {
        n_instances: 10_000,
        n_features: 200,
        n_classes: 2,
        density: 0.2,
        label_noise: 0.05,
        seed: 42,
        name: "quickstart".into(),
        ..Default::default()
    }
    .generate();
    let (train, valid) = dataset.split_validation(0.2);
    println!(
        "dataset: {} train / {} valid instances, {} features",
        train.n_instances(),
        valid.n_instances(),
        train.n_features()
    );

    // 2. Configure: 4 workers, 30 trees of 6 layers. Vero defaults to the
    //    greedy-balanced column grouping and the blockified transform.
    let config = VeroConfig::builder()
        .workers(4)
        .n_trees(30)
        .n_layers(6)
        .learning_rate(0.2)
        .threads(2) // intra-worker threads (0 = auto, the default)
        .build()
        .expect("valid config");

    // 3. Train. The outcome carries the model plus per-tree and per-worker
    //    cost accounting.
    let outcome = Vero::fit(&config, &train);
    let eval = outcome.model.evaluate(&valid);
    println!(
        "validation AUC = {:.4}, accuracy = {:.4}",
        eval.auc.unwrap(),
        eval.accuracy.unwrap()
    );
    let total_comp: f64 = outcome.per_tree.iter().map(|t| t.comp_seconds).sum();
    let total_comm: f64 = outcome.per_tree.iter().map(|t| t.comm_seconds).sum();
    println!(
        "training cost: {:.2}s computation + {:.3}s modelled communication; {} bytes moved",
        total_comp,
        total_comm,
        outcome.stats.total_bytes_sent()
    );

    // 4. Single-instance prediction: sparse (feature, value) pairs.
    let csr = valid.features.to_csr();
    let (feats, vals) = csr.row(0);
    let p = outcome.model.predict(feats, vals);
    println!("P(class 1 | first validation row) = {:.4} (label {})", p[0], valid.labels[0]);

    // 5. Save and reload.
    let path = std::env::temp_dir().join("vero-quickstart.json");
    outcome.model.save(&path).expect("model saves");
    let reloaded = VeroModel::load(&path).expect("model loads");
    assert_eq!(reloaded.predict(feats, vals), p);
    println!("model saved to {} and reloaded: identical predictions", path.display());
}
