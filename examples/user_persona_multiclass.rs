//! User-persona multi-classification — the paper's §6 "Age" scenario.
//!
//! Tencent's Age workload classifies 48M users into 9 age ranges from 330K
//! sparse behavioural features. This example runs a scaled stand-in
//! (20K × 2000, 9 classes) and demonstrates the case the paper built Vero
//! for: multi-class gradients inflate histograms by C, so horizontal
//! partitioning drowns in aggregation traffic while Vero's placement
//! bitmaps don't grow at all. Both systems train; the cost table prints the
//! comparison, and the convergence curve shows accuracy vs time.
//!
//! ```sh
//! cargo run --release --example user_persona_multiclass
//! ```

use gbdt_cluster::Cluster;
use gbdt_core::{Objective, TrainConfig};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_quadrants::{qd2, qd4, Aggregation};
use vero::report::convergence_curve;
use vero::system::VeroModel;

fn main() {
    let n_classes = 9;
    let dataset = SyntheticConfig {
        n_instances: 20_000,
        n_features: 2_000,
        n_classes,
        density: 0.05, // ~100 behavioural tags per user
        label_noise: 0.05,
        seed: 2019,
        name: "age-standin".into(),
        ..Default::default()
    }
    .generate();
    let (train, valid) = dataset.split_validation(0.2);
    println!(
        "user persona: {} users, {} features, {} age ranges",
        train.n_instances(),
        train.n_features(),
        n_classes
    );

    let config = TrainConfig::builder()
        .n_trees(10)
        .n_layers(6)
        .objective(Objective::Softmax { n_classes })
        .build()
        .expect("valid config");
    let cluster = Cluster::new(8);

    println!("\n{:<28}{:>12}{:>12}{:>14}{:>12}", "system", "comp s/tree", "comm s/tree", "hist MB/wk", "accuracy");
    for (name, result) in [
        ("QD2 horizontal+row", qd2::train(&cluster, &train, &config, Aggregation::ReduceScatter)),
        ("Vero vertical+row", qd4::train(&cluster, &train, &config)),
    ] {
        let eval = result.model.evaluate(&valid);
        println!(
            "{:<28}{:>12.3}{:>12.3}{:>14.1}{:>12.4}",
            name,
            result.mean_tree_comp_seconds(),
            result.mean_tree_comm_seconds(),
            result.stats.max_histogram_bytes() as f64 / 1e6,
            eval.accuracy.unwrap()
        );
        if name.starts_with("Vero") {
            let outcome = vero::TrainOutcome {
                model: VeroModel { inner: result.model },
                per_tree: result.per_tree,
                stats: result.stats,
            };
            println!("\nVero convergence (accuracy vs cumulative seconds):");
            for point in convergence_curve(&outcome, &valid) {
                println!(
                    "  {:>2} trees  {:>7.2}s  accuracy {:.4}",
                    point.n_trees,
                    point.seconds,
                    point.eval.accuracy.unwrap()
                );
            }
        }
    }
}
