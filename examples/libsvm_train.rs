//! Train Vero on a LIBSVM-format file — the format the paper's public
//! datasets (SUSY, Higgs, RCV1, …) ship in.
//!
//! ```sh
//! cargo run --release --example libsvm_train -- path/to/data.libsvm [n_classes]
//! ```
//!
//! Without arguments, a small demo file is generated, trained on, and the
//! model is written next to it.

use gbdt_data::libsvm;
use gbdt_data::synthetic::SyntheticConfig;
use vero::{Vero, VeroConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let (path, n_classes) = match args.next() {
        Some(p) => {
            let classes = args.next().map(|c| c.parse().expect("numeric class count")).unwrap_or(2);
            (std::path::PathBuf::from(p), classes)
        }
        None => {
            // Demo: write a synthetic dataset out as LIBSVM, then read it
            // back like any external file.
            let path = std::env::temp_dir().join("vero-demo.libsvm");
            let ds = SyntheticConfig {
                n_instances: 5_000,
                n_features: 100,
                density: 0.3,
                seed: 77,
                ..Default::default()
            }
            .generate();
            let mut file = std::fs::File::create(&path).expect("demo file creates");
            libsvm::write_to(&mut file, &ds).expect("demo file writes");
            println!("no input given; wrote a demo dataset to {}", path.display());
            (path, 2)
        }
    };

    let dataset = libsvm::read_file(&path, n_classes, None).expect("readable LIBSVM file");
    println!(
        "loaded {}: {} instances, {} features, {} classes",
        path.display(),
        dataset.n_instances(),
        dataset.n_features(),
        dataset.n_classes
    );
    let (train, valid) = dataset.split_validation(0.2);

    let objective = match n_classes {
        0 => vero::Objective::SquaredError,
        2 => vero::Objective::Logistic,
        c => vero::Objective::Softmax { n_classes: c },
    };
    let config = VeroConfig::builder()
        .workers(4)
        .n_trees(20)
        .n_layers(6)
        .objective(objective)
        .build()
        .expect("valid config");
    let outcome = Vero::fit(&config, &train);
    let eval = outcome.model.evaluate(&valid);
    match (eval.auc, eval.accuracy, eval.rmse) {
        (Some(auc), _, _) => println!("validation AUC = {auc:.4}"),
        (_, Some(acc), _) => println!("validation accuracy = {acc:.4}"),
        (_, _, Some(rmse)) => println!("validation RMSE = {rmse:.4}"),
        _ => {}
    }

    let model_path = path.with_extension("model.json");
    outcome.model.save(&model_path).expect("model saves");
    println!("model written to {}", model_path.display());
}
