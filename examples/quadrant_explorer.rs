//! Quadrant explorer: run all four data-management quadrants on a workload
//! shape of your choosing and see the paper's Table 1 verdict emerge.
//!
//! ```sh
//! cargo run --release --example quadrant_explorer -- [N] [D] [C] [workers]
//! # e.g. a high-dimensional shape:
//! cargo run --release --example quadrant_explorer -- 8000 4000 2 8
//! # a low-dimensional, instance-heavy shape:
//! cargo run --release --example quadrant_explorer -- 40000 50 2 8
//! ```

use gbdt_cluster::Cluster;
use gbdt_core::{Objective, TrainConfig};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_quadrants::{qd1, qd2, qd3, qd4, Aggregation, DistTrainResult};

fn main() {
    let args: Vec<usize> =
        std::env::args().skip(1).map(|a| a.parse().expect("numeric argument")).collect();
    let n = args.first().copied().unwrap_or(10_000);
    let d = args.get(1).copied().unwrap_or(1_000);
    let c = args.get(2).copied().unwrap_or(2);
    let workers = args.get(3).copied().unwrap_or(8);

    let dataset = SyntheticConfig {
        n_instances: n,
        n_features: d,
        n_classes: c,
        density: (100.0 / d as f64).min(0.2),
        seed: 1,
        name: "explorer".into(),
        ..Default::default()
    }
    .generate();
    let objective =
        if c > 2 { Objective::Softmax { n_classes: c } } else { Objective::Logistic };
    let config = TrainConfig::builder()
        .n_trees(3)
        .n_layers(8)
        .objective(objective)
        .build()
        .expect("valid config");
    let cluster = Cluster::new(workers);

    println!("workload: N={n} D={d} C={c}, W={workers}, L=8, q=20, 3 trees\n");
    println!(
        "{:<26}{:>12}{:>12}{:>12}{:>14}{:>14}",
        "quadrant", "comp s/tree", "comm s/tree", "total", "net MB", "hist MB/wk"
    );

    let runs: Vec<(&str, DistTrainResult)> = vec![
        ("QD1 horizontal+column", qd1::train(&cluster, &dataset, &config)),
        (
            "QD2 horizontal+row",
            qd2::train(&cluster, &dataset, &config, Aggregation::ReduceScatter),
        ),
        ("QD3 vertical+column", qd3::train(&cluster, &dataset, &config)),
        ("QD4 vertical+row (Vero)", qd4::train(&cluster, &dataset, &config)),
    ];

    let mut best = (f64::INFINITY, "");
    for (name, result) in &runs {
        let total = result.mean_tree_seconds();
        if total < best.0 {
            best = (total, name);
        }
        println!(
            "{:<26}{:>12.3}{:>12.3}{:>12.3}{:>14.2}{:>14.2}",
            name,
            result.mean_tree_comp_seconds(),
            result.mean_tree_comm_seconds(),
            total,
            result.stats.total_bytes_sent() as f64 / 1e6,
            result.stats.max_histogram_bytes() as f64 / 1e6,
        );
    }
    println!("\nfastest on this shape (measured): {}", best.1);

    // The cost-model advisor (the paper's §6 future work) predicts without
    // running anything:
    let spec = gbdt_quadrants::advisor::WorkloadSpec::from_dataset(&dataset, &config);
    let env = gbdt_quadrants::advisor::EnvSpec {
        workers,
        ..Default::default()
    };
    let rec = gbdt_quadrants::advisor::recommend(&spec, &env);
    println!("advisor recommends:          {}", rec.quadrant.name());
    println!("(paper Table 1: vertical wins on high-dim / deep / multi-class;");
    println!(" horizontal wins on low-dim with many instances; row-store beats");
    println!(" column-store unless N is tiny)");
}
