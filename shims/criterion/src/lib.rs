//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset the workspace benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups, [`BenchmarkId`], and `Bencher::iter`.
//! Measurement is simple wall-clock sampling: each benchmark is calibrated
//! so a sample lasts at least a few milliseconds, then `sample_size` samples
//! are taken and the per-iteration mean/min are reported. Under
//! `cargo test` (which passes `--test` to `harness = false` targets) every
//! benchmark body runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Harness entry point: holds configuration and CLI mode.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
            // Other cargo-forwarded flags (--bench, --nocapture, ...) are
            // accepted and ignored.
        }
        Criterion { sample_size: 100, test_mode, filter }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let full = id.into_benchmark_id().label;
        run_benchmark(self, &full, f);
    }
}

/// A set of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(self.criterion, &full, f);
    }

    /// Ends the group (kept for API compatibility; no summary is printed).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name and/or parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{parameter}", function.into()) }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion into a [`BenchmarkId`] (allows plain strings).
pub trait IntoBenchmarkId {
    /// Converts `self`.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping each result alive so the
    /// optimizer cannot discard the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so benches can use `criterion::black_box` if preferred.
pub use std::hint::black_box;

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    if let Some(filter) = &c.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    if c.test_mode {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }

    // Calibrate: grow the per-sample iteration count until one sample takes
    // at least ~5 ms (so timer resolution is negligible).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<55} time: [mean {:>12} min {:>12}]  ({} samples x {iters} iters)",
        fmt_ns(mean),
        fmt_ns(min),
        c.sample_size,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function, in either the positional form
/// `criterion_group!(benches, f1, f2)` or the configured form
/// `criterion_group! { name = benches; config = ...; targets = f1, f2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!("plain".into_benchmark_id().label, "plain");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { sample_size: 10, test_mode: true, filter: None };
        let mut runs = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 10,
            test_mode: true,
            filter: Some("wanted".to_string()),
        };
        let mut runs = 0u32;
        c.bench_function("other", |b| b.iter(|| runs += 1));
        c.bench_function("wanted_bench", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
