//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the real API this workspace uses: [`Bytes`]
//! (cheaply cloneable, sliceable shared buffer), [`BytesMut`] (growable
//! builder), and the [`Buf`]/[`BufMut`] cursor traits with the big-endian
//! accessors of the upstream crate. The container registry is unreachable
//! in this build environment, so the workspace vendors the few external
//! crates it needs as minimal source-compatible shims.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of shared memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice (copied here; the shim does not need the
    /// zero-copy special case).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range (shares the backing
    /// allocation).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to {at} out of range for {}", self.len());
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` onward; `self` keeps the
    /// first `at`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

/// A growable byte buffer implementing [`BufMut`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a slice (mirror of `Vec::extend_from_slice`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

/// Read cursor over a byte source. Multi-byte accessors are big-endian,
/// matching the upstream crate; all accessors advance the cursor and panic
/// when the source is exhausted.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances past `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian unsigned integer of `nbytes` bytes.
    fn get_uint(&mut self, nbytes: usize) -> u64 {
        assert!((1..=8).contains(&nbytes), "get_uint width {nbytes}");
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b[8 - nbytes..]);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian f32.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} past end {}", self.len());
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable buffer. Multi-byte accessors are
/// big-endian, matching the upstream crate.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends the low `nbytes` bytes of `v`, big-endian.
    fn put_uint(&mut self, v: u64, nbytes: usize) {
        assert!((1..=8).contains(&nbytes), "put_uint width {nbytes}");
        self.put_slice(&v.to_be_bytes()[8 - nbytes..]);
    }

    /// Appends a big-endian f32.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u16(513);
        b.put_u32(70_000);
        b.put_u64(1 << 40);
        b.put_uint(0x0a0b0c, 3);
        b.put_f32(1.5);
        b.put_f64(-2.25);
        b.put_slice(&[1, 2, 3]);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 513);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_uint(3), 0x0a0b0c);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        assert_eq!(r.remaining(), 3);
        assert_eq!(&r[..], &[1, 2, 3]);
    }

    #[test]
    fn slicing_and_splitting_share_data() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        let tail = b.split_off(1);
        assert_eq!(&b[..], &[2]);
        assert_eq!(&tail[..], &[3, 4, 5]);
    }
}
