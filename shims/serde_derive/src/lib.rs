//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored serde shim's value-tree `Serialize`/`Deserialize`
//! traits. Implemented directly on `proc_macro::TokenStream` (no
//! syn/quote — they are unavailable offline): the input item is scanned for
//! its shape (struct with named fields, or enum with unit / tuple / struct
//! variants — the only shapes in this workspace), and the impl is emitted
//! as generated source text. Enums use the externally-tagged layout, so
//! the JSON matches what upstream serde would produce for these types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

#[derive(Debug)]
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => serialize_struct(name, fields),
        Shape::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => deserialize_struct(name, fields),
        Shape::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("generated Deserialize impl parses")
}

// --- input parsing ---

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Scan past attributes / visibility to the `struct` or `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(_) => i += 1,
            None => panic!("derive input has no struct or enum keyword"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after {kind}, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("shim serde_derive does not support generic type {name}");
        }
    }
    // The body is the next brace group (skips nothing else for the shapes
    // in this workspace; tuple structs would hit the panic below).
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("shim serde_derive does not support tuple/unit struct {name}")
            }
            Some(_) => i += 1,
            None => panic!("no body found for {name}"),
        }
    };
    if kind == "struct" {
        Shape::Struct { name, fields: parse_field_names(body) }
    } else {
        Shape::Enum { name, variants: parse_variants(body) }
    }
}

/// Splits a token stream on top-level commas.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(tt),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading attributes (`#[...]`) and visibility from a token list,
/// returning the index of the first remaining token.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> usize {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [group]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Field names of a named-field body: `attr* vis? name : type`.
fn parse_field_names(body: TokenStream) -> Vec<String> {
    split_commas(body)
        .into_iter()
        .map(|tokens| {
            let i = skip_attrs_and_vis(&tokens);
            match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    split_commas(body)
        .into_iter()
        .map(|tokens| {
            let i = skip_attrs_and_vis(&tokens);
            let name = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, got {other:?}"),
            };
            match tokens.get(i + 1) {
                None => Variant::Unit(name),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Variant::Struct(name, parse_field_names(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Variant::Tuple(name, split_commas(g.stream()).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    panic!("shim serde_derive does not support discriminants on {name}")
                }
                other => panic!("unexpected token after variant {name}: {other:?}"),
            }
        })
        .collect()
}

// --- code generation ---

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut inserts = String::new();
    for f in fields {
        inserts.push_str(&format!(
            "m.insert(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}));\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 let mut m = serde::Map::new();\n\
                 {inserts}\
                 serde::Value::Object(m)\n\
             }}\n\
         }}\n"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut field_exprs = String::new();
    for f in fields {
        field_exprs.push_str(&format!(
            "{f}: serde::Deserialize::from_value(\n\
                 obj.get(\"{f}\").unwrap_or(&serde::Value::Null)\n\
             ).map_err(|e| e.at(\"{name}.{f}\"))?,\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 let obj = v.as_object().ok_or_else(|| serde::Error::custom(\n\
                     format!(\"expected object for {name}, got {{}}\", v.kind())\n\
                 ))?;\n\
                 Ok({name} {{\n\
                     {field_exprs}\
                 }})\n\
             }}\n\
         }}\n"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match v {
            Variant::Unit(vn) => arms.push_str(&format!(
                "{name}::{vn} => serde::Value::String(\"{vn}\".to_string()),\n"
            )),
            Variant::Tuple(vn, n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                let bind_list = binds.join(", ");
                let inner = if *n == 1 {
                    "serde::Serialize::to_value(x0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({bind_list}) => {{\n\
                         let mut m = serde::Map::new();\n\
                         m.insert(\"{vn}\".to_string(), {inner});\n\
                         serde::Value::Object(m)\n\
                     }}\n"
                ));
            }
            Variant::Struct(vn, fields) => {
                let bind_list = fields.join(", ");
                let mut inserts = String::new();
                for f in fields {
                    inserts.push_str(&format!(
                        "inner.insert(\"{f}\".to_string(), serde::Serialize::to_value({f}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {bind_list} }} => {{\n\
                         let mut inner = serde::Map::new();\n\
                         {inserts}\
                         let mut m = serde::Map::new();\n\
                         m.insert(\"{vn}\".to_string(), serde::Value::Object(inner));\n\
                         serde::Value::Object(m)\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n\
                     {arms}\
                 }}\n\
             }}\n\
         }}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        match v {
            Variant::Unit(vn) => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
            Variant::Tuple(vn, n) => {
                let body = if *n == 1 {
                    format!(
                        "Ok({name}::{vn}(serde::Deserialize::from_value(inner)\n\
                             .map_err(|e| e.at(\"{name}::{vn}\"))?))"
                    )
                } else {
                    let mut parts = String::new();
                    for k in 0..*n {
                        parts.push_str(&format!(
                            "serde::Deserialize::from_value(\n\
                                 items.get({k}).unwrap_or(&serde::Value::Null)\n\
                             ).map_err(|e| e.at(\"{name}::{vn}.{k}\"))?,\n"
                        ));
                    }
                    format!(
                        "{{\n\
                             let items = inner.as_array().ok_or_else(|| serde::Error::custom(\n\
                                 \"expected array for {name}::{vn}\"\n\
                             ))?;\n\
                             Ok({name}::{vn}({parts}))\n\
                         }}"
                    )
                };
                tagged_arms.push_str(&format!("\"{vn}\" => {body},\n"));
            }
            Variant::Struct(vn, fields) => {
                let mut parts = String::new();
                for f in fields {
                    parts.push_str(&format!(
                        "{f}: serde::Deserialize::from_value(\n\
                             inner.get(\"{f}\").unwrap_or(&serde::Value::Null)\n\
                         ).map_err(|e| e.at(\"{name}::{vn}.{f}\"))?,\n"
                    ));
                }
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => Ok({name}::{vn} {{ {parts} }}),\n"
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 match v {{\n\
                     serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => Err(serde::Error::custom(format!(\n\
                             \"unknown {name} variant '{{other}}'\"\n\
                         ))),\n\
                     }},\n\
                     serde::Value::Object(m) if m.len() == 1 => {{\n\
                         let (tag, inner) = m.iter().next().expect(\"len checked\");\n\
                         let _ = &inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => Err(serde::Error::custom(format!(\n\
                                 \"unknown {name} variant '{{other}}'\"\n\
                             ))),\n\
                         }}\n\
                     }}\n\
                     other => Err(serde::Error::custom(format!(\n\
                         \"expected {name} variant, got {{}}\", other.kind()\n\
                     ))),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
