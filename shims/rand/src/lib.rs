//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements `StdRng` over xoshiro256++ (seeded through SplitMix64, the
//! standard recommendation), the `Rng`/`SeedableRng` traits with
//! `gen_range`/`gen_bool`/`gen`, and `rand::seq::index::sample` for
//! distinct-index sampling. Deterministic given a seed, which is all the
//! workspace's synthetic data generators and benches require.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce uniformly.
pub trait StandardSample: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling (the `gen_range` argument bound).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by widening multiply (span ≤ 2^64).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing generator interface (the `rand 0.8` method names).
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: impl SampleRange<T>) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }

    /// Uniform value of the inferred type.
    #[allow(clippy::should_implement_trait)] // rand 0.8 method name
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (a different algorithm than upstream `StdRng`, but the
    /// workspace only requires seed-determinism, not stream compatibility).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    pub mod index {
        use crate::{Rng, RngCore};

        /// Distinct indices drawn by [`sample`].
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Extracts the indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterates the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` (Floyd's
        /// algorithm: O(amount) memory, no O(length) allocation).
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = rng.gen_range(0..j + 1);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            IndexVec(chosen)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(1..=5u32);
            assert!((1..=5).contains(&j));
            let k = rng.gen_range(0usize..9);
            assert!(k < 9);
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn sample_yields_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for (length, amount) in [(10, 10), (100, 7), (1, 1), (5, 0)] {
            let picked = crate::seq::index::sample(&mut rng, length, amount);
            let v = picked.into_vec();
            assert_eq!(v.len(), amount);
            assert!(v.iter().all(|&i| i < length));
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), amount, "duplicates in {v:?}");
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
