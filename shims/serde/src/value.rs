//! The JSON-shaped value tree shared by the `serde` and `serde_json` shims.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map),
}

/// A JSON number: integer-preserving like `serde_json` with the
/// `float_roundtrip` behaviour (floats print in shortest-roundtrip form).
#[derive(Debug, Clone, Copy)]
pub struct Number {
    repr: Repr,
}

#[derive(Debug, Clone, Copy)]
enum Repr {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// Wraps an unsigned integer.
    pub fn from_u64(n: u64) -> Number {
        Number { repr: Repr::U(n) }
    }

    /// Wraps a signed integer (non-negative values normalize to unsigned).
    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::from_u64(n as u64)
        } else {
            Number { repr: Repr::I(n) }
        }
    }

    /// Wraps a float.
    pub fn from_f64(n: f64) -> Number {
        Number { repr: Repr::F(n) }
    }

    /// The number as f64 (always possible in this shim).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.repr {
            Repr::U(n) => n as f64,
            Repr::I(n) => n as f64,
            Repr::F(n) => n,
        })
    }

    /// The number as u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.repr {
            Repr::U(n) => Some(n),
            Repr::I(_) => None,
            Repr::F(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            Repr::F(_) => None,
        }
    }

    /// The number as i64 if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            Repr::U(n) => i64::try_from(n).ok(),
            Repr::I(n) => Some(n),
            Repr::F(n) if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) => {
                Some(n as i64)
            }
            Repr::F(_) => None,
        }
    }

    /// Whether the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.repr, Repr::F(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.repr, other.repr) {
            (Repr::U(a), Repr::U(b)) => a == b,
            (Repr::I(a), Repr::I(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repr {
            Repr::U(n) => write!(f, "{n}"),
            Repr::I(n) => write!(f, "{n}"),
            Repr::F(n) if n.is_finite() => {
                // Rust's Display for floats is shortest-roundtrip; force a
                // decimal point so the value reparses as a float.
                let s = format!("{n}");
                if s.contains(['.', 'e', 'E']) {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
            Repr::F(_) => f.write_str("null"),
        }
    }
}

/// An insertion-ordered string → [`Value`] map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts, replacing (and returning) any previous value under `key`.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Value {
    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object form, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array form, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string form, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Numeric value as non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric value as signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                #[allow(unused_comparisons)]
                if n >= 0 {
                    Value::Number(Number::from_u64(n as u64))
                } else {
                    Value::Number(Number::from_i64(n as i64))
                }
            }
        }
    )*};
}
value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::from_f64(n))
    }
}

impl From<f32> for Value {
    fn from(n: f32) -> Value {
        Value::Number(Number::from_f64(f64::from(n)))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&&str> for Value {
    fn from(s: &&str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self);
        f.write_str(&out)
    }
}

/// Parses a JSON document into a [`Value`] tree.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!("unexpected character '{}' at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| format!("invalid number '{text}'"))
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_parse_roundtrip() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1u32));
        m.insert("b".into(), Value::from(-2.5f64));
        m.insert("s".into(), Value::from("x \"quoted\"\n"));
        m.insert("arr".into(), Value::Array(vec![Value::Null, Value::Bool(true)]));
        let v = Value::Object(m);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_print_shortest_roundtrip() {
        let f = 0.1f64 + 0.2;
        let text = Value::from(f).to_string();
        assert_eq!(parse(&text).unwrap().as_f64().unwrap().to_bits(), f.to_bits());
        // Whole floats keep a decimal point so they reparse as written.
        assert_eq!(Value::from(3.0f64).to_string(), "3.0");
        assert_eq!(Value::from(3u32).to_string(), "3");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{bad json").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
    }
}
