//! Offline stand-in for `serde` (+ `serde_derive`).
//!
//! The real serde is a zero-copy streaming framework; this shim is a small
//! *value-tree* framework with the same spelling: `Serialize` converts a
//! type into a [`Value`] tree, `Deserialize` reads one back, and the derive
//! macros (re-exported from the vendored `serde_derive` proc-macro crate)
//! generate both for structs with named fields and for enums with unit,
//! tuple, and struct variants using the externally-tagged representation —
//! exactly the JSON shapes upstream serde produces for such types. The
//! vendored `serde_json` prints and parses the trees.

#[doc(hidden)]
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Deserialization error: a message plus an optional field path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn custom(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }

    /// Prefixes the error with a field path segment.
    pub fn at(self, path: &str) -> Error {
        Error { message: format!("{path}: {}", self.message) }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Converts a value into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of the tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls ---

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected unsigned integer, got {}", v.kind()
                    )))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected integer, got {}", v.kind()
                    )))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 → f64 is exact, so the shortest-roundtrip printer preserves
        // the original f32 bit pattern through JSON.
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

// --- compound impls ---

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_value(item).map_err(|e| e.at(&format!("[{i}]"))))
                .collect(),
            other => Err(Error::custom(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => {
                        return Err(Error::custom(format!(
                            "expected tuple array, got {}", other.kind()
                        )))
                    }
                };
                let mut it = items.iter();
                let tuple = ($(
                    $t::from_value(it.next().ok_or_else(|| {
                        Error::custom("tuple array too short")
                    })?)?,
                )+);
                Ok(tuple)
            }
        }
    )*};
}
impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&3.25f64.to_value()).unwrap(), 3.25);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert!(u8::from_value(&300u32.to_value()).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
    }

    #[test]
    fn compounds_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(Vec::<Option<u32>>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.5f64, -2.0, 0.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        assert!(<[f64; 2]>::from_value(&arr.to_value()).is_err());
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&t.to_value()).unwrap(), t);
    }
}
