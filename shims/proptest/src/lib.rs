//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_filter`, range and collection
//! strategies (`prop::collection::{vec, btree_map, btree_set}`,
//! `prop::option::of`), `any::<T>()`, tuple composition, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Cases are
//! generated from a deterministic per-test RNG (seeded from the test name),
//! checked, and reported with the failing input on error. Unlike upstream
//! there is no shrinking: the first failing case is reported as-is.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 128 }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Why the case failed.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }

    /// Deterministic RNG driving generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn seed_from_u64(state: u64) -> TestRng {
            TestRng { state }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A value generator. `generate` returns `None` when a `prop_filter`
/// rejects the draw; the runner retries the whole case.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value (or a rejection).
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Rejects generated values failing `pred` (the label is reported if
    /// rejection makes generation give up).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        label: &'static str,
        pred: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy { inner: self, label, pred }
    }

    /// Boxes the strategy (API compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: std::rc::Rc::new(self) }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct FilterStrategy<S, F> {
    inner: S,
    #[allow(dead_code)]
    label: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// --- ranges as strategies ---

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                let draw = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                Some((lo as i128 + draw as i128) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                Some(self.start + (rng.unit_f64() as $t) * (self.end - self.start))
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// --- any ---

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws a uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain strategy for `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --- tuples ---

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

// --- collections / option ---

/// Element-count specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s of `element` draws.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `size.into()` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing ordered maps.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Map of up to `size` distinct keys (duplicate key draws collapse,
    /// matching upstream semantics where the size is an upper bound).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<BTreeMap<K::Value, V::Value>> {
            let n = self.size.draw(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.generate(rng)?, self.value.generate(rng)?);
            }
            Some(out)
        }
    }

    /// Strategy producing ordered sets.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Set of up to `size` distinct elements.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<BTreeSet<S::Value>> {
            let n = self.size.draw(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n {
                out.insert(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod option {
    use super::*;

    /// Strategy producing `Option`s (roughly 3:1 `Some`, like upstream).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or a draw from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.below(4) == 0 {
                Some(None)
            } else {
                self.inner.generate(rng).map(Some)
            }
        }
    }
}

/// The `prop::` namespace (`use proptest::prelude::*` makes `prop`
/// available, as upstream does).
pub mod strategy_namespace {
    pub use crate::collection;
    pub use crate::option;
}

/// Runs one property: draws `cases` inputs from `strategy`, invoking
/// `check` on each; panics with the offending input on the first failure.
/// Retries rejected draws (filters) up to a bounded number of times.
pub fn run_property<S: Strategy>(
    test_name: &str,
    config: &test_runner::ProptestConfig,
    strategy: &S,
    check: impl Fn(S::Value) -> Result<(), test_runner::TestCaseError>,
) {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut rejected = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        match strategy.generate(&mut rng) {
            None => {
                rejected += 1;
                assert!(
                    rejected < 10_000,
                    "{test_name}: strategy rejected {rejected} draws; filter too strict"
                );
            }
            Some(input) => {
                case += 1;
                let shown = format!("{input:?}");
                if let Err(e) = check(input) {
                    panic!(
                        "{test_name}: case {case}/{} failed: {}\ninput: {shown}",
                        config.cases, e.message
                    );
                }
            }
        }
    }
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strategy,)+);
            $crate::run_property(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

pub mod prelude {
    pub use crate::strategy_namespace as prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u16..5, 2..9),
            m in prop::collection::btree_map(0u32..50, any::<bool>(), 0..6),
            s in prop::collection::btree_set(-10i32..10, 1..8),
            exact in prop::collection::vec(-1.0f64..1.0, 3),
            o in prop::option::of(0u8..4),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(m.len() < 6);
            prop_assert!((1..8).contains(&s.len()));
            prop_assert_eq!(exact.len(), 3);
            if let Some(x) = o {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn map_and_filter_compose(
            pairs in prop::collection::vec((0u32..9, any::<bool>()), 0..20)
                .prop_map(|v| v.len())
                .prop_filter("even only", |n| n % 2 == 0),
        ) {
            prop_assert!(pairs % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_input() {
        crate::run_property(
            "demo",
            &ProptestConfig::with_cases(10),
            &(0u32..100,),
            |(x,)| {
                prop_assert!(x >= 1_000_000, "forced failure {x}");
                Ok(())
            },
        );
    }
}
