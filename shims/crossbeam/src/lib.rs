//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — the only
//! surface this workspace uses — implemented over a mutex-protected queue
//! with a condvar. Senders and receivers are cloneable and `Send + Sync`,
//! matching the upstream semantics the cluster fabric relies on.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, sender-less channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = inner.items.pop_front() {
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        /// Blocks until a value arrives, every sender is gone, or `timeout`
        /// elapses.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = inner.items.pop_front() {
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) =
                    self.shared.ready.wait_timeout(inner, deadline - now).unwrap();
                inner = guard;
                if result.timed_out()
                    && inner.items.is_empty()
                    && std::time::Instant::now() >= deadline
                {
                    if inner.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            if let Some(item) = inner.items.pop_front() {
                Ok(item)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    tx2.send(1).unwrap();
                });
                s.spawn(move || {
                    tx.send(2).unwrap();
                });
                let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
                got.sort_unstable();
                assert_eq!(got, vec![1, 2]);
            });
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            let t = std::time::Instant::now();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t.elapsed() >= std::time::Duration::from_millis(15));
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(20)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
