//! Offline stand-in for `serde_json`.
//!
//! Re-exports the serde shim's value tree as [`Value`]/[`Number`]/[`Map`],
//! provides `to_string`/`from_str` over the shim's `Serialize`/`Deserialize`
//! traits, and a `json!` macro (a token-munching object/array builder, the
//! same well-known technique the upstream macro uses). Floats print in
//! Rust's shortest-roundtrip form, matching the `float_roundtrip` feature
//! the workspace requests upstream.

pub use serde::{Map, Number, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes `value` to "pretty" JSON (the shim prints compactly —
/// nothing in the workspace depends on the whitespace).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = serde::value::parse(s).map_err(|message| Error { message })?;
    T::from_value(&value).map_err(|e| Error { message: e.to_string() })
}

/// Converts any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(|e| Error { message: e.to_string() })
}

/// Builds a [`Value`] from JSON-shaped syntax with interpolated Rust
/// expressions for both keys and values, like upstream `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- array munching: elements accumulate in [$($elems:expr,)*] ----

    // All elements munched: build the array.
    (@array [$($elems:expr,)*]) => {
        $crate::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([$($elems),*])))
    };
    // Special element forms become parenthesized built Values first.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] ($crate::Value::Null) $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] ($crate::json_internal!({$($map)*})) $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] ($crate::json_internal!([$($arr)*])) $($rest)*)
    };
    // Element followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next).unwrap(),] $($rest)*)
    };
    // Final element.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$last).unwrap(),])
    };

    // ---- object munching: key tts accumulate in (...), then [$key] ----

    // All entries munched.
    (@object $object:ident () ()) => {};
    // Special value forms become parenthesized built Values first.
    (@object $object:ident [$($key:tt)+] (: null $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] (: ($crate::Value::Null) $($rest)*))
    };
    (@object $object:ident [$($key:tt)+] (: {$($map:tt)*} $($rest:tt)*)) => {
        $crate::json_internal!(
            @object $object [$($key)+] (: ($crate::json_internal!({$($map)*})) $($rest)*)
        )
    };
    (@object $object:ident [$($key:tt)+] (: [$($arr:tt)*] $($rest:tt)*)) => {
        $crate::json_internal!(
            @object $object [$($key)+] (: ($crate::json_internal!([$($arr)*])) $($rest)*)
        )
    };
    // Entry followed by a comma.
    (@object $object:ident [$($key:tt)+] (: $value:expr , $($rest:tt)*)) => {
        $object.insert(($($key)+).to_string(), $crate::to_value(&$value).unwrap());
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    // Final entry.
    (@object $object:ident [$($key:tt)+] (: $value:expr)) => {
        $object.insert(($($key)+).to_string(), $crate::to_value(&$value).unwrap());
    };
    // Key complete when ':' is next.
    (@object $object:ident ($($key:tt)+) (: $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] (: $($rest)*));
    };
    // Munch one more key token.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*));
    };

    // ---- entry points ----

    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::json_internal!(@array [] $($tt)+)
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_scalars_and_objects() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(3).as_u64(), Some(3));
        assert_eq!(json!(3.5).as_f64(), Some(3.5));
        assert_eq!(json!("x").as_str(), Some("x"));
        let key = ("dynamic", 1usize);
        let v = json!({
            "a": 1,
            "s": "str",
            key.0: key.1,
            "nested": {"b": [1, 2.5, null, {"c": false}], "empty": {}},
            "arr": [],
        });
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(obj.get("dynamic").unwrap().as_u64(), Some(1));
        let nested = obj.get("nested").unwrap().as_object().unwrap();
        let arr = nested.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert!(arr[2].is_null());
        assert_eq!(arr[3].get("c").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn string_roundtrip() {
        let v = json!({"a": 1, "b": [true, null], "c": -2.25});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert!(from_str::<Value>("{bad json").is_err());
    }
}
