//! QD2 — horizontal partitioning + row-store (LightGBM / DimBoost, §4.1).
//!
//! Each worker holds a row shard in binned row-store form with a
//! node-to-instance index, builds *local* histograms for **all D features**
//! with the histogram subtraction technique, and the cluster aggregates them
//! into global histograms — the step whose traffic grows as
//! `Sizehist × W × (2^{L−1} − 1)` per tree and dominates on
//! high-dimensional / deep / multi-class workloads (§3.1.3).
//!
//! Three aggregation strategies mirror the real systems: ring all-reduce
//! (then every worker finds every split redundantly), feature-sharded
//! reduce-scatter (LightGBM: each worker finds splits for its feature slice,
//! then local bests are exchanged), and the parameter-server push of
//! DimBoost (mechanically the sharded reduction of `gbdt-cluster::ps` with
//! server-side split finding).

use crate::common::{
    all_reduce_stats, choose_global_best, record_layer_wire_bytes, restore_tree_checkpoint,
    save_tree_checkpoint, shard_dataset, subtraction_plan, worker_threads, Aggregation,
    DistTrainResult, Frontier, TreeStat, TreeTracker,
};
use gbdt_cluster::collectives::segment_bounds;
use gbdt_cluster::{Cluster, CommError, Phase, WorkerCtx};
use gbdt_core::histogram::HistogramPool;
use gbdt_core::indexes::NodeToInstanceIndex;
use gbdt_core::kernels;
use gbdt_core::parallel::{self, Meter};
use gbdt_core::split::{best_split_in_range_parallel, best_split_parallel, NodeStats, Split, SplitParams};
use gbdt_core::tree::{self, Tree};
use gbdt_core::{GbdtModel, GradBuffer, TrainConfig};
use gbdt_data::dataset::Dataset;
use gbdt_data::BinnedStore;
use gbdt_partition::transform::build_global_cuts;
use gbdt_partition::HorizontalPartition;

/// Trains with QD2 on `cluster.world` workers.
pub fn train(
    cluster: &Cluster,
    dataset: &Dataset,
    config: &TrainConfig,
    aggregation: Aggregation,
) -> DistTrainResult {
    config.validate().expect("invalid training config");
    let partition = HorizontalPartition::new(dataset.n_instances(), cluster.world);
    let (outputs, stats) = cluster.run_recoverable(|ctx| {
        let shard = shard_dataset(dataset, partition, ctx.rank());
        train_worker(ctx, &shard, config, aggregation)
    });
    let mut models = Vec::new();
    let mut per_worker_trees = Vec::new();
    for (model, trees) in outputs {
        models.push(model);
        per_worker_trees.push(trees);
    }
    let model = models.swap_remove(0);
    DistTrainResult { model, per_tree: crate::common::merge_tree_stats(&per_worker_trees), stats }
}

fn train_worker(
    ctx: &mut WorkerCtx,
    shard: &Dataset,
    config: &TrainConfig,
    aggregation: Aggregation,
) -> Result<(GbdtModel, Vec<TreeStat>), CommError> {
    let d = shard.n_features();
    let q = config.n_bins;
    let c = config.n_outputs();
    let params = SplitParams::from_config(config);
    let objective = config.objective;
    let world = ctx.world();
    let rank = ctx.rank();
    let threads = worker_threads(config, world);
    let meter = Meter::default();
    ctx.stats.threads = threads as u64;

    // Global candidate splits (local sketches merged across the cluster).
    let (cuts, _) = build_global_cuts(ctx, shard, q, gbdt_core::QuantileSketch::DEFAULT_CAP)?;
    let binned = ctx.time(Phase::Sketch, || cuts.apply_store(shard, config.storage));
    ctx.stats.data_bytes = binned.heap_bytes() as u64;

    let n_local = binned.n_rows();
    let mut model = GbdtModel::new(objective, config.learning_rate, d);
    let mut scores = vec![0.0f64; n_local * c];
    for chunk in scores.chunks_mut(c) {
        chunk.copy_from_slice(&model.init_scores);
    }
    let mut grads = GradBuffer::new(n_local, c);
    let mut index = NodeToInstanceIndex::new(n_local);
    let mut pool = HistogramPool::new(d, q, c);
    ctx.stats.index_bytes = index.heap_bytes() as u64;

    // Feature shard for reduce-scatter / parameter-server aggregation, in
    // histogram-element units (feature-aligned).
    let (feat_lo, feat_hi) = segment_bounds(d, world, rank);
    let elem_ranges: Vec<(usize, usize)> = (0..world)
        .map(|w| {
            let (lo, hi) = segment_bounds(d, world, w);
            (lo * q * c * 2, hi * q * c * 2)
        })
        .collect();

    let mut tracker = TreeTracker::default();
    tracker.lap(ctx); // exclude sketch/binning setup from the first tree's cost
    let mut per_tree = Vec::with_capacity(config.n_trees);

    let start_tree = restore_tree_checkpoint(ctx, &mut model, &mut scores, &mut per_tree);
    for t in start_tree..config.n_trees {
        ctx.time(Phase::Gradients, || {
            objective.compute_gradients(&scores, &shard.labels, &mut grads)
        });
        let mut tree = Tree::new(config.n_layers, c);

        // Global root statistics and count.
        let mut root_stats = NodeStats::zero(c);
        ctx.time(Phase::Gradients, || {
            let mut g = vec![0.0; c];
            let mut h = vec![0.0; c];
            grads.sum_instances(index.instances(0), &mut g, &mut h);
            root_stats.grads.copy_from_slice(&g);
            root_stats.hesses.copy_from_slice(&h);
        });
        all_reduce_stats(ctx, &mut root_stats)?;
        let mut count_buf = vec![n_local as f64];
        ctx.comm.all_reduce_f64(&mut count_buf)?;
        let mut frontier = Frontier::root(root_stats, count_buf[0] as u64);
        let mut leaves: Vec<u32> = Vec::new();

        for layer in 0..config.n_layers {
            ctx.fault_point(t, layer);
            if frontier.nodes.is_empty() {
                break;
            }
            if layer + 1 == config.n_layers {
                for &node in &frontier.nodes {
                    tree.set_leaf_from_stats(
                        node,
                        &frontier.stats[&node],
                        params.lambda,
                        config.learning_rate,
                    );
                    leaves.push(node);
                }
                break;
            }

            // Local histogram construction for the build set (smaller
            // sibling; the other is derived by subtraction AFTER
            // aggregation, so pool histograms are always global).
            let mut build_nodes: Vec<u32> = Vec::new();
            let mut derive: Vec<(u32, u32, u32)> = Vec::new(); // (parent, built, sibling)
            if layer == 0 {
                build_nodes.push(0);
            } else {
                let mut k = 0;
                while k < frontier.nodes.len() {
                    let (l, r) = (frontier.nodes[k], frontier.nodes[k + 1]);
                    let (build_left, _) =
                        subtraction_plan(frontier.counts[&l], frontier.counts[&r]);
                    let (b, s) = if build_left { (l, r) } else { (r, l) };
                    build_nodes.push(b);
                    derive.push((tree::parent(l), b, s));
                    k += 2;
                }
            }
            ctx.time(Phase::HistogramBuild, || {
                for &node in &build_nodes {
                    build_histogram(&mut pool, node, &binned, &grads, &index, threads, config.kernel, &meter);
                }
            });

            // Aggregate local histograms into global ones under the
            // configured wire codec (control traffic stays dense).
            let wire_before = ctx.comm.counters();
            match aggregation {
                Aggregation::AllReduce => {
                    for &node in &build_nodes {
                        let hist = pool.get_mut(node).expect("just built");
                        ctx.comm.all_reduce_f64_codec(config.wire, hist.as_mut_slice())?;
                    }
                }
                Aggregation::ReduceScatter | Aggregation::ParameterServer => {
                    for &node in &build_nodes {
                        let hist = pool.get_mut(node).expect("just built");
                        let reduced = ctx.comm.ps_push_and_reduce_codec(
                            config.wire,
                            hist.as_slice(),
                            &elem_ranges,
                        )?;
                        let (lo, hi) = elem_ranges[rank];
                        hist.as_mut_slice()[lo..hi].copy_from_slice(&reduced);
                    }
                }
            }
            record_layer_wire_bytes(ctx, layer, wire_before);
            ctx.time(Phase::HistogramBuild, || {
                for &(parent, built, sibling) in &derive {
                    pool.subtract_sibling(parent, built, sibling);
                }
            });
            ctx.stats.histogram_peak_bytes = pool.peak_bytes() as u64;

            // Split finding.
            let decisions: Vec<Option<Split>> = match aggregation {
                Aggregation::AllReduce => ctx.time(Phase::SplitFind, || {
                    frontier
                        .nodes
                        .iter()
                        .map(|&node| {
                            if frontier.counts[&node] < config.min_node_instances as u64 {
                                return None;
                            }
                            best_split_parallel(
                                pool.get(node).expect("histogram live"),
                                &frontier.stats[&node],
                                &params,
                                |f| cuts.n_bins(f),
                                |f| f,
                                threads,
                            )
                        })
                        .collect()
                }),
                Aggregation::ReduceScatter | Aggregation::ParameterServer => {
                    // Local best within my feature slice, then exchange.
                    let locals: Vec<Option<Split>> = ctx.time(Phase::SplitFind, || {
                        frontier
                            .nodes
                            .iter()
                            .map(|&node| {
                                if frontier.counts[&node] < config.min_node_instances as u64 {
                                    return None;
                                }
                                best_split_in_range_parallel(
                                    pool.get(node).expect("histogram live"),
                                    feat_lo as u32..feat_hi as u32,
                                    &frontier.stats[&node],
                                    &params,
                                    |f| cuts.n_bins(f),
                                    |f| f,
                                    threads,
                                )
                            })
                            .collect()
                    });
                    exchange_local_bests(ctx, &locals)?
                }
            };

            // Node splitting + global child counts.
            let mut next = Frontier::default();
            let mut split_nodes: Vec<(u32, Split)> = Vec::new();
            for (&node, decision) in frontier.nodes.iter().zip(decisions) {
                match decision {
                    Some(split) => {
                        tree.set_internal_with_gain(
                            node,
                            split.feature,
                            split.bin,
                            cuts.threshold(split.feature, split.bin),
                            split.default_left,
                            split.gain,
                        );
                        split_nodes.push((node, split));
                    }
                    None => {
                        tree.set_leaf_from_stats(
                            node,
                            &frontier.stats[&node],
                            params.lambda,
                            config.learning_rate,
                        );
                        leaves.push(node);
                        pool.release(node);
                    }
                }
            }
            let mut counts = vec![0f64; split_nodes.len() * 2];
            ctx.time(Phase::NodeSplit, || {
                for (k, (node, split)) in split_nodes.iter().enumerate() {
                    let (lc, rc) = index.split(*node, |i| {
                        match binned.get(i as usize, split.feature) {
                            Some(b) => b <= split.bin,
                            None => split.default_left,
                        }
                    });
                    counts[2 * k] = lc as f64;
                    counts[2 * k + 1] = rc as f64;
                }
            });
            ctx.comm.all_reduce_f64(&mut counts)?;
            for (k, (node, split)) in split_nodes.into_iter().enumerate() {
                Frontier::push_children(
                    &mut next,
                    node,
                    &split,
                    counts[2 * k] as u64,
                    counts[2 * k + 1] as u64,
                );
            }
            frontier = next;
        }

        // Update local scores from leaves.
        ctx.time(Phase::Predict, || {
            for &leaf in &leaves {
                let values = match &tree.node(leaf).expect("leaf set").kind {
                    tree::NodeKind::Leaf { values } => values.clone(),
                    _ => unreachable!("leaves vector only holds leaf nodes"),
                };
                for &i in index.instances(leaf) {
                    let base = i as usize * c;
                    for (k, &v) in values.iter().enumerate() {
                        scores[base + k] += v;
                    }
                }
            }
        });

        pool.release_all();
        index.reset();
        model.trees.push(tree);
        per_tree.push(tracker.lap(ctx));
        save_tree_checkpoint(ctx, &model, &scores, &per_tree);
    }
    ctx.stats.parallel_wall_seconds = meter.wall_seconds();
    ctx.stats.parallel_busy_seconds = meter.busy_seconds();
    Ok((model, per_tree))
}

/// All-gathers per-node local best splits and resolves each node's global
/// best deterministically. Shared by every trainer that finds splits on
/// feature subsets (QD2-sharded, QD3, QD4, feature-parallel).
pub(crate) fn exchange_local_bests(
    ctx: &mut WorkerCtx,
    locals: &[Option<Split>],
) -> Result<Vec<Option<Split>>, CommError> {
    // Encode: per node, u8 present + length-prefixed split bytes.
    let mut payload = Vec::new();
    payload.extend_from_slice(&(locals.len() as u32).to_le_bytes());
    for s in locals {
        match s {
            Some(split) => {
                let bytes = split.encode_bytes();
                payload.push(1);
                payload.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                payload.extend_from_slice(&bytes);
            }
            None => payload.push(0),
        }
    }
    let gathered = ctx.comm.all_gather(bytes::Bytes::from(payload))?;
    let mut per_worker: Vec<Vec<Option<Split>>> = Vec::with_capacity(gathered.len());
    for buf in gathered {
        let mut pos = 0usize;
        let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        pos += 4;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            let present = buf[pos];
            pos += 1;
            if present == 1 {
                let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 4;
                let split = Split::decode_bytes(&buf[pos..pos + len])
                    .expect("peer sends well-formed splits");
                pos += len;
                list.push(Some(split));
            } else {
                list.push(None);
            }
        }
        per_worker.push(list);
    }
    Ok((0..locals.len())
        .map(|k| choose_global_best(per_worker.iter().map(|w| w[k].clone())))
        .collect())
}

#[allow(clippy::too_many_arguments)]
fn build_histogram(
    pool: &mut HistogramPool,
    node: u32,
    binned: &BinnedStore,
    grads: &GradBuffer,
    index: &NodeToInstanceIndex,
    threads: usize,
    kernel: gbdt_core::Kernel,
    meter: &Meter,
) {
    parallel::build_histogram_chunked(pool, node, index.instances(node), threads, meter, |hist, chunk| {
        kernels::fill_rows_chunk(hist, chunk, binned, grads, kernel);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::Objective;
    use gbdt_data::synthetic::SyntheticConfig;

    fn dataset(n: usize, d: usize, classes: usize, seed: u64) -> Dataset {
        SyntheticConfig {
            n_instances: n,
            n_features: d,
            n_classes: classes,
            density: 0.5,
            label_noise: 0.02,
            seed,
            ..Default::default()
        }
        .generate()
    }

    fn config(classes: usize) -> TrainConfig {
        let objective = if classes > 2 {
            Objective::Softmax { n_classes: classes }
        } else {
            Objective::Logistic
        };
        TrainConfig::builder().n_trees(8).n_layers(5).objective(objective).build().unwrap()
    }

    #[test]
    fn learns_with_all_reduce() {
        let ds = dataset(1_200, 15, 2, 41);
        let result = train(&Cluster::new(3), &ds, &config(2), Aggregation::AllReduce);
        let eval = result.model.evaluate(&ds);
        assert!(eval.auc.unwrap() > 0.85, "AUC {:?}", eval.auc);
        assert_eq!(result.per_tree.len(), 8);
        assert!(result.stats.total_bytes_sent() > 0);
    }

    #[test]
    fn learns_with_reduce_scatter() {
        let ds = dataset(1_200, 15, 2, 43);
        let result = train(&Cluster::new(3), &ds, &config(2), Aggregation::ReduceScatter);
        assert!(result.model.evaluate(&ds).auc.unwrap() > 0.85);
    }

    #[test]
    fn aggregation_strategies_agree() {
        let ds = dataset(600, 10, 2, 47);
        let cfg = config(2);
        let cluster = Cluster::new(2);
        let a = train(&cluster, &ds, &cfg, Aggregation::AllReduce);
        let b = train(&cluster, &ds, &cfg, Aggregation::ReduceScatter);
        let c = train(&cluster, &ds, &cfg, Aggregation::ParameterServer);
        // Same global histograms (mod float summation order) -> same trees.
        let pa = a.model.predict_dataset_raw(&ds);
        let pb = b.model.predict_dataset_raw(&ds);
        let pc = c.model.predict_dataset_raw(&ds);
        for ((x, y), z) in pa.iter().zip(&pb).zip(&pc) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
            assert!((y - z).abs() < 1e-6, "{y} vs {z}");
        }
    }

    #[test]
    fn multiclass_runs() {
        let ds = dataset(900, 12, 4, 53);
        let result = train(&Cluster::new(2), &ds, &config(4), Aggregation::ReduceScatter);
        assert!(result.model.evaluate(&ds).accuracy.unwrap() > 0.4);
    }

    #[test]
    fn single_worker_matches_single_node_reference() {
        let ds = dataset(700, 12, 2, 59);
        let cfg = config(2);
        let dist = train(&Cluster::new(1), &ds, &cfg, Aggregation::AllReduce);
        let reference = crate::single::train(&ds, &cfg);
        assert_eq!(dist.model, reference);
    }
}
