//! Data-management advisor — the paper's stated future work (§6):
//!
//! > "How to determine an optimal dataset management strategy given the
//! > size of dataset (e.g., number of instances, feature dimensionality and
//! > number of classes) along with the application environment (e.g.,
//! > network bandwidth, number of machines, number of cores) is remained
//! > unsolved."
//!
//! This module solves the quadrant-selection instance of that problem with
//! the paper's own §3 cost model, made executable: per quadrant it
//! estimates per-tree communication seconds (from the §3.1.3 formulas and
//! the link model), per-tree computation (from the §3.2.4 access-count
//! analysis, scaled by a calibratable per-access cost), and per-worker
//! histogram memory (§3.1.2) — then recommends the cheapest quadrant that
//! fits in memory. Its verdicts reproduce Table 1 by construction *and* are
//! validated against measured runs in the test suite.

use gbdt_cluster::NetworkCostModel;
use gbdt_core::histogram::histogram_size_bytes;
use serde::{Deserialize, Serialize};

/// The four data-management quadrants of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quadrant {
    /// Horizontal + column-store (XGBoost).
    Qd1,
    /// Horizontal + row-store (LightGBM / DimBoost).
    Qd2,
    /// Vertical + column-store (Yggdrasil).
    Qd3,
    /// Vertical + row-store (Vero).
    Qd4,
}

impl Quadrant {
    /// All quadrants, in Figure 1 order.
    pub const ALL: [Quadrant; 4] = [Quadrant::Qd1, Quadrant::Qd2, Quadrant::Qd3, Quadrant::Qd4];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Quadrant::Qd1 => "QD1 (horizontal, column-store)",
            Quadrant::Qd2 => "QD2 (horizontal, row-store)",
            Quadrant::Qd3 => "QD3 (vertical, column-store)",
            Quadrant::Qd4 => "QD4 (vertical, row-store / Vero)",
        }
    }

    /// Whether the quadrant partitions by features (vertical).
    pub fn is_vertical(&self) -> bool {
        matches!(self, Quadrant::Qd3 | Quadrant::Qd4)
    }
}

/// The workload, in the paper's symbols.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// N — instances.
    pub n_instances: usize,
    /// D — features.
    pub n_features: usize,
    /// C — gradient dimension (1 for regression/binary, classes otherwise).
    pub n_outputs: usize,
    /// d — average nonzeros per instance.
    pub avg_nnz: f64,
    /// q — candidate splits.
    pub n_bins: usize,
    /// L — tree layers.
    pub n_layers: usize,
}

impl WorkloadSpec {
    /// Builds a spec from a dataset plus training config.
    pub fn from_dataset(ds: &gbdt_data::Dataset, cfg: &gbdt_core::TrainConfig) -> Self {
        WorkloadSpec {
            n_instances: ds.n_instances(),
            n_features: ds.n_features(),
            n_outputs: cfg.n_outputs(),
            avg_nnz: ds.avg_nnz_per_row(),
            n_bins: cfg.n_bins,
            n_layers: cfg.n_layers,
        }
    }
}

/// The execution environment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnvSpec {
    /// W — workers.
    pub workers: usize,
    /// Link model (bandwidth + latency).
    pub network: NetworkCostModel,
    /// Calibration: seconds per histogram-accumulate access. The default
    /// (2 ns) suits one modern core; relative verdicts are insensitive to
    /// it because every quadrant shares the constant.
    pub seconds_per_access: f64,
    /// Per-worker memory budget in bytes (estimates above it are rejected).
    pub memory_budget_bytes: u64,
}

impl Default for EnvSpec {
    fn default() -> Self {
        EnvSpec {
            workers: 8,
            network: NetworkCostModel::lab_cluster(),
            seconds_per_access: 2e-9,
            memory_budget_bytes: 16 << 30,
        }
    }
}

/// Estimated per-tree cost of one quadrant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Modelled per-tree communication seconds (per worker, §3.1.3).
    pub comm_seconds: f64,
    /// Modelled per-tree computation seconds (straggler worker, §3.2.4).
    pub comp_seconds: f64,
    /// Peak per-worker histogram memory in bytes (§3.1.2).
    pub histogram_bytes: u64,
}

impl CostEstimate {
    /// Total modelled seconds per tree.
    pub fn total_seconds(&self) -> f64 {
        self.comm_seconds + self.comp_seconds
    }
}

/// Estimates one quadrant's per-tree cost under the §3 model.
pub fn estimate(quadrant: Quadrant, w: &WorkloadSpec, env: &EnvSpec) -> CostEstimate {
    let workers = env.workers.max(1) as f64;
    let n = w.n_instances as f64;
    let layers = w.n_layers.max(1) as f64;
    let sizehist = histogram_size_bytes(w.n_features, w.n_bins, w.n_outputs) as f64;
    // Internal-node count of an L-layer tree: 2^{L-1} − 1; with subtraction
    // only the smaller child of each pair is built ⇒ half the aggregations.
    let internal_nodes = (2f64.powi(w.n_layers as i32 - 1) - 1.0).max(1.0);
    let built_nodes_subtraction = (internal_nodes / 2.0).max(1.0);
    // Total pair accesses for histogram construction per tree: every stored
    // pair once per layer; subtraction halves layers 2.. (≈ /2 overall).
    let pair_accesses = n * w.avg_nnz * w.n_outputs as f64 * layers;

    let (comm_bytes, comp_accesses, hist_bytes) = match quadrant {
        Quadrant::Qd1 => {
            // All-reduce every layer node's histogram (no subtraction:
            // both children built, all pairs scanned every layer); ring
            // all-reduce moves ~2×Sizehist per worker per node.
            let comm = 2.0 * sizehist * internal_nodes;
            let comp = pair_accesses / workers;
            // Holds one layer of histograms: max 2^{L-2} concurrent.
            let hist = sizehist * 2f64.powi(w.n_layers as i32 - 2);
            (comm, comp, hist)
        }
        Quadrant::Qd2 => {
            let comm = 2.0 * sizehist * built_nodes_subtraction;
            let comp = pair_accesses / 2.0 / workers;
            let hist = sizehist * 2f64.powi(w.n_layers as i32 - 2);
            (comm, comp, hist)
        }
        Quadrant::Qd3 => {
            // Placement bitmaps only (⌈N/8⌉ per layer, §3.1.3), but each
            // worker re-derives gradients and splits indexes for ALL N, and
            // column access costs ~log(col) per touched pair (§3.2.3).
            let comm = n / 8.0 * layers;
            let col_len = (n * w.avg_nnz / w.n_features as f64).max(2.0);
            let comp = pair_accesses / 2.0 / workers * col_len.log2().max(1.0) / 2.0
                + n * layers * w.n_outputs as f64; // full-N bookkeeping per worker
            let hist = sizehist * 2f64.powi(w.n_layers as i32 - 2) / workers;
            (comm, comp, hist)
        }
        Quadrant::Qd4 => {
            let comm = n / 8.0 * layers;
            let comp = pair_accesses / 2.0 / workers
                + n * layers * w.n_outputs as f64; // full-N bookkeeping per worker
            let hist = sizehist * 2f64.powi(w.n_layers as i32 - 2) / workers;
            (comm, comp, hist)
        }
    };

    CostEstimate {
        comm_seconds: env.network.message_time(comm_bytes as usize),
        comp_seconds: comp_accesses * env.seconds_per_access,
        histogram_bytes: hist_bytes as u64,
    }
}

/// A full recommendation: the chosen quadrant plus every estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// The cheapest quadrant that fits the memory budget.
    pub quadrant: Quadrant,
    /// Per-quadrant estimates, in [`Quadrant::ALL`] order.
    pub estimates: Vec<(Quadrant, CostEstimate)>,
}

/// Recommends a quadrant for the workload/environment.
///
/// Quadrants whose per-worker histogram memory exceeds the budget are
/// excluded (the paper's OOM case in §5.2.1); if all are excluded, the one
/// with the smallest footprint is returned.
pub fn recommend(w: &WorkloadSpec, env: &EnvSpec) -> Recommendation {
    let estimates: Vec<(Quadrant, CostEstimate)> =
        Quadrant::ALL.iter().map(|&q| (q, estimate(q, w, env))).collect();
    let feasible = estimates
        .iter()
        .filter(|(_, e)| e.histogram_bytes <= env.memory_budget_bytes)
        .min_by(|a, b| a.1.total_seconds().total_cmp(&b.1.total_seconds()));
    let quadrant = match feasible {
        Some(&(q, _)) => q,
        None => {
            estimates
                .iter()
                .min_by_key(|(_, e)| e.histogram_bytes)
                .expect("four estimates exist")
                .0
        }
    };
    Recommendation { quadrant, estimates }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> EnvSpec {
        EnvSpec::default()
    }

    fn workload(n: usize, d: usize, c: usize, l: usize) -> WorkloadSpec {
        WorkloadSpec {
            n_instances: n,
            n_features: d,
            n_outputs: c,
            avg_nnz: (d as f64 * 0.2).clamp(1.0, 100.0),
            n_bins: 20,
            n_layers: l,
        }
    }

    #[test]
    fn reproduces_table_1_high_dimensional() {
        // Paper-scale high-dim: vertical wins.
        let rec = recommend(&workload(1_000_000, 100_000, 1, 8), &env());
        assert_eq!(rec.quadrant, Quadrant::Qd4, "{rec:?}");
    }

    #[test]
    fn reproduces_table_1_low_dim_many_instances() {
        // Paper-scale low-dim, many instances: horizontal row-store wins.
        let rec = recommend(&workload(50_000_000, 100, 1, 8), &env());
        assert_eq!(rec.quadrant, Quadrant::Qd2, "{rec:?}");
    }

    #[test]
    fn reproduces_table_1_multiclass_and_deep() {
        let rec = recommend(&workload(1_000_000, 25_000, 10, 8), &env());
        assert_eq!(rec.quadrant, Quadrant::Qd4, "multiclass: {rec:?}");
        let rec = recommend(&workload(1_000_000, 50_000, 1, 10), &env());
        assert_eq!(rec.quadrant, Quadrant::Qd4, "deep: {rec:?}");
    }

    #[test]
    fn row_store_always_beats_column_store_within_a_partitioning() {
        // Paper §3.3: "row-store is better than column-store unless the
        // number of instances is very small".
        for (n, d) in [(100_000, 1_000), (1_000_000, 100), (500_000, 50_000)] {
            let w = workload(n, d, 1, 8);
            let qd1 = estimate(Quadrant::Qd1, &w, &env());
            let qd2 = estimate(Quadrant::Qd2, &w, &env());
            let qd3 = estimate(Quadrant::Qd3, &w, &env());
            let qd4 = estimate(Quadrant::Qd4, &w, &env());
            assert!(qd2.total_seconds() < qd1.total_seconds(), "N={n} D={d}");
            assert!(qd4.total_seconds() < qd3.total_seconds(), "N={n} D={d}");
        }
    }

    #[test]
    fn memory_exceeds_budget_excludes_horizontal() {
        // The §3.1.4 Age example: D=330K, q=20, C=9 ⇒ ~906 MB per node,
        // 56.6 GB per worker at L=8 — over a 30 GB budget, so horizontal
        // is infeasible and the advisor must pick a vertical quadrant.
        let w = WorkloadSpec {
            n_instances: 48_000_000,
            n_features: 330_000,
            n_outputs: 9,
            avg_nnz: 100.0,
            n_bins: 20,
            n_layers: 8,
        };
        let e = EnvSpec { memory_budget_bytes: 30 << 30, ..env() };
        let qd2 = estimate(Quadrant::Qd2, &w, &e);
        assert!(qd2.histogram_bytes > e.memory_budget_bytes);
        assert!((qd2.histogram_bytes as f64 / (1 << 30) as f64 - 56.6).abs() < 2.0);
        let rec = recommend(&w, &e);
        assert!(rec.quadrant.is_vertical(), "{rec:?}");
        let qd4 = estimate(Quadrant::Qd4, &w, &e);
        assert!((qd4.histogram_bytes as f64 / (1 << 30) as f64 - 7.08).abs() < 0.5);
    }

    #[test]
    fn faster_network_shifts_toward_horizontal() {
        // Find a shape where bandwidth decides: moderately dimensional,
        // many instances.
        let w = workload(20_000_000, 2_000, 1, 8);
        let slow = EnvSpec { network: NetworkCostModel::gbps(0.1), ..env() };
        let fast = EnvSpec { network: NetworkCostModel::gbps(100.0), ..env() };
        let slow_rec = recommend(&w, &slow);
        let fast_rec = recommend(&w, &fast);
        // On the slow network vertical must win; on the very fast one the
        // gap shrinks or flips.
        assert_eq!(slow_rec.quadrant, Quadrant::Qd4);
        let slow_gap = estimate(Quadrant::Qd2, &w, &slow).total_seconds()
            / estimate(Quadrant::Qd4, &w, &slow).total_seconds();
        let fast_gap = estimate(Quadrant::Qd2, &w, &fast).total_seconds()
            / estimate(Quadrant::Qd4, &w, &fast).total_seconds();
        assert!(fast_gap < slow_gap, "fast {fast_gap} vs slow {slow_gap}");
        let _ = fast_rec;
    }

    #[test]
    fn all_estimates_are_finite_and_positive() {
        for n in [1_000usize, 1_000_000] {
            for d in [10usize, 100_000] {
                for c in [1usize, 50] {
                    let w = workload(n, d, c, 8);
                    for q in Quadrant::ALL {
                        let e = estimate(q, &w, &env());
                        assert!(e.comm_seconds.is_finite() && e.comm_seconds >= 0.0);
                        assert!(e.comp_seconds.is_finite() && e.comp_seconds > 0.0);
                        assert!(e.histogram_bytes > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn from_dataset_extracts_shape() {
        let ds = gbdt_data::synthetic::SyntheticConfig {
            n_instances: 500,
            n_features: 40,
            density: 0.25,
            ..Default::default()
        }
        .generate();
        let cfg = gbdt_core::TrainConfig::default();
        let w = WorkloadSpec::from_dataset(&ds, &cfg);
        assert_eq!(w.n_instances, 500);
        assert_eq!(w.n_features, 40);
        assert_eq!(w.n_outputs, 1);
        assert!((w.avg_nnz - 10.0).abs() < 1.0);
    }
}
