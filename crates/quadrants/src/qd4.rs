//! QD4 — vertical partitioning + row-store: **Vero's trainer** (§4.2.2).
//!
//! After the horizontal-to-vertical transformation each worker holds *all N
//! rows* of its column group, stored row-wise (blockified, two-phase
//! indexed), plus every instance label. Training then:
//!
//! * builds histograms only for the worker's own features with the
//!   node-to-instance index and histogram subtraction — no aggregation at
//!   all, because each worker already holds every value of its features;
//! * finds the local best split per node and exchanges only the tiny local
//!   bests (the master recovers the global feature id);
//! * has the split-feature owner compute the instance placement and
//!   broadcast it as a **bitmap** (`⌈N/8⌉` bytes — §4.2.2's 32× reduction),
//!   which every worker applies to its identical node-to-instance index.
//!
//! Communication per layer is therefore `O(N/8 · W)` regardless of D, q, C,
//! or depth — the crux of the paper's Table 1. Because no histogram ever
//! crosses the wire, [`TrainConfig::wire`] is accepted but has nothing to
//! encode: every codec (including the lossy f32) trains the identical
//! ensemble, which `tests/wire_determinism.rs` pins.

use crate::common::{
    restore_tree_checkpoint, save_tree_checkpoint, shard_dataset, subtraction_plan,
    worker_threads, DistTrainResult, Frontier, TreeStat, TreeTracker,
};
use crate::qd2::exchange_local_bests;
use gbdt_cluster::{Cluster, CommError, Phase, WorkerCtx};
use gbdt_core::histogram::HistogramPool;
use gbdt_core::indexes::NodeToInstanceIndex;
use gbdt_core::parallel::{self, Meter};
use gbdt_core::split::{best_split_parallel, NodeStats, Split, SplitParams};
use gbdt_core::tree::{self, Tree};
use gbdt_core::{GbdtModel, GradBuffer, Storage, TrainConfig};
use gbdt_data::block::BlockedRows;
use gbdt_data::dataset::Dataset;
use gbdt_data::{DenseBinnedRows, FeatureId, DEFAULT_DENSE_THRESHOLD};
use gbdt_partition::transform::{horizontal_to_vertical, TransformConfig, TransformOutput};
use gbdt_partition::{HorizontalPartition, PlacementBitmap};

/// Trains with QD4 (Vero) on `cluster.world` workers, running the full
/// pipeline: shard → transform → train.
pub fn train(cluster: &Cluster, dataset: &Dataset, config: &TrainConfig) -> DistTrainResult {
    train_with_transform(cluster, dataset, config, &TransformConfig::default())
}

/// Ablation switches for the QD4 trainer.
#[derive(Debug, Clone, Copy)]
pub struct Qd4Options {
    /// Use the histogram subtraction technique (§2.1.2). Disabling it
    /// builds BOTH children directly — the ablation for the design choice
    /// DESIGN.md calls out.
    pub use_subtraction: bool,
}

impl Default for Qd4Options {
    fn default() -> Self {
        Qd4Options { use_subtraction: true }
    }
}

/// Trains with an explicit transformation configuration (used by the
/// Table 5 ablations and the grouping-strategy experiments).
pub fn train_with_transform(
    cluster: &Cluster,
    dataset: &Dataset,
    config: &TrainConfig,
    transform_cfg: &TransformConfig,
) -> DistTrainResult {
    train_with_options(cluster, dataset, config, transform_cfg, Qd4Options::default())
}

/// Trains with explicit transformation configuration and ablation options.
pub fn train_with_options(
    cluster: &Cluster,
    dataset: &Dataset,
    config: &TrainConfig,
    transform_cfg: &TransformConfig,
    options: Qd4Options,
) -> DistTrainResult {
    config.validate().expect("invalid training config");
    let partition = HorizontalPartition::new(dataset.n_instances(), cluster.world);
    let (outputs, stats) = cluster.run_recoverable(|ctx| {
        let shard = shard_dataset(dataset, partition, ctx.rank());
        let transformed = horizontal_to_vertical(ctx, &shard, partition, transform_cfg)?;
        train_worker_with_options(ctx, transformed, config, options)
    });
    let mut models = Vec::new();
    let mut per_worker_trees = Vec::new();
    for (model, trees) in outputs {
        models.push(model);
        per_worker_trees.push(trees);
    }
    DistTrainResult {
        model: models.swap_remove(0),
        per_tree: crate::common::merge_tree_stats(&per_worker_trees),
        stats,
    }
}

pub(crate) fn train_worker_with_options(
    ctx: &mut WorkerCtx,
    transformed: TransformOutput,
    config: &TrainConfig,
    options: Qd4Options,
) -> Result<(GbdtModel, Vec<TreeStat>), CommError> {
    let TransformOutput { cuts, grouping, local_data, labels, .. } = transformed;
    let rank = ctx.rank();
    let q = config.n_bins;
    let c = config.n_outputs();
    let n = local_data.n_rows();
    let p_local = grouping.group_len(rank);
    let params = SplitParams::from_config(config);
    let objective = config.objective;
    let d_global = grouping.n_features();
    let threads = worker_threads(config, ctx.world());
    let meter = Meter::default();
    ctx.stats.threads = threads as u64;

    // Local column group in the configured layout. When the storage policy
    // selects dense, the packed cells REPLACE the two-phase blocked rows
    // (which are dropped) — histogram scans and placement lookups then run
    // on the dense store with O(1) cell access.
    let local_rows: LocalRows = ctx.time(Phase::Transform, || {
        let use_dense = match config.storage {
            Storage::Sparse => false,
            Storage::Dense | Storage::DenseWide => true,
            Storage::Auto => match n.checked_mul(p_local) {
                Some(cells) if cells > 0 => {
                    local_data.nnz() as f64 / cells as f64 >= DEFAULT_DENSE_THRESHOLD
                }
                _ => false,
            },
        };
        if use_dense {
            let rows = local_data.to_binned_rows();
            let width = match config.storage {
                Storage::DenseWide => gbdt_data::dense_binned::BinWidth::U16,
                _ => gbdt_data::dense_binned::BinWidth::for_bins(q),
            };
            LocalRows::Dense(DenseBinnedRows::from_sparse_with_width(&rows, q, width))
        } else {
            LocalRows::Blocked(local_data)
        }
    });

    ctx.stats.data_bytes = (local_rows.heap_bytes() + labels.len() * 4) as u64;

    let mut model = GbdtModel::new(objective, config.learning_rate, d_global);
    let mut scores = vec![0.0f64; n * c];
    for chunk in scores.chunks_mut(c) {
        chunk.copy_from_slice(&model.init_scores);
    }
    let mut grads = GradBuffer::new(n, c);
    let mut index = NodeToInstanceIndex::new(n);
    let mut pool = HistogramPool::new(p_local, q, c);
    ctx.stats.index_bytes = index.heap_bytes() as u64;

    let to_global = |f: FeatureId| grouping.global_id(rank, f);

    let mut tracker = TreeTracker::default();
    tracker.lap(ctx); // exclude transform/setup from the first tree's cost
    let mut per_tree = Vec::with_capacity(config.n_trees);

    let start_tree = restore_tree_checkpoint(ctx, &mut model, &mut scores, &mut per_tree);
    for t in start_tree..config.n_trees {
        // Every worker computes gradients for ALL instances (it has all
        // labels and all rows of its features).
        ctx.time(Phase::Gradients, || objective.compute_gradients(&scores, &labels, &mut grads));
        let mut tree = Tree::new(config.n_layers, c);

        // Root statistics are exact locally — no aggregation needed.
        let mut root_stats = NodeStats::zero(c);
        ctx.time(Phase::Gradients, || {
            let mut g = vec![0.0; c];
            let mut h = vec![0.0; c];
            grads.sum_instances(index.instances(0), &mut g, &mut h);
            root_stats.grads.copy_from_slice(&g);
            root_stats.hesses.copy_from_slice(&h);
        });
        let mut frontier = Frontier::root(root_stats, n as u64);
        let mut leaves: Vec<u32> = Vec::new();

        for layer in 0..config.n_layers {
            ctx.fault_point(t, layer);
            if frontier.nodes.is_empty() {
                break;
            }
            if layer + 1 == config.n_layers {
                for &node in &frontier.nodes {
                    tree.set_leaf_from_stats(
                        node,
                        &frontier.stats[&node],
                        params.lambda,
                        config.learning_rate,
                    );
                    leaves.push(node);
                }
                break;
            }

            // Histogram construction with subtraction, over local features.
            ctx.time(Phase::HistogramBuild, || {
                if layer == 0 {
                    build_histogram(&mut pool, 0, &local_rows, &grads, &index, threads, config.kernel, &meter);
                } else if options.use_subtraction {
                    let mut k = 0;
                    while k < frontier.nodes.len() {
                        let (l, r) = (frontier.nodes[k], frontier.nodes[k + 1]);
                        let (build_left, _) =
                            subtraction_plan(frontier.counts[&l], frontier.counts[&r]);
                        let (b, s) = if build_left { (l, r) } else { (r, l) };
                        build_histogram(&mut pool, b, &local_rows, &grads, &index, threads, config.kernel, &meter);
                        pool.subtract_sibling(tree::parent(l), b, s);
                        k += 2;
                    }
                } else {
                    // Ablation: no subtraction — both children built from
                    // their instances; parent histograms are dropped.
                    for &node in &frontier.nodes {
                        build_histogram(
                            &mut pool,
                            node,
                            &local_rows,
                            &grads,
                            &index,
                            threads,
                            config.kernel,
                            &meter,
                        );
                        let p = tree::parent(node);
                        pool.release(p);
                    }
                }
            });
            ctx.stats.histogram_peak_bytes = pool.peak_bytes() as u64;

            // Local best splits (global feature ids), then exchange.
            let locals: Vec<Option<Split>> = ctx.time(Phase::SplitFind, || {
                frontier
                    .nodes
                    .iter()
                    .map(|&node| {
                        if frontier.counts[&node] < config.min_node_instances as u64 {
                            return None;
                        }
                        best_split_parallel(
                            pool.get(node).expect("histogram live"),
                            &frontier.stats[&node],
                            &params,
                            |f| cuts.n_bins(to_global(f)),
                            to_global,
                            threads,
                        )
                    })
                    .collect()
            });
            let decisions = exchange_local_bests(ctx, &locals)?;

            // Node splitting via owner-computed placement bitmaps.
            let mut next = Frontier::default();
            for (&node, decision) in frontier.nodes.iter().zip(decisions) {
                match decision {
                    Some(split) => {
                        tree.set_internal_with_gain(
                            node,
                            split.feature,
                            split.bin,
                            cuts.threshold(split.feature, split.bin),
                            split.default_left,
                            split.gain,
                        );
                        let owner = grouping.group_of(split.feature);
                        let payload = if rank == owner {
                            let bm = ctx.time(Phase::NodeSplit, || {
                                placement_bitmap(&local_rows, &grouping, &index, node, &split)
                            });
                            bytes::Bytes::from(bm.encode_bytes())
                        } else {
                            bytes::Bytes::new()
                        };
                        let payload = ctx.comm.broadcast(owner, payload)?;
                        let bitmap = PlacementBitmap::decode_bytes(&payload)
                            .expect("owner broadcasts a well-formed bitmap");
                        let (lc, rc) = ctx.time(Phase::NodeSplit, || {
                            // The index visits a node's instances in order;
                            // bit k maps to the k-th instance.
                            let mut k = 0;
                            index.split(node, |_| {
                                let left = bitmap.goes_left(k);
                                k += 1;
                                left
                            })
                        });
                        Frontier::push_children(&mut next, node, &split, lc as u64, rc as u64);
                    }
                    None => {
                        tree.set_leaf_from_stats(
                            node,
                            &frontier.stats[&node],
                            params.lambda,
                            config.learning_rate,
                        );
                        leaves.push(node);
                        pool.release(node);
                    }
                }
            }
            frontier = next;
        }

        // Update scores of every instance from the leaves (identical work on
        // every worker, keeping their states in lockstep).
        ctx.time(Phase::Predict, || {
            for &leaf in &leaves {
                let values = match &tree.node(leaf).expect("leaf set").kind {
                    tree::NodeKind::Leaf { values } => values.clone(),
                    _ => unreachable!("leaves vector only holds leaf nodes"),
                };
                for &i in index.instances(leaf) {
                    let base = i as usize * c;
                    for (k, &v) in values.iter().enumerate() {
                        scores[base + k] += v;
                    }
                }
            }
        });

        pool.release_all();
        index.reset();
        model.trees.push(tree);
        per_tree.push(tracker.lap(ctx));
        save_tree_checkpoint(ctx, &model, &scores, &per_tree);
    }
    ctx.stats.parallel_wall_seconds = meter.wall_seconds();
    ctx.stats.parallel_busy_seconds = meter.busy_seconds();
    Ok((model, per_tree))
}

/// The local column group in whichever layout the storage policy selected:
/// blockified sparse rows (the pre-existing two-phase layout) or packed
/// dense cells.
enum LocalRows {
    Blocked(BlockedRows),
    Dense(DenseBinnedRows),
}

impl LocalRows {
    fn heap_bytes(&self) -> usize {
        match self {
            LocalRows::Blocked(b) => b.heap_bytes(),
            LocalRows::Dense(d) => d.heap_bytes(),
        }
    }
}

/// Builds the placement bitmap for `node` on the worker owning the split
/// feature — two-phase row lookups on the blocked column group, or O(1)
/// cell lookups on the dense layout.
fn placement_bitmap(
    local_rows: &LocalRows,
    grouping: &gbdt_partition::ColumnGrouping,
    index: &NodeToInstanceIndex,
    node: u32,
    split: &Split,
) -> PlacementBitmap {
    let local_feat = grouping.local_id(split.feature);
    let instances = index.instances(node);
    let mut bm = PlacementBitmap::new(instances.len());
    for (k, &inst) in instances.iter().enumerate() {
        let goes_left = match local_rows {
            LocalRows::Dense(dense) => match dense.get(inst as usize, local_feat) {
                Some(b) => b <= split.bin,
                None => split.default_left,
            },
            LocalRows::Blocked(blocked) => {
                let (feats, bins) = blocked.row(inst);
                match feats.binary_search(&local_feat) {
                    Ok(pos) => bins[pos] <= split.bin,
                    Err(_) => split.default_left,
                }
            }
        };
        if goes_left {
            bm.set(k);
        }
    }
    bm
}

#[allow(clippy::too_many_arguments)]
fn build_histogram(
    pool: &mut HistogramPool,
    node: u32,
    local_rows: &LocalRows,
    grads: &GradBuffer,
    index: &NodeToInstanceIndex,
    threads: usize,
    kernel: gbdt_core::Kernel,
    meter: &Meter,
) {
    parallel::build_histogram_chunked(pool, node, index.instances(node), threads, meter, |hist, chunk| {
        match local_rows {
            LocalRows::Dense(dense) => {
                gbdt_core::kernels::fill_dense_rows(hist, chunk, dense, grads, kernel)
            }
            LocalRows::Blocked(blocked) => {
                for &i in chunk {
                    let (g, h) = grads.instance(i as usize);
                    let (feats, bins) = blocked.row(i);
                    for (&f, &b) in feats.iter().zip(bins) {
                        hist.add_instance(f, b, g, h);
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::Objective;
    use gbdt_data::synthetic::SyntheticConfig;

    fn dataset(n: usize, d: usize, classes: usize, seed: u64) -> Dataset {
        SyntheticConfig {
            n_instances: n,
            n_features: d,
            n_classes: classes,
            density: 0.5,
            label_noise: 0.02,
            seed,
            ..Default::default()
        }
        .generate()
    }

    fn config(classes: usize, trees: usize) -> TrainConfig {
        let objective = if classes > 2 {
            Objective::Softmax { n_classes: classes }
        } else {
            Objective::Logistic
        };
        TrainConfig::builder().n_trees(trees).n_layers(5).objective(objective).build().unwrap()
    }

    #[test]
    fn learns_binary() {
        let ds = dataset(1_200, 15, 2, 61);
        let result = train(&Cluster::new(3), &ds, &config(2, 8));
        let eval = result.model.evaluate(&ds);
        assert!(eval.auc.unwrap() > 0.85, "AUC {:?}", eval.auc);
        assert_eq!(result.per_tree.len(), 8);
    }

    #[test]
    fn learns_multiclass() {
        let ds = dataset(900, 12, 4, 67);
        let result = train(&Cluster::new(2), &ds, &config(4, 8));
        assert!(result.model.evaluate(&ds).accuracy.unwrap() > 0.4);
    }

    #[test]
    fn single_worker_matches_single_node_reference() {
        let ds = dataset(700, 12, 2, 71);
        let cfg = config(2, 6);
        let dist = train(&Cluster::new(1), &ds, &cfg);
        let reference = crate::single::train(&ds, &cfg);
        assert_eq!(dist.model, reference);
    }

    #[test]
    fn matches_qd2_across_workers() {
        // The central claim of the shared code base: identical trees from
        // horizontal and vertical trainers on the same data.
        let ds = dataset(800, 14, 2, 73);
        let cfg = config(2, 5);
        let qd2 = crate::qd2::train(
            &Cluster::new(3),
            &ds,
            &cfg,
            crate::common::Aggregation::AllReduce,
        );
        let qd4 = train(&Cluster::new(3), &ds, &cfg);
        let p2 = qd2.model.predict_dataset_raw(&ds);
        let p4 = qd4.model.predict_dataset_raw(&ds);
        for (a, b) in p2.iter().zip(&p4) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn more_workers_than_features_still_works() {
        let ds = dataset(300, 3, 2, 79);
        let cfg = config(2, 3);
        let result = train(&Cluster::new(5), &ds, &cfg);
        assert_eq!(result.model.trees.len(), 3);
    }

    #[test]
    fn bitmap_traffic_is_independent_of_dimensionality(){
        // Fixed N: doubling D must not grow QD4's per-tree traffic much
        // (only the one-off transform grows).
        let cfg = config(2, 4);
        let mut traffic = Vec::new();
        for d in [20usize, 40] {
            let ds = dataset(600, d, 2, 83);
            let cluster = Cluster::new(2);
            let partition = HorizontalPartition::new(ds.n_instances(), 2);
            let tcfg = TransformConfig::default();
            let (outputs, stats) = cluster.run(|ctx| {
                let shard = shard_dataset(&ds, partition, ctx.rank());
                let transformed =
                    horizontal_to_vertical(ctx, &shard, partition, &tcfg).unwrap();
                let before_train = ctx.comm.counters().bytes_sent;
                let out = train_worker_with_options(ctx, transformed, &cfg, Qd4Options::default())
                    .unwrap();
                (out, ctx.comm.counters().bytes_sent - before_train)
            });
            let train_bytes: u64 = outputs.iter().map(|(_, b)| *b).sum();
            let _ = stats;
            traffic.push(train_bytes);
        }
        let ratio = traffic[1] as f64 / traffic[0] as f64;
        assert!(
            ratio < 1.5,
            "QD4 training traffic should not scale with D: {traffic:?} (ratio {ratio})"
        );
    }
}
