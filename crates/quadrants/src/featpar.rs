//! LightGBM's feature-parallel mode (Appendix D).
//!
//! The dataset is **never partitioned**: every worker loads a full copy.
//! Histogram construction and split finding proceed as in vertical
//! partitioning (each worker covers a feature subset and local bests are
//! exchanged), but node splitting needs no placement broadcast — every
//! worker owns every feature and computes placements locally. The paper's
//! verdict: fast on small data (no histogram aggregation, no bitmap
//! traffic) but "impractical for large-scale workloads" because per-worker
//! memory holds the entire dataset — which our `data_bytes` gauge reports.
//! With no histogram aggregation there is nothing for [`TrainConfig::wire`]
//! to encode: every codec (including the lossy f32) trains the identical
//! ensemble here.

use crate::common::{
    restore_tree_checkpoint, save_tree_checkpoint, subtraction_plan, worker_threads,
    DistTrainResult, Frontier, TreeStat, TreeTracker,
};
use crate::qd2::exchange_local_bests;
use gbdt_cluster::{Cluster, CommError, Phase, WorkerCtx};
use gbdt_core::histogram::HistogramPool;
use gbdt_core::indexes::NodeToInstanceIndex;
use gbdt_core::parallel::{self, Meter};
use gbdt_core::split::{best_split_parallel, NodeStats, Split, SplitParams};
use gbdt_core::tree::{self, Tree};
use gbdt_core::{BinCuts, GbdtModel, GradBuffer, TrainConfig};
use gbdt_data::dataset::Dataset;
use gbdt_data::{BinnedStore, FeatureId};
use gbdt_partition::{ColumnGrouping, GroupingStrategy};

/// Trains feature-parallel on `cluster.world` workers (full replica each).
pub fn train(cluster: &Cluster, dataset: &Dataset, config: &TrainConfig) -> DistTrainResult {
    config.validate().expect("invalid training config");
    // With a full replica everywhere, cuts and grouping are computed
    // identically and locally on every worker — no sketch repartition.
    let (outputs, stats) = cluster.run_recoverable(|ctx| train_worker(ctx, dataset, config));
    let mut models = Vec::new();
    let mut per_worker_trees = Vec::new();
    for (model, trees) in outputs {
        models.push(model);
        per_worker_trees.push(trees);
    }
    DistTrainResult {
        model: models.swap_remove(0),
        per_tree: crate::common::merge_tree_stats(&per_worker_trees),
        stats,
    }
}

fn train_worker(
    ctx: &mut WorkerCtx,
    dataset: &Dataset,
    config: &TrainConfig,
) -> Result<(GbdtModel, Vec<TreeStat>), CommError> {
    let rank = ctx.rank();
    let world = ctx.world();
    let d = dataset.n_features();
    let q = config.n_bins;
    let c = config.n_outputs();
    let n = dataset.n_instances();
    let params = SplitParams::from_config(config);
    let objective = config.objective;
    let threads = worker_threads(config, world);
    let meter = Meter::default();
    ctx.stats.threads = threads as u64;

    // Full local copy: sketch, bin, and group features — all locally.
    let cuts = ctx.time(Phase::Sketch, || BinCuts::from_dataset(dataset, q));
    let full: BinnedStore = ctx.time(Phase::Sketch, || cuts.apply_store(dataset, config.storage));
    let grouping = ctx.time(Phase::Sketch, || {
        let mut weights = vec![0u64; d];
        for i in 0..n {
            full.for_each_in_row(i, |j, _| weights[j as usize] += 1);
        }
        ColumnGrouping::build(GroupingStrategy::GreedyBalanced, d, world, &weights)
    });
    // Per-worker feature-subset view (same layout) for histogram building.
    let local: BinnedStore =
        ctx.time(Phase::Sketch, || full.select_cols(grouping.group_features(rank)));
    // The defining cost: the WHOLE dataset lives on this worker.
    ctx.stats.data_bytes = (full.heap_bytes() + local.heap_bytes() + n * 4) as u64;

    let mut model = GbdtModel::new(objective, config.learning_rate, d);
    let mut scores = vec![0.0f64; n * c];
    for chunk in scores.chunks_mut(c) {
        chunk.copy_from_slice(&model.init_scores);
    }
    let mut grads = GradBuffer::new(n, c);
    let mut index = NodeToInstanceIndex::new(n);
    let mut pool = HistogramPool::new(grouping.group_len(rank), q, c);
    ctx.stats.index_bytes = index.heap_bytes() as u64;

    let to_global = |f: FeatureId| grouping.global_id(rank, f);

    let mut tracker = TreeTracker::default();
    tracker.lap(ctx);
    let mut per_tree = Vec::with_capacity(config.n_trees);

    let start_tree = restore_tree_checkpoint(ctx, &mut model, &mut scores, &mut per_tree);
    for t in start_tree..config.n_trees {
        ctx.time(Phase::Gradients, || {
            objective.compute_gradients(&scores, &dataset.labels, &mut grads)
        });
        let mut tree = Tree::new(config.n_layers, c);

        let mut root_stats = NodeStats::zero(c);
        ctx.time(Phase::Gradients, || {
            let mut g = vec![0.0; c];
            let mut h = vec![0.0; c];
            grads.sum_instances(index.instances(0), &mut g, &mut h);
            root_stats.grads.copy_from_slice(&g);
            root_stats.hesses.copy_from_slice(&h);
        });
        let mut frontier = Frontier::root(root_stats, n as u64);
        let mut leaves: Vec<u32> = Vec::new();

        for layer in 0..config.n_layers {
            ctx.fault_point(t, layer);
            if frontier.nodes.is_empty() {
                break;
            }
            if layer + 1 == config.n_layers {
                for &node in &frontier.nodes {
                    tree.set_leaf_from_stats(
                        node,
                        &frontier.stats[&node],
                        params.lambda,
                        config.learning_rate,
                    );
                    leaves.push(node);
                }
                break;
            }

            ctx.time(Phase::HistogramBuild, || {
                if layer == 0 {
                    build_histogram(&mut pool, 0, &local, &grads, &index, threads, config.kernel, &meter);
                } else {
                    let mut k = 0;
                    while k < frontier.nodes.len() {
                        let (l, r) = (frontier.nodes[k], frontier.nodes[k + 1]);
                        let (build_left, _) =
                            subtraction_plan(frontier.counts[&l], frontier.counts[&r]);
                        let (b, s) = if build_left { (l, r) } else { (r, l) };
                        build_histogram(&mut pool, b, &local, &grads, &index, threads, config.kernel, &meter);
                        pool.subtract_sibling(tree::parent(l), b, s);
                        k += 2;
                    }
                }
            });
            ctx.stats.histogram_peak_bytes = pool.peak_bytes() as u64;

            let locals: Vec<Option<Split>> = ctx.time(Phase::SplitFind, || {
                frontier
                    .nodes
                    .iter()
                    .map(|&node| {
                        if frontier.counts[&node] < config.min_node_instances as u64 {
                            return None;
                        }
                        best_split_parallel(
                            pool.get(node).expect("histogram live"),
                            &frontier.stats[&node],
                            &params,
                            |f| cuts.n_bins(to_global(f)),
                            to_global,
                            threads,
                        )
                    })
                    .collect()
            });
            let decisions = exchange_local_bests(ctx, &locals)?;

            // Node splitting is LOCAL: the full replica answers every
            // feature lookup — no bitmap broadcast (Appendix D).
            let mut next = Frontier::default();
            for (&node, decision) in frontier.nodes.iter().zip(decisions) {
                match decision {
                    Some(split) => {
                        tree.set_internal_with_gain(
                            node,
                            split.feature,
                            split.bin,
                            cuts.threshold(split.feature, split.bin),
                            split.default_left,
                            split.gain,
                        );
                        let (lc, rc) = ctx.time(Phase::NodeSplit, || {
                            index.split(node, |i| match full.get(i as usize, split.feature) {
                                Some(b) => b <= split.bin,
                                None => split.default_left,
                            })
                        });
                        Frontier::push_children(&mut next, node, &split, lc as u64, rc as u64);
                    }
                    None => {
                        tree.set_leaf_from_stats(
                            node,
                            &frontier.stats[&node],
                            params.lambda,
                            config.learning_rate,
                        );
                        leaves.push(node);
                        pool.release(node);
                    }
                }
            }
            frontier = next;
        }

        ctx.time(Phase::Predict, || {
            for &leaf in &leaves {
                let values = match &tree.node(leaf).expect("leaf set").kind {
                    tree::NodeKind::Leaf { values } => values.clone(),
                    _ => unreachable!("leaves vector only holds leaf nodes"),
                };
                for &i in index.instances(leaf) {
                    let base = i as usize * c;
                    for (k, &v) in values.iter().enumerate() {
                        scores[base + k] += v;
                    }
                }
            }
        });

        pool.release_all();
        index.reset();
        model.trees.push(tree);
        per_tree.push(tracker.lap(ctx));
        save_tree_checkpoint(ctx, &model, &scores, &per_tree);
    }
    ctx.stats.parallel_wall_seconds = meter.wall_seconds();
    ctx.stats.parallel_busy_seconds = meter.busy_seconds();
    Ok((model, per_tree))
}

#[allow(clippy::too_many_arguments)]
fn build_histogram(
    pool: &mut HistogramPool,
    node: u32,
    local: &BinnedStore,
    grads: &GradBuffer,
    index: &NodeToInstanceIndex,
    threads: usize,
    kernel: gbdt_core::Kernel,
    meter: &Meter,
) {
    parallel::build_histogram_chunked(pool, node, index.instances(node), threads, meter, |hist, chunk| {
        gbdt_core::kernels::fill_rows_chunk(hist, chunk, local, grads, kernel);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_data::synthetic::SyntheticConfig;

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        SyntheticConfig {
            n_instances: n,
            n_features: d,
            n_classes: 2,
            density: 0.5,
            label_noise: 0.02,
            seed,
            ..Default::default()
        }
        .generate()
    }

    fn config(trees: usize) -> TrainConfig {
        TrainConfig::builder().n_trees(trees).n_layers(5).build().unwrap()
    }

    #[test]
    fn learns_binary() {
        let ds = dataset(1_000, 12, 163);
        let result = train(&Cluster::new(3), &ds, &config(8));
        assert!(result.model.evaluate(&ds).auc.unwrap() > 0.85);
    }

    #[test]
    fn matches_single_node_reference() {
        // Full replica + local cuts = exactly the single-node computation,
        // just with split finding sharded.
        let ds = dataset(700, 10, 167);
        let cfg = config(5);
        let fp = train(&Cluster::new(3), &ds, &cfg);
        let single = crate::single::train(&ds, &cfg);
        let pf = fp.model.predict_dataset_raw(&ds);
        let ps = single.predict_dataset_raw(&ds);
        for (a, b) in pf.iter().zip(&ps) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn memory_holds_full_dataset_per_worker() {
        let ds = dataset(500, 10, 173);
        let result = train(&Cluster::new(4), &ds, &config(2));
        // Every worker's data_bytes covers the full dataset, unlike the
        // partitioned quadrants where shards shrink with W.
        let full_bytes = result.stats.workers[0].data_bytes;
        for w in &result.stats.workers {
            assert!(w.data_bytes >= full_bytes * 9 / 10);
        }
        let qd4 = crate::qd4::train(&Cluster::new(4), &ds, &config(2));
        assert!(
            result.stats.max_data_bytes() > qd4.stats.max_data_bytes(),
            "replica {} should exceed vertical shard {}",
            result.stats.max_data_bytes(),
            qd4.stats.max_data_bytes()
        );
    }

    #[test]
    fn no_placement_broadcast_traffic() {
        // Feature-parallel sends only sketches/splits; per-tree traffic
        // must be far below QD4's bitmap broadcasts for the same shape.
        let ds = dataset(2_000, 10, 179);
        let cfg = config(6);
        let fp = train(&Cluster::new(2), &ds, &cfg);
        let qd4 = crate::qd4::train(&Cluster::new(2), &ds, &cfg);
        assert!(
            fp.stats.total_bytes_sent() < qd4.stats.total_bytes_sent(),
            "FP {} vs QD4 {}",
            fp.stats.total_bytes_sent(),
            qd4.stats.total_bytes_sent()
        );
    }
}
