//! Yggdrasil-style trainer — vertical partitioning + column-store with a
//! **column-wise node-to-instance index** (§4.1, Appendix C).
//!
//! Each worker keeps its columns physically partitioned by tree node
//! (Figure 6), so locating a node's 〈instance, bin〉 pairs on every column is
//! free and histogram construction is a straight sequential read. The price
//! is node splitting: every split must repartition **all** local columns —
//! the `O(D)`-fold index-update cost that makes this design "only applicable
//! for low-dimensional datasets" (§3.2.3).
//!
//! Like every vertical trainer, no histogram ever crosses the wire, so
//! [`TrainConfig::wire`] is accepted but has nothing to encode — all wire
//! codecs (including the lossy f32) train the identical ensemble.

use crate::common::{
    restore_tree_checkpoint, save_tree_checkpoint, shard_dataset, subtraction_plan,
    worker_threads, DistTrainResult, Frontier, TreeStat, TreeTracker,
};
use crate::qd2::exchange_local_bests;
use gbdt_cluster::{Cluster, CommError, Phase, WorkerCtx};
use gbdt_core::histogram::{add_instance_to_feature_slice, HistogramPool};
use gbdt_core::indexes::{ColumnWiseIndex, NodeToInstanceIndex};
use gbdt_core::parallel::{par_feature_fill, Meter};
use gbdt_core::split::{best_split_parallel, NodeStats, Split, SplitParams};
use gbdt_core::tree::{self, Tree};
use gbdt_core::{GbdtModel, GradBuffer, TrainConfig};
use gbdt_data::dataset::Dataset;
use gbdt_data::{ColumnStore, FeatureId};
use gbdt_partition::transform::{horizontal_to_vertical, TransformConfig, TransformOutput};
use gbdt_partition::{HorizontalPartition, PlacementBitmap};

/// Trains Yggdrasil-style on `cluster.world` workers.
pub fn train(cluster: &Cluster, dataset: &Dataset, config: &TrainConfig) -> DistTrainResult {
    config.validate().expect("invalid training config");
    let partition = HorizontalPartition::new(dataset.n_instances(), cluster.world);
    let transform_cfg = TransformConfig::default();
    let (outputs, stats) = cluster.run_recoverable(|ctx| {
        let shard = shard_dataset(dataset, partition, ctx.rank());
        let transformed = horizontal_to_vertical(ctx, &shard, partition, &transform_cfg)?;
        train_worker(ctx, transformed, config)
    });
    let mut models = Vec::new();
    let mut per_worker_trees = Vec::new();
    for (model, trees) in outputs {
        models.push(model);
        per_worker_trees.push(trees);
    }
    DistTrainResult {
        model: models.swap_remove(0),
        per_tree: crate::common::merge_tree_stats(&per_worker_trees),
        stats,
    }
}

fn train_worker(
    ctx: &mut WorkerCtx,
    transformed: TransformOutput,
    config: &TrainConfig,
) -> Result<(GbdtModel, Vec<TreeStat>), CommError> {
    let TransformOutput { cuts, grouping, local_data, labels, .. } = transformed;
    let rank = ctx.rank();
    let q = config.n_bins;
    let c = config.n_outputs();
    let n = local_data.n_rows();
    let p_local = grouping.group_len(rank);
    let params = SplitParams::from_config(config);
    let objective = config.objective;
    let threads = worker_threads(config, ctx.world());
    let meter = Meter::default();
    ctx.stats.threads = threads as u64;

    let columns: ColumnStore = ctx.time(Phase::Transform, || {
        config.storage.bin_store(local_data.to_binned_rows(), q).to_columns()
    });
    let mut cw_index = ctx.time(Phase::Transform, || ColumnWiseIndex::from_store(&columns));
    ctx.stats.data_bytes = (columns.heap_bytes() + labels.len() * 4) as u64;

    let mut model = GbdtModel::new(objective, config.learning_rate, grouping.n_features());
    let mut scores = vec![0.0f64; n * c];
    for chunk in scores.chunks_mut(c) {
        chunk.copy_from_slice(&model.init_scores);
    }
    let mut grads = GradBuffer::new(n, c);
    // Auxiliary plain index for canonical instance ordering, counts, and
    // prediction updates (identical across workers).
    let mut index = NodeToInstanceIndex::new(n);
    let mut pool = HistogramPool::new(p_local, q, c);
    ctx.stats.index_bytes = (index.heap_bytes() + cw_index.heap_bytes()) as u64;

    let to_global = |f: FeatureId| grouping.global_id(rank, f);
    let mut scratch_left = vec![false; n];

    let mut tracker = TreeTracker::default();
    tracker.lap(ctx);
    let mut per_tree = Vec::with_capacity(config.n_trees);

    let start_tree = restore_tree_checkpoint(ctx, &mut model, &mut scores, &mut per_tree);
    for t in start_tree..config.n_trees {
        ctx.time(Phase::Gradients, || objective.compute_gradients(&scores, &labels, &mut grads));
        let mut tree = Tree::new(config.n_layers, c);

        let mut root_stats = NodeStats::zero(c);
        ctx.time(Phase::Gradients, || {
            let mut g = vec![0.0; c];
            let mut h = vec![0.0; c];
            grads.sum_instances(index.instances(0), &mut g, &mut h);
            root_stats.grads.copy_from_slice(&g);
            root_stats.hesses.copy_from_slice(&h);
        });
        let mut frontier = Frontier::root(root_stats, n as u64);
        let mut leaves: Vec<u32> = Vec::new();

        for layer in 0..config.n_layers {
            ctx.fault_point(t, layer);
            if frontier.nodes.is_empty() {
                break;
            }
            if layer + 1 == config.n_layers {
                for &node in &frontier.nodes {
                    tree.set_leaf_from_stats(
                        node,
                        &frontier.stats[&node],
                        params.lambda,
                        config.learning_rate,
                    );
                    leaves.push(node);
                }
                break;
            }

            // Histogram construction: direct sequential reads of each
            // column's node slice — the part this index is good at.
            ctx.time(Phase::HistogramBuild, || {
                if layer == 0 {
                    build_histogram(&mut pool, 0, &cw_index, &grads, threads, &meter);
                } else {
                    let mut k = 0;
                    while k < frontier.nodes.len() {
                        let (l, r) = (frontier.nodes[k], frontier.nodes[k + 1]);
                        let (build_left, _) =
                            subtraction_plan(frontier.counts[&l], frontier.counts[&r]);
                        let (b, s) = if build_left { (l, r) } else { (r, l) };
                        build_histogram(&mut pool, b, &cw_index, &grads, threads, &meter);
                        pool.subtract_sibling(tree::parent(l), b, s);
                        k += 2;
                    }
                }
            });
            ctx.stats.histogram_peak_bytes = pool.peak_bytes() as u64;

            let locals: Vec<Option<Split>> = ctx.time(Phase::SplitFind, || {
                frontier
                    .nodes
                    .iter()
                    .map(|&node| {
                        if frontier.counts[&node] < config.min_node_instances as u64 {
                            return None;
                        }
                        best_split_parallel(
                            pool.get(node).expect("histogram live"),
                            &frontier.stats[&node],
                            &params,
                            |f| cuts.n_bins(to_global(f)),
                            to_global,
                            threads,
                        )
                    })
                    .collect()
            });
            let decisions = exchange_local_bests(ctx, &locals)?;

            let mut next = Frontier::default();
            for (&node, decision) in frontier.nodes.iter().zip(decisions) {
                match decision {
                    Some(split) => {
                        tree.set_internal_with_gain(
                            node,
                            split.feature,
                            split.bin,
                            cuts.threshold(split.feature, split.bin),
                            split.default_left,
                            split.gain,
                        );
                        let owner = grouping.group_of(split.feature);
                        let payload = if rank == owner {
                            let bm = ctx.time(Phase::NodeSplit, || {
                                placement_bitmap(&cw_index, &grouping, &index, node, &split)
                            });
                            bytes::Bytes::from(bm.encode_bytes())
                        } else {
                            bytes::Bytes::new()
                        };
                        let payload = ctx.comm.broadcast(owner, payload)?;
                        let bitmap = PlacementBitmap::decode_bytes(&payload)
                            .expect("owner broadcasts a well-formed bitmap");
                        let (lc, rc) = ctx.time(Phase::NodeSplit, || {
                            for (k, &inst) in index.instances(node).iter().enumerate() {
                                scratch_left[inst as usize] = bitmap.goes_left(k);
                            }
                            // THE expensive step: repartition every column.
                            cw_index.split(node, |i| scratch_left[i as usize]);
                            index.split(node, |i| scratch_left[i as usize])
                        });
                        Frontier::push_children(&mut next, node, &split, lc as u64, rc as u64);
                    }
                    None => {
                        tree.set_leaf_from_stats(
                            node,
                            &frontier.stats[&node],
                            params.lambda,
                            config.learning_rate,
                        );
                        leaves.push(node);
                        pool.release(node);
                    }
                }
            }
            frontier = next;
        }

        ctx.time(Phase::Predict, || {
            for &leaf in &leaves {
                let values = match &tree.node(leaf).expect("leaf set").kind {
                    tree::NodeKind::Leaf { values } => values.clone(),
                    _ => unreachable!("leaves vector only holds leaf nodes"),
                };
                for &i in index.instances(leaf) {
                    let base = i as usize * c;
                    for (k, &v) in values.iter().enumerate() {
                        scores[base + k] += v;
                    }
                }
            }
        });

        pool.release_all();
        index.reset();
        ctx.time(Phase::NodeSplit, || cw_index.reset_from_store(&columns));
        model.trees.push(tree);
        per_tree.push(tracker.lap(ctx));
        save_tree_checkpoint(ctx, &model, &scores, &per_tree);
    }
    ctx.stats.parallel_wall_seconds = meter.wall_seconds();
    ctx.stats.parallel_busy_seconds = meter.busy_seconds();
    Ok((model, per_tree))
}

fn build_histogram(
    pool: &mut HistogramPool,
    node: u32,
    cw_index: &ColumnWiseIndex,
    grads: &GradBuffer,
    threads: usize,
    meter: &Meter,
) {
    let hist = pool.acquire(node);
    let c = hist.n_outputs();
    // Whole columns fan out across threads; each feature's region is
    // disjoint and read in the sequential node-slice order, so the result
    // is bit-identical for every thread count.
    par_feature_fill(hist, threads, meter, |j, slice| {
        let (insts, bins) = cw_index.node_column(node, j);
        for (&i, &b) in insts.iter().zip(bins) {
            let (g, h) = grads.instance(i as usize);
            add_instance_to_feature_slice(slice, c, b, g, h);
        }
    });
}

/// Bitmap from the column-wise index: the split column's node slice is
/// already contiguous; absent instances fall to the default side.
fn placement_bitmap(
    cw_index: &ColumnWiseIndex,
    grouping: &gbdt_partition::ColumnGrouping,
    index: &NodeToInstanceIndex,
    node: u32,
    split: &Split,
) -> PlacementBitmap {
    let local_feat = grouping.local_id(split.feature) as usize;
    let (insts, bins) = cw_index.node_column(node, local_feat);
    // Present instances, by id. BTreeMap so placement never depends on hash
    // order (only keyed lookups today, but the bitmap reaches the wire).
    let mut present: std::collections::BTreeMap<u32, u16> =
        std::collections::BTreeMap::new();
    for (&i, &b) in insts.iter().zip(bins) {
        present.insert(i, b);
    }
    let instances = index.instances(node);
    let mut bm = PlacementBitmap::new(instances.len());
    for (k, &inst) in instances.iter().enumerate() {
        let goes_left = match present.get(&inst) {
            Some(&b) => b <= split.bin,
            None => split.default_left,
        };
        if goes_left {
            bm.set(k);
        }
    }
    bm
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_data::synthetic::SyntheticConfig;

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        SyntheticConfig {
            n_instances: n,
            n_features: d,
            n_classes: 2,
            density: 0.5,
            label_noise: 0.02,
            seed,
            ..Default::default()
        }
        .generate()
    }

    fn config(trees: usize) -> TrainConfig {
        TrainConfig::builder().n_trees(trees).n_layers(5).build().unwrap()
    }

    #[test]
    fn learns_binary() {
        let ds = dataset(1_000, 12, 149);
        let result = train(&Cluster::new(2), &ds, &config(8));
        assert!(result.model.evaluate(&ds).auc.unwrap() > 0.85);
    }

    #[test]
    fn matches_qd4_predictions() {
        let ds = dataset(700, 10, 151);
        let cfg = config(5);
        let ygg = train(&Cluster::new(2), &ds, &cfg);
        let qd4 = crate::qd4::train(&Cluster::new(2), &ds, &cfg);
        let py = ygg.model.predict_dataset_raw(&ds);
        let p4 = qd4.model.predict_dataset_raw(&ds);
        for (a, b) in py.iter().zip(&p4) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
