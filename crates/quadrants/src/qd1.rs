//! QD1 — horizontal partitioning + column-store (XGBoost, §4.1).
//!
//! Each worker stores its row shard as binned *columns* and maintains an
//! **instance-to-node** index. Histograms for a whole layer are built in one
//! linear pass over the columns — for every 〈instance, bin〉 pair the
//! instance's current node is looked up and the gradient lands in that
//! node's histogram. The index cannot enumerate a node's instances, so QD1
//! **cannot exploit histogram subtraction** (§3.2.3): every layer rescans
//! all local pairs, and both children of every split are built from
//! scratch. Aggregation is all-reduce, after which every worker finds every
//! split redundantly (the leader-based variant has identical traffic shape).

use crate::common::{
    all_reduce_stats, record_layer_wire_bytes, restore_tree_checkpoint, save_tree_checkpoint,
    shard_dataset, worker_threads, DistTrainResult, Frontier, TreeStat, TreeTracker,
};
use gbdt_cluster::{Cluster, CommError, Phase, WorkerCtx};
use gbdt_core::histogram::{add_instance_to_feature_slice, histogram_size_bytes, NodeHistogram};
use gbdt_core::indexes::InstanceToNodeIndex;
use gbdt_core::parallel::Meter;
use gbdt_core::split::{best_split_parallel, NodeStats, Split, SplitParams};
use gbdt_core::tree::{self, Tree};
use gbdt_core::{GbdtModel, GradBuffer, TrainConfig};
use gbdt_data::dataset::Dataset;
use gbdt_data::{ColumnStore, InstanceId};
use gbdt_partition::transform::build_global_cuts;
use gbdt_partition::HorizontalPartition;

/// Trains with QD1 on `cluster.world` workers.
pub fn train(cluster: &Cluster, dataset: &Dataset, config: &TrainConfig) -> DistTrainResult {
    config.validate().expect("invalid training config");
    let partition = HorizontalPartition::new(dataset.n_instances(), cluster.world);
    let (outputs, stats) = cluster.run_recoverable(|ctx| {
        let shard = shard_dataset(dataset, partition, ctx.rank());
        train_worker(ctx, &shard, config)
    });
    let mut models = Vec::new();
    let mut per_worker_trees = Vec::new();
    for (model, trees) in outputs {
        models.push(model);
        per_worker_trees.push(trees);
    }
    DistTrainResult {
        model: models.swap_remove(0),
        per_tree: crate::common::merge_tree_stats(&per_worker_trees),
        stats,
    }
}

fn train_worker(
    ctx: &mut WorkerCtx,
    shard: &Dataset,
    config: &TrainConfig,
) -> Result<(GbdtModel, Vec<TreeStat>), CommError> {
    let d = shard.n_features();
    let q = config.n_bins;
    let c = config.n_outputs();
    let params = SplitParams::from_config(config);
    let objective = config.objective;
    let threads = worker_threads(config, ctx.world());
    let meter = Meter::default();
    ctx.stats.threads = threads as u64;

    let (cuts, _) = build_global_cuts(ctx, shard, q, gbdt_core::QuantileSketch::DEFAULT_CAP)?;
    let columns: ColumnStore =
        ctx.time(Phase::Sketch, || cuts.apply_store(shard, config.storage).to_columns());
    ctx.stats.data_bytes = columns.heap_bytes() as u64;

    let n_local = columns.n_rows();
    let mut model = GbdtModel::new(objective, config.learning_rate, d);
    let mut scores = vec![0.0f64; n_local * c];
    for chunk in scores.chunks_mut(c) {
        chunk.copy_from_slice(&model.init_scores);
    }
    let mut grads = GradBuffer::new(n_local, c);
    let mut index = InstanceToNodeIndex::new(n_local);
    ctx.stats.index_bytes = index.heap_bytes() as u64;

    let mut tracker = TreeTracker::default();
    tracker.lap(ctx);
    let mut per_tree = Vec::with_capacity(config.n_trees);
    let mut hist_peak = 0usize;

    let start_tree = restore_tree_checkpoint(ctx, &mut model, &mut scores, &mut per_tree);
    for t in start_tree..config.n_trees {
        ctx.time(Phase::Gradients, || {
            objective.compute_gradients(&scores, &shard.labels, &mut grads)
        });
        let mut tree = Tree::new(config.n_layers, c);

        let mut root_stats = NodeStats::zero(c);
        ctx.time(Phase::Gradients, || {
            for i in 0..n_local {
                let (g, h) = grads.instance(i);
                for k in 0..c {
                    root_stats.grads[k] += g[k];
                    root_stats.hesses[k] += h[k];
                }
            }
        });
        all_reduce_stats(ctx, &mut root_stats)?;
        let mut count_buf = vec![n_local as f64];
        ctx.comm.all_reduce_f64(&mut count_buf)?;
        let mut frontier = Frontier::root(root_stats, count_buf[0] as u64);
        let mut leaves: Vec<u32> = Vec::new();

        for layer in 0..config.n_layers {
            ctx.fault_point(t, layer);
            if frontier.nodes.is_empty() {
                break;
            }
            if layer + 1 == config.n_layers {
                for &node in &frontier.nodes {
                    tree.set_leaf_from_stats(
                        node,
                        &frontier.stats[&node],
                        params.lambda,
                        config.learning_rate,
                    );
                    leaves.push(node);
                }
                break;
            }

            // One column pass builds the histograms of the WHOLE layer —
            // no subtraction, every pair of the shard is touched.
            let layer_base = (1u32 << layer) - 1;
            let layer_len = 1usize << layer;
            let mut hists: Vec<Option<NodeHistogram>> = (0..layer_len).map(|_| None).collect();
            for &node in &frontier.nodes {
                hists[(node - layer_base) as usize] = Some(NodeHistogram::new(d, q, c));
            }
            hist_peak = hist_peak.max(frontier.nodes.len() * histogram_size_bytes(d, q, c));
            ctx.time(Phase::HistogramBuild, || {
                build_layer_histograms(
                    &columns, &grads, &index, &mut hists, layer_base, threads, &meter,
                );
            });

            // All-reduce each node's histogram under the configured wire
            // codec; every worker then finds the same best split. Control
            // traffic (counts, root stats) stays dense — only histogram
            // payloads are codec-mediated.
            let wire_before = ctx.comm.counters();
            for &node in &frontier.nodes {
                let hist = hists[(node - layer_base) as usize].as_mut().expect("allocated");
                ctx.comm.all_reduce_f64_codec(config.wire, hist.as_mut_slice())?;
            }
            record_layer_wire_bytes(ctx, layer, wire_before);

            let decisions: Vec<Option<Split>> = ctx.time(Phase::SplitFind, || {
                frontier
                    .nodes
                    .iter()
                    .map(|&node| {
                        if frontier.counts[&node] < config.min_node_instances as u64 {
                            return None;
                        }
                        let hist =
                            hists[(node - layer_base) as usize].as_ref().expect("allocated");
                        best_split_parallel(
                            hist,
                            &frontier.stats[&node],
                            &params,
                            |f| cuts.n_bins(f),
                            |f| f,
                            threads,
                        )
                    })
                    .collect()
            });

            // Node splitting: placements are resolved by scanning the split
            // feature's column and defaulting the absent instances.
            let mut next = Frontier::default();
            let mut split_nodes: Vec<(u32, Split)> = Vec::new();
            for (&node, decision) in frontier.nodes.iter().zip(decisions) {
                match decision {
                    Some(split) => {
                        tree.set_internal_with_gain(
                            node,
                            split.feature,
                            split.bin,
                            cuts.threshold(split.feature, split.bin),
                            split.default_left,
                            split.gain,
                        );
                        split_nodes.push((node, split));
                    }
                    None => {
                        tree.set_leaf_from_stats(
                            node,
                            &frontier.stats[&node],
                            params.lambda,
                            config.learning_rate,
                        );
                        leaves.push(node);
                    }
                }
            }
            let mut counts = vec![0f64; split_nodes.len() * 2];
            ctx.time(Phase::NodeSplit, || {
                let mut went_left = vec![false; n_local];
                for (k, (node, split)) in split_nodes.iter().enumerate() {
                    // Default placement, then overrides from the column.
                    for i in 0..n_local as InstanceId {
                        if index.node_of(i) == *node {
                            went_left[i as usize] = split.default_left;
                        }
                    }
                    columns.for_each_in_col(split.feature as usize, |i, b| {
                        if index.node_of(i) == *node {
                            went_left[i as usize] = b <= split.bin;
                        }
                    });
                    let (lc, rc) = index.split(*node, |i| went_left[i as usize]);
                    counts[2 * k] = lc as f64;
                    counts[2 * k + 1] = rc as f64;
                }
            });
            ctx.comm.all_reduce_f64(&mut counts)?;
            for (k, (node, split)) in split_nodes.into_iter().enumerate() {
                Frontier::push_children(
                    &mut next,
                    node,
                    &split,
                    counts[2 * k] as u64,
                    counts[2 * k + 1] as u64,
                );
            }
            frontier = next;
        }

        // Update local scores: every instance's final node is a leaf.
        ctx.time(Phase::Predict, || {
            let mut leaf_values: std::collections::BTreeMap<u32, Vec<f64>> =
                std::collections::BTreeMap::new();
            for &leaf in &leaves {
                if let tree::NodeKind::Leaf { values } = &tree.node(leaf).expect("leaf set").kind
                {
                    leaf_values.insert(leaf, values.clone());
                }
            }
            for i in 0..n_local {
                let node = index.node_of(i as InstanceId);
                let values = &leaf_values[&node];
                let base = i * c;
                for (k, &v) in values.iter().enumerate() {
                    scores[base + k] += v;
                }
            }
        });

        index.reset();
        model.trees.push(tree);
        per_tree.push(tracker.lap(ctx));
        save_tree_checkpoint(ctx, &model, &scores, &per_tree);
    }
    ctx.stats.histogram_peak_bytes = hist_peak as u64;
    ctx.stats.parallel_wall_seconds = meter.wall_seconds();
    ctx.stats.parallel_busy_seconds = meter.busy_seconds();
    Ok((model, per_tree))
}

/// One linear pass over the columns builds the histograms of a WHOLE layer:
/// every 〈instance, bin〉 pair is routed to its instance's current node.
///
/// Threads fan out over disjoint **feature blocks**: thread `b` owns block
/// `b` of every live node histogram (features are the outermost axis of the
/// flat layout, so a feature block is one contiguous region per histogram).
/// Each f64 slot is written by exactly one thread, in the same per-column
/// pair order as the sequential pass — bit-identical for every thread count.
fn build_layer_histograms(
    columns: &ColumnStore,
    grads: &GradBuffer,
    index: &InstanceToNodeIndex,
    hists: &mut [Option<NodeHistogram>],
    layer_base: u32,
    threads: usize,
    meter: &Meter,
) {
    let d = columns.n_features();
    if threads <= 1 || d < 2 {
        for j in 0..d {
            columns.for_each_in_col(j, |i, b| {
                let node = index.node_of(i);
                if node < layer_base {
                    return; // instance settled on an earlier leaf
                }
                if let Some(hist) =
                    hists.get_mut((node - layer_base) as usize).and_then(Option::as_mut)
                {
                    let (g, h) = grads.instance(i as usize);
                    hist.add_instance(j as u32, b, g, h);
                }
            });
        }
        return;
    }

    let (stride, c) = match hists.iter().flatten().next() {
        Some(h) => (h.feature_stride(), h.n_outputs()),
        None => return,
    };
    let t = threads.min(d);
    let per = d.div_ceil(t);
    let n_blocks = d.div_ceil(per);
    // thread_blocks[b][slot] is feature block `b` of node slot `slot`.
    let mut thread_blocks: Vec<Vec<Option<&mut [f64]>>> =
        (0..n_blocks).map(|_| Vec::with_capacity(hists.len())).collect();
    for hist in hists.iter_mut() {
        match hist {
            Some(h) => {
                let mut chunks = h.as_mut_slice().chunks_mut(per * stride);
                for tb in thread_blocks.iter_mut() {
                    tb.push(chunks.next());
                }
            }
            None => {
                for tb in thread_blocks.iter_mut() {
                    tb.push(None);
                }
            }
        }
    }

    // lint: allow(wall-clock) — measures computation time for modelled stats only
    let start = std::time::Instant::now();
    let busy = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for (bi, mut blocks) in thread_blocks.into_iter().enumerate() {
            let busy = &busy;
            s.spawn(move || {
                // lint: allow(wall-clock) — measures computation time for modelled stats only
                let t0 = std::time::Instant::now();
                let lo = bi * per;
                let hi = (lo + per).min(d);
                for j in lo..hi {
                    let off = (j - lo) * stride;
                    columns.for_each_in_col(j, |i, b| {
                        let node = index.node_of(i);
                        if node < layer_base {
                            return;
                        }
                        let slot = (node - layer_base) as usize;
                        if let Some(block) = blocks.get_mut(slot).and_then(Option::as_mut) {
                            let (g, h) = grads.instance(i as usize);
                            add_instance_to_feature_slice(
                                &mut block[off..off + stride],
                                c,
                                b,
                                g,
                                h,
                            );
                        }
                    });
                }
                busy.fetch_add(
                    t0.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
            });
        }
    });
    meter.add(
        start.elapsed(),
        std::time::Duration::from_nanos(busy.load(std::sync::atomic::Ordering::Relaxed)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Aggregation;
    use gbdt_core::Objective;
    use gbdt_data::synthetic::SyntheticConfig;

    fn dataset(n: usize, d: usize, classes: usize, seed: u64) -> Dataset {
        SyntheticConfig {
            n_instances: n,
            n_features: d,
            n_classes: classes,
            density: 0.5,
            label_noise: 0.02,
            seed,
            ..Default::default()
        }
        .generate()
    }

    fn config(classes: usize, trees: usize) -> TrainConfig {
        let objective = if classes > 2 {
            Objective::Softmax { n_classes: classes }
        } else {
            Objective::Logistic
        };
        TrainConfig::builder().n_trees(trees).n_layers(5).objective(objective).build().unwrap()
    }

    #[test]
    fn learns_binary() {
        let ds = dataset(1_200, 15, 2, 101);
        let result = train(&Cluster::new(3), &ds, &config(2, 8));
        assert!(result.model.evaluate(&ds).auc.unwrap() > 0.85);
    }

    #[test]
    fn matches_qd2_across_workers() {
        // Same W implies identical merged sketches, hence identical cuts and
        // identical trees. (Comparing W > 1 against the single-node trainer
        // is NOT expected to be exact: sketch merging produces slightly
        // different — equally valid — candidate splits than single-pass
        // sketching; qd2's W = 1 test covers the single-node equivalence.)
        let ds = dataset(800, 14, 2, 103);
        let cfg = config(2, 5);
        let qd1 = train(&Cluster::new(2), &ds, &cfg);
        let qd2 = crate::qd2::train(&Cluster::new(2), &ds, &cfg, Aggregation::AllReduce);
        let p1 = qd1.model.predict_dataset_raw(&ds);
        let p2 = qd2.model.predict_dataset_raw(&ds);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn multiclass_runs() {
        let ds = dataset(900, 12, 4, 107);
        let result = train(&Cluster::new(2), &ds, &config(4, 6));
        assert!(result.model.evaluate(&ds).accuracy.unwrap() > 0.4);
    }

    #[test]
    fn no_subtraction_means_more_histogram_traffic_than_qd2() {
        // QD1 aggregates histograms for BOTH children of every split; QD2
        // aggregates only the built (smaller) child. Same all-reduce, so
        // QD1's traffic must exceed QD2's.
        let ds = dataset(800, 20, 2, 109);
        let cfg = config(2, 4);
        let qd1 = train(&Cluster::new(2), &ds, &cfg);
        let qd2 = crate::qd2::train(&Cluster::new(2), &ds, &cfg, Aggregation::AllReduce);
        assert!(
            qd1.stats.total_bytes_sent() > qd2.stats.total_bytes_sent(),
            "QD1 {} vs QD2 {}",
            qd1.stats.total_bytes_sent(),
            qd2.stats.total_bytes_sent()
        );
    }
}
