//! Shared pieces of the layer-wise growth engine.

use gbdt_cluster::stats::ClusterStats;
use gbdt_core::split::{NodeStats, Split};
use gbdt_core::tree::{self, Tree};
use gbdt_core::{GbdtModel, Parallelism, TrainConfig};
use serde::{Deserialize, Serialize};

/// Resolves the per-worker intra-worker thread budget for a run: the
/// config's explicit `threads` if non-zero, otherwise the cores of the
/// machine divided evenly among the `world` co-located workers so the
/// simulated cluster never oversubscribes the host (§5.1 runs W workers in
/// one process).
pub fn worker_threads(config: &TrainConfig, world: usize) -> usize {
    Parallelism { threads: config.threads }.resolve(world)
}

/// Histogram aggregation strategy for horizontal partitioning (§3.1.3/§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Ring all-reduce: every worker ends with the global histograms and
    /// finds splits redundantly (XGBoost's pattern).
    AllReduce,
    /// Feature-sharded reduce-scatter: each worker aggregates and finds
    /// splits for a feature subset, then local bests are exchanged
    /// (LightGBM's pattern).
    ReduceScatter,
    /// Parameter-server push + server-side split finding (DimBoost's
    /// pattern); mechanically the same sharded reduction as reduce-scatter
    /// in a co-located deployment, kept separate for system labelling.
    ParameterServer,
}

/// Per-tree timing record (drives the paper's per-tree cost plots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TreeStat {
    /// Wall-clock seconds of computation this worker spent on the tree.
    pub comp_seconds: f64,
    /// Modelled communication seconds this worker accrued on the tree.
    pub comm_seconds: f64,
}

/// Result of a distributed training run.
#[derive(Debug)]
pub struct DistTrainResult {
    /// The trained model (identical on every worker; taken from rank 0).
    pub model: GbdtModel,
    /// Per-tree max-over-workers timing.
    pub per_tree: Vec<TreeStat>,
    /// Per-worker instrumentation.
    pub stats: ClusterStats,
}

impl DistTrainResult {
    /// Mean per-tree computation seconds (straggler-gated).
    pub fn mean_tree_comp_seconds(&self) -> f64 {
        mean(self.per_tree.iter().map(|t| t.comp_seconds))
    }

    /// Mean per-tree communication seconds (straggler-gated).
    pub fn mean_tree_comm_seconds(&self) -> f64 {
        mean(self.per_tree.iter().map(|t| t.comm_seconds))
    }

    /// Mean per-tree total (comp + comm) seconds.
    pub fn mean_tree_seconds(&self) -> f64 {
        self.mean_tree_comp_seconds() + self.mean_tree_comm_seconds()
    }

    /// Total modelled run seconds: straggler-gated per-tree comp + comm,
    /// plus any crash-recovery replay time.
    pub fn total_seconds(&self) -> f64 {
        self.per_tree.iter().map(|t| t.comp_seconds + t.comm_seconds).sum::<f64>()
            + self.stats.recovery_seconds
    }

    /// Standard deviation of per-tree total seconds (Figure 10 error bars).
    pub fn std_tree_seconds(&self) -> f64 {
        let totals: Vec<f64> =
            self.per_tree.iter().map(|t| t.comp_seconds + t.comm_seconds).collect();
        let m = mean(totals.iter().copied());
        (mean(totals.iter().map(|t| (t - m) * (t - m)))).sqrt()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Combines per-worker per-tree stats into straggler-gated records: a
/// synchronous layer waits for the slowest worker, so the cluster-level cost
/// of a tree is the max over workers.
pub fn merge_tree_stats(per_worker: &[Vec<TreeStat>]) -> Vec<TreeStat> {
    let n_trees = per_worker.iter().map(Vec::len).max().unwrap_or(0);
    (0..n_trees)
        .map(|t| {
            let mut out = TreeStat::default();
            for w in per_worker {
                if let Some(s) = w.get(t) {
                    out.comp_seconds = out.comp_seconds.max(s.comp_seconds);
                    out.comm_seconds = out.comm_seconds.max(s.comm_seconds);
                }
            }
            out
        })
        .collect()
}

/// Which sibling to build and which to derive by subtraction: build the
/// child with fewer instances (§2.1.2 — "first construct the histograms of
/// the one child node with fewer instances"); ties build the left child.
pub fn subtraction_plan(left_count: u64, right_count: u64) -> (bool, bool) {
    // (build_left, build_right): exactly one true.
    if left_count <= right_count {
        (true, false)
    } else {
        (false, true)
    }
}

/// Picks the global best split from per-worker candidates, deterministically
/// (max gain; ties toward smaller feature, then smaller bin).
pub fn choose_global_best(candidates: impl IntoIterator<Item = Option<Split>>) -> Option<Split> {
    let mut best: Option<Split> = None;
    for c in candidates.into_iter().flatten() {
        if best.as_ref().is_none_or(|b| c.better_than(b)) {
            best = Some(c);
        }
    }
    best
}

/// Decision taken for one frontier node after split finding.
#[derive(Debug, Clone)]
pub enum NodeDecision {
    /// Split with the given plan.
    Split(Split),
    /// Turn into a leaf (no valid split / too few instances / depth).
    Leaf,
}

/// Finalizes a node as a leaf on the tree (Eq. 1 weights × η).
pub fn set_leaf(tree: &mut Tree, node: u32, stats: &NodeStats, lambda: f64, eta: f64) {
    tree.set_leaf_from_stats(node, stats, lambda, eta);
}

/// Per-node gradient sums, ordered by node id. A `BTreeMap` by
/// construction: frontier contents feed split decisions and (via leaf
/// weights) the model itself, so no iteration over this map may depend on
/// process-random hash order (lint rule `map-iteration`).
pub type NodeStatsMap = std::collections::BTreeMap<u32, NodeStats>;

/// Frontier bookkeeping for one growing tree: per-node stats and global
/// instance counts (counts gate `min_node_instances` and drive the
/// subtraction schedule).
#[derive(Debug, Default)]
pub struct Frontier {
    /// Nodes to process this layer, ascending.
    pub nodes: Vec<u32>,
    /// Global gradient sums per node.
    pub stats: NodeStatsMap,
    /// Global instance counts per node.
    pub counts: std::collections::BTreeMap<u32, u64>,
}

impl Frontier {
    /// A root-only frontier.
    pub fn root(stats: NodeStats, count: u64) -> Self {
        let mut f = Frontier::default();
        f.nodes.push(0);
        f.stats.insert(0, stats);
        f.counts.insert(0, count);
        f
    }

    /// Registers the children of a split node for the next layer.
    pub fn push_children(
        next: &mut Frontier,
        node: u32,
        split: &Split,
        left_count: u64,
        right_count: u64,
    ) {
        let (l, r) = tree::children(node);
        next.nodes.push(l);
        next.nodes.push(r);
        next.stats.insert(l, split.left.clone());
        next.stats.insert(r, split.right.clone());
        next.counts.insert(l, left_count);
        next.counts.insert(r, right_count);
    }
}

/// Extracts worker `rank`'s horizontal shard of a dataset.
pub fn shard_dataset(
    dataset: &gbdt_data::Dataset,
    partition: gbdt_partition::HorizontalPartition,
    rank: usize,
) -> gbdt_data::Dataset {
    let (lo, hi) = partition.bounds(rank);
    let csr = dataset.features.to_csr().slice_rows(lo, hi);
    gbdt_data::Dataset::new(
        gbdt_data::FeatureMatrix::Sparse(csr),
        dataset.labels[lo..hi].to_vec(),
        dataset.n_classes,
        format!("{}-shard{rank}", dataset.name),
    )
    .expect("shard of a valid dataset is valid")
}

/// Records the logical-vs-wire histogram-aggregation bytes this worker
/// moved during one tree layer, as the delta from a counters snapshot taken
/// just before the layer's aggregation calls.
pub fn record_layer_wire_bytes(
    ctx: &mut gbdt_cluster::WorkerCtx,
    layer: usize,
    before: gbdt_cluster::comm::CommCounters,
) {
    let now = ctx.comm.counters();
    ctx.stats.record_layer_bytes(
        layer,
        now.logical_f64_bytes - before.logical_f64_bytes,
        now.wire_f64_bytes - before.wire_f64_bytes,
    );
}

/// All-reduces per-class node statistics in place (horizontal root stats).
pub fn all_reduce_stats(
    ctx: &mut gbdt_cluster::WorkerCtx,
    stats: &mut NodeStats,
) -> Result<(), gbdt_cluster::CommError> {
    let c = stats.n_outputs();
    let mut buf = Vec::with_capacity(2 * c);
    buf.extend_from_slice(&stats.grads);
    buf.extend_from_slice(&stats.hesses);
    ctx.comm.all_reduce_f64(&mut buf)?;
    stats.grads.copy_from_slice(&buf[..c]);
    stats.hesses.copy_from_slice(&buf[c..]);
    Ok(())
}

/// Per-tree recovery checkpoint every distributed trainer saves at tree
/// boundaries: the model so far, this worker's raw prediction scores, and
/// the per-tree timings. Replay resumes at `model.trees.len()`.
pub type TreeCheckpoint = (GbdtModel, Vec<f64>, Vec<TreeStat>);

/// Restores a surviving [`TreeCheckpoint`] from a crashed attempt into the
/// trainer's state; returns the tree index to resume from (0 on a fresh
/// run). Everything not checkpointed (indexes, histogram pools, gradients)
/// is rebuilt per tree, so replaying the in-flight tree from here is
/// deterministic.
pub fn restore_tree_checkpoint(
    ctx: &gbdt_cluster::WorkerCtx,
    model: &mut GbdtModel,
    scores: &mut Vec<f64>,
    per_tree: &mut Vec<TreeStat>,
) -> usize {
    if let Some((m, s, p)) = ctx.load_checkpoint::<TreeCheckpoint>() {
        *model = m;
        *scores = s;
        *per_tree = p;
    }
    model.trees.len()
}

/// Saves the [`TreeCheckpoint`] after a completed tree. Skipped entirely
/// when no checkpoint store is attached, so fault-free runs pay no clone.
pub fn save_tree_checkpoint(
    ctx: &gbdt_cluster::WorkerCtx,
    model: &GbdtModel,
    scores: &[f64],
    per_tree: &[TreeStat],
) {
    if ctx.has_checkpoint_store() {
        ctx.save_checkpoint(&(model.clone(), scores.to_vec(), per_tree.to_vec()));
    }
}

/// Tracks per-tree deltas of a worker's computation and communication time.
#[derive(Debug, Default, Clone, Copy)]
pub struct TreeTracker {
    last_comp: f64,
    last_comm: f64,
}

impl TreeTracker {
    /// Returns the (comp, comm) delta since the previous call as a
    /// [`TreeStat`] and advances the baseline.
    pub fn lap(&mut self, ctx: &gbdt_cluster::WorkerCtx) -> TreeStat {
        let comp = ctx.stats.comp_total();
        let comm = ctx.comm.counters().comm_seconds;
        let stat =
            TreeStat { comp_seconds: comp - self.last_comp, comm_seconds: comm - self.last_comm };
        self.last_comp = comp;
        self.last_comm = comm;
        stat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_split(feature: u32, gain: f64) -> Split {
        Split {
            feature,
            bin: 0,
            default_left: true,
            gain,
            left: NodeStats::zero(1),
            right: NodeStats::zero(1),
        }
    }

    #[test]
    fn subtraction_builds_smaller_child() {
        assert_eq!(subtraction_plan(10, 20), (true, false));
        assert_eq!(subtraction_plan(20, 10), (false, true));
        assert_eq!(subtraction_plan(5, 5), (true, false)); // tie -> left
    }

    #[test]
    fn global_best_is_deterministic() {
        let got = choose_global_best(vec![
            Some(mk_split(3, 1.0)),
            None,
            Some(mk_split(1, 2.0)),
            Some(mk_split(2, 2.0)),
        ]);
        let got = got.unwrap();
        assert_eq!(got.feature, 1); // max gain, tie -> lower feature
        assert!(choose_global_best(vec![None, None]).is_none());
    }

    #[test]
    fn merge_tree_stats_takes_worker_max() {
        let a = vec![TreeStat { comp_seconds: 1.0, comm_seconds: 0.5 }];
        let b = vec![TreeStat { comp_seconds: 0.5, comm_seconds: 2.0 }];
        let merged = merge_tree_stats(&[a, b]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].comp_seconds, 1.0);
        assert_eq!(merged[0].comm_seconds, 2.0);
    }

    #[test]
    fn frontier_tracks_children() {
        let mut f = Frontier::root(NodeStats::zero(1), 100);
        assert_eq!(f.nodes, vec![0]);
        let split = mk_split(0, 1.0);
        let mut next = Frontier::default();
        Frontier::push_children(&mut next, 0, &split, 60, 40);
        assert_eq!(next.nodes, vec![1, 2]);
        assert_eq!(next.counts[&1], 60);
        assert_eq!(next.counts[&2], 40);
        f = next;
        assert!(f.stats.contains_key(&1));
    }
}
