//! The four data-management quadrants of distributed GBDT — one code base.
//!
//! The paper's Figure 1 organizes distributed GBDT systems by data
//! partitioning × data storage:
//!
//! | | column-store | row-store |
//! |---|---|---|
//! | **horizontal** | QD1 (XGBoost) | QD2 (LightGBM, DimBoost) |
//! | **vertical** | QD3 (Yggdrasil) | QD4 (**Vero**, this work) |
//!
//! Every trainer here shares the identical GBDT mathematics from
//! `gbdt-core` (histograms, Eq. 1/2 split finding, losses) and the identical
//! cluster substrate from `gbdt-cluster`; they differ *only* in how the data
//! is partitioned, stored, indexed, and which communication pattern moves
//! histograms or placements — which is precisely the controlled comparison
//! of the paper's §5.2.
//!
//! * [`single`] — single-node reference trainer (ground truth for the
//!   cross-quadrant equivalence tests).
//! * [`qd1`] — horizontal + column-store, instance-to-node index, all-reduce.
//! * [`qd2`] — horizontal + row-store, node-to-instance index, histogram
//!   subtraction; aggregation: all-reduce, reduce-scatter (LightGBM) or
//!   parameter-server (DimBoost).
//! * [`qd3`] — vertical + column-store with the hybrid index plan of §5.2.2.
//! * [`qd4`] — vertical + row-store: **Vero's** trainer.
//! * [`yggdrasil`] — vertical + column-store with a column-wise
//!   node-to-instance index (Appendix C).
//! * [`featpar`] — LightGBM's feature-parallel mode: full replica per
//!   worker (Appendix D).
//! * [`common`] — the shared growth engine pieces: build/subtract
//!   scheduling, leaf finalization, placement application, result types.
//! * [`advisor`] — the paper's §6 future work, implemented: an executable
//!   §3 cost model that recommends a quadrant for a workload/environment.

pub mod advisor;
pub mod common;
pub mod featpar;
pub mod qd1;
pub mod qd2;
pub mod qd3;
pub mod qd4;
pub mod single;
pub mod yggdrasil;

pub use common::{Aggregation, DistTrainResult, TreeStat};
