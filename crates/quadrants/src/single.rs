//! Single-node reference trainer.
//!
//! Row-store + node-to-instance index + histogram subtraction — the same
//! mathematics every distributed quadrant runs, without a cluster. All
//! cross-quadrant equivalence tests compare against this implementation:
//! on the same binned data every trainer must grow the same trees.
//! There is no wire at all, so [`TrainConfig::wire`] is trivially a no-op:
//! every codec trains the identical ensemble.

use crate::common::{subtraction_plan, worker_threads, Frontier};
use gbdt_core::histogram::HistogramPool;
use gbdt_core::indexes::NodeToInstanceIndex;
use gbdt_core::kernels;
use gbdt_core::parallel::{self, Meter};
use gbdt_core::split::{best_split_parallel, NodeStats, SplitParams};
use gbdt_core::tree::{self, Tree};
use gbdt_core::{BinCuts, GbdtModel, GradBuffer, TrainConfig};
use gbdt_data::dataset::Dataset;
use gbdt_data::BinnedStore;

/// Trains a GBDT model on one node.
pub fn train(dataset: &Dataset, config: &TrainConfig) -> GbdtModel {
    config.validate().expect("invalid training config");
    let cuts = BinCuts::from_dataset(dataset, config.n_bins);
    let binned = cuts.apply_store(dataset, config.storage);
    train_prebinned(&binned, &cuts, &dataset.labels, config)
}

/// Trains on already-binned data (shared with tests that need exact control
/// over the cuts).
pub fn train_prebinned(
    binned: &BinnedStore,
    cuts: &BinCuts,
    labels: &[f32],
    config: &TrainConfig,
) -> GbdtModel {
    let n = binned.n_rows();
    let d = binned.n_features();
    let c = config.n_outputs();
    let params = SplitParams::from_config(config);
    let objective = config.objective;
    let threads = worker_threads(config, 1);
    let meter = Meter::default();

    let mut model = GbdtModel::new(objective, config.learning_rate, d);
    let mut scores = vec![0.0f64; n * c];
    for (i, chunk) in scores.chunks_mut(c).enumerate() {
        chunk.copy_from_slice(&model.init_scores);
        let _ = i;
    }
    let mut grads = GradBuffer::new(n, c);
    let mut index = NodeToInstanceIndex::new(n);
    let mut pool = HistogramPool::new(d, config.n_bins, c);

    for _ in 0..config.n_trees {
        objective.compute_gradients(&scores, labels, &mut grads);
        let mut tree = Tree::new(config.n_layers, c);

        // Root statistics.
        let mut root_stats = NodeStats::zero(c);
        let mut gbuf = vec![0.0; c];
        let mut hbuf = vec![0.0; c];
        grads.sum_instances(index.instances(0), &mut gbuf, &mut hbuf);
        root_stats.grads.copy_from_slice(&gbuf);
        root_stats.hesses.copy_from_slice(&hbuf);

        let mut frontier = Frontier::root(root_stats, n as u64);
        let mut leaves: Vec<u32> = Vec::new();

        for layer in 0..config.n_layers {
            if frontier.nodes.is_empty() {
                break;
            }
            let last_layer = layer + 1 == config.n_layers;
            if last_layer {
                for &node in &frontier.nodes {
                    tree.set_leaf_from_stats(
                        node,
                        &frontier.stats[&node],
                        params.lambda,
                        config.learning_rate,
                    );
                    leaves.push(node);
                }
                break;
            }

            // Build histograms: root directly; deeper layers build the
            // smaller sibling and subtract for the other.
            if layer == 0 {
                build_histogram(&mut pool, 0, binned, &grads, &index, threads, config.kernel, &meter);
            } else {
                let mut k = 0;
                while k < frontier.nodes.len() {
                    let left = frontier.nodes[k];
                    let right = frontier.nodes[k + 1];
                    debug_assert_eq!(tree::sibling(left), right);
                    let (build_left, _) =
                        subtraction_plan(frontier.counts[&left], frontier.counts[&right]);
                    let (build, derive) = if build_left { (left, right) } else { (right, left) };
                    build_histogram(&mut pool, build, binned, &grads, &index, threads, config.kernel, &meter);
                    pool.subtract_sibling(tree::parent(left), build, derive);
                    k += 2;
                }
            }

            // Split finding + node splitting.
            let mut next = Frontier::default();
            for &node in &frontier.nodes {
                let stats = &frontier.stats[&node];
                let decision = if frontier.counts[&node] < config.min_node_instances as u64 {
                    None
                } else {
                    let hist = pool.get(node).expect("frontier node has a histogram");
                    best_split_parallel(hist, stats, &params, |f| cuts.n_bins(f), |f| f, threads)
                };
                match decision {
                    Some(split) => {
                        tree.set_internal_with_gain(
                            node,
                            split.feature,
                            split.bin,
                            cuts.threshold(split.feature, split.bin),
                            split.default_left,
                            split.gain,
                        );
                        let (lc, rc) = index.split(node, |i| {
                            match binned.get(i as usize, split.feature) {
                                Some(b) => b <= split.bin,
                                None => split.default_left,
                            }
                        });
                        Frontier::push_children(&mut next, node, &split, lc as u64, rc as u64);
                    }
                    None => {
                        tree.set_leaf_from_stats(node, stats, params.lambda, config.learning_rate);
                        leaves.push(node);
                        pool.release(node);
                    }
                }
            }
            frontier = next;
        }

        // Apply leaf outputs to the running scores.
        for &leaf in &leaves {
            let values = match &tree.node(leaf).expect("leaf materialized").kind {
                gbdt_core::tree::NodeKind::Leaf { values } => values.clone(),
                _ => unreachable!("leaf node is a leaf"),
            };
            for &i in index.instances(leaf) {
                let base = i as usize * c;
                for (k, &v) in values.iter().enumerate() {
                    scores[base + k] += v;
                }
            }
        }

        pool.release_all();
        index.reset();
        model.trees.push(tree);
    }
    model
}

#[allow(clippy::too_many_arguments)]
fn build_histogram(
    pool: &mut HistogramPool,
    node: u32,
    binned: &BinnedStore,
    grads: &GradBuffer,
    index: &NodeToInstanceIndex,
    threads: usize,
    kernel: gbdt_core::Kernel,
    meter: &Meter,
) {
    parallel::build_histogram_chunked(pool, node, index.instances(node), threads, meter, |hist, chunk| {
        kernels::fill_rows_chunk(hist, chunk, binned, grads, kernel);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::Objective;
    use gbdt_data::synthetic::SyntheticConfig;

    fn binary_dataset(n: usize, seed: u64) -> Dataset {
        SyntheticConfig {
            n_instances: n,
            n_features: 20,
            n_classes: 2,
            density: 0.6,
            label_noise: 0.02,
            seed,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn learns_binary_classification() {
        let ds = binary_dataset(2_000, 3);
        let (train_ds, valid_ds) = ds.split_validation(0.25);
        let cfg = TrainConfig::builder()
            .n_trees(30)
            .n_layers(5)
            .objective(Objective::Logistic)
            .build()
            .unwrap();
        let model = train(&train_ds, &cfg);
        assert_eq!(model.trees.len(), 30);
        let eval = model.evaluate(&valid_ds);
        assert!(eval.auc.unwrap() > 0.80, "AUC {:?}", eval.auc);
        // Training fit is better than random too.
        assert!(model.evaluate(&train_ds).auc.unwrap() > 0.85);
    }

    #[test]
    fn loss_decreases_monotonically_on_train() {
        let ds = binary_dataset(800, 5);
        let cfg = TrainConfig::builder().n_trees(10).n_layers(4).build().unwrap();
        let model = train(&ds, &cfg);
        // Evaluate prefixes: loss must be non-increasing (small tolerance).
        let mut last = f64::INFINITY;
        for t in [1, 3, 5, 10] {
            let mut prefix = model.clone();
            prefix.trees.truncate(t);
            let loss = prefix.evaluate(&ds).loss;
            assert!(loss <= last + 1e-9, "loss rose from {last} to {loss} at {t} trees");
            last = loss;
        }
    }

    #[test]
    fn learns_multiclass() {
        let ds = SyntheticConfig {
            n_instances: 3_000,
            n_features: 30,
            n_classes: 5,
            density: 0.5,
            label_noise: 0.0,
            seed: 11,
            ..Default::default()
        }
        .generate();
        let (train_ds, valid_ds) = ds.split_validation(0.2);
        let cfg = TrainConfig::builder()
            .n_trees(20)
            .n_layers(5)
            .objective(Objective::Softmax { n_classes: 5 })
            .build()
            .unwrap();
        let model = train(&train_ds, &cfg);
        let eval = model.evaluate(&valid_ds);
        // 5 classes: random = 0.2.
        assert!(eval.accuracy.unwrap() > 0.5, "accuracy {:?}", eval.accuracy);
    }

    #[test]
    fn learns_regression() {
        let ds = SyntheticConfig {
            n_instances: 1_500,
            n_features: 10,
            n_classes: 0,
            density: 1.0,
            seed: 13,
            ..Default::default()
        }
        .generate();
        let cfg = TrainConfig::builder()
            .n_trees(40)
            .n_layers(5)
            .objective(Objective::SquaredError)
            .build()
            .unwrap();
        let model = train(&ds, &cfg);
        let eval = model.evaluate(&ds);
        // Baseline RMSE (predicting 0) is the label std.
        let mean: f64 = ds.labels.iter().map(|&y| f64::from(y)).sum::<f64>() / 1_500.0;
        let var: f64 =
            ds.labels.iter().map(|&y| (f64::from(y) - mean).powi(2)).sum::<f64>() / 1_500.0;
        assert!(
            eval.rmse.unwrap() < var.sqrt() * 0.6,
            "rmse {:?} vs std {}",
            eval.rmse,
            var.sqrt()
        );
    }

    #[test]
    fn deeper_trees_fit_train_better() {
        let ds = binary_dataset(1_000, 17);
        let shallow = train(
            &ds,
            &TrainConfig::builder().n_trees(10).n_layers(2).build().unwrap(),
        );
        let deep = train(
            &ds,
            &TrainConfig::builder().n_trees(10).n_layers(7).build().unwrap(),
        );
        assert!(deep.evaluate(&ds).loss < shallow.evaluate(&ds).loss);
    }

    #[test]
    fn gamma_prunes_to_fewer_leaves() {
        let ds = binary_dataset(1_000, 19);
        let loose = train(
            &ds,
            &TrainConfig::builder().n_trees(3).n_layers(6).gamma(0.0).build().unwrap(),
        );
        let tight = train(
            &ds,
            &TrainConfig::builder().n_trees(3).n_layers(6).gamma(5.0).build().unwrap(),
        );
        let leaves = |m: &GbdtModel| m.trees.iter().map(Tree::n_leaves).sum::<usize>();
        assert!(
            leaves(&tight) < leaves(&loose),
            "gamma should prune: {} vs {}",
            leaves(&tight),
            leaves(&loose)
        );
    }

    #[test]
    fn single_layer_config_yields_constant_leaves() {
        let ds = binary_dataset(200, 23);
        let cfg = TrainConfig::builder().n_trees(2).n_layers(1).build().unwrap();
        let model = train(&ds, &cfg);
        for tree in &model.trees {
            assert_eq!(tree.n_leaves(), 1);
            assert_eq!(tree.n_nodes(), 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let ds = binary_dataset(500, 29);
        let cfg = TrainConfig::builder().n_trees(5).n_layers(4).build().unwrap();
        let a = train(&ds, &cfg);
        let b = train(&ds, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_all_identical_labels() {
        let mut ds = binary_dataset(300, 31);
        ds.labels.iter_mut().for_each(|y| *y = 1.0);
        let cfg = TrainConfig::builder().n_trees(3).n_layers(4).build().unwrap();
        let model = train(&ds, &cfg);
        // Gradients shrink toward zero; predictions go positive for all.
        let eval = model.evaluate(&ds);
        assert!(eval.accuracy.unwrap() == 1.0);
    }
}
