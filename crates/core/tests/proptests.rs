//! Property-based tests of the GBDT core invariants.

use gbdt_core::histogram::NodeHistogram;
use gbdt_core::split::{best_split_for_feature, NodeStats, SplitParams};
use gbdt_core::tree::{LookupResult, Tree};
use gbdt_core::{BinCuts, QuantileSketch};
use proptest::prelude::*;

/// Brute-force split gain for a single feature: enumerate every bin
/// boundary and both default directions directly from per-instance data.
fn brute_force_best_gain(
    bins: &[Option<u16>], // None = missing
    grads: &[f64],
    hesses: &[f64],
    n_bins: usize,
    params: &SplitParams,
) -> Option<f64> {
    let score = |g: f64, h: f64| g * g / (h + params.lambda);
    let (gt, ht): (f64, f64) = (grads.iter().sum(), hesses.iter().sum());
    let mut best: Option<f64> = None;
    for b in 0..n_bins.saturating_sub(1) {
        for default_left in [true, false] {
            let (mut gl, mut hl) = (0.0f64, 0.0f64);
            for i in 0..bins.len() {
                let left = match bins[i] {
                    Some(bin) => bin as usize <= b,
                    None => default_left,
                };
                if left {
                    gl += grads[i];
                    hl += hesses[i];
                }
            }
            let (gr, hr) = (gt - gl, ht - hl);
            if hl < params.min_child_weight || hr < params.min_child_weight {
                continue;
            }
            let gain = 0.5 * (score(gl, hl) + score(gr, hr) - score(gt, ht)) - params.gamma;
            if gain > 0.0 && best.is_none_or(|cur| gain > cur) {
                best = Some(gain);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The histogram split finder must agree with brute-force enumeration.
    #[test]
    fn split_finder_matches_brute_force(
        data in prop::collection::vec(
            (prop::option::of(0u16..6), -2.0f64..2.0, 0.01f64..2.0),
            2..40,
        ),
        lambda in 0.1f64..5.0,
        gamma in 0.0f64..0.5,
    ) {
        let n_bins = 6usize;
        let params = SplitParams { lambda, gamma, min_child_weight: 0.0 };
        let mut hist = NodeHistogram::new(1, n_bins, 1);
        let mut node = NodeStats::zero(1);
        let mut bins = Vec::new();
        let mut grads = Vec::new();
        let mut hesses = Vec::new();
        for &(bin, g, h) in &data {
            if let Some(b) = bin {
                hist.add(0, b, 0, g, h);
            }
            node.grads[0] += g;
            node.hesses[0] += h;
            bins.push(bin);
            grads.push(g);
            hesses.push(h);
        }
        let found = best_split_for_feature(&hist, 0, n_bins, &node, &params);
        let brute = brute_force_best_gain(&bins, &grads, &hesses, n_bins, &params);
        match (found, brute) {
            (Some(s), Some(g)) => prop_assert!(
                (s.gain - g).abs() < 1e-9,
                "finder {} vs brute {}", s.gain, g
            ),
            (None, None) => {}
            (a, b) => prop_assert!(false, "finder {:?} vs brute {:?}", a.map(|s| s.gain), b),
        }
    }

    /// Histogram subtraction must reproduce the directly built sibling.
    #[test]
    fn subtraction_equals_direct_build(
        entries in prop::collection::vec((0u32..4, 0u16..5, -1.0f64..1.0, 0.0f64..1.0, any::<bool>()), 0..60),
    ) {
        let mut parent = NodeHistogram::new(4, 5, 1);
        let mut left = NodeHistogram::new(4, 5, 1);
        let mut right = NodeHistogram::new(4, 5, 1);
        for &(f, b, g, h, goes_left) in &entries {
            parent.add(f, b, 0, g, h);
            if goes_left {
                left.add(f, b, 0, g, h);
            } else {
                right.add(f, b, 0, g, h);
            }
        }
        let mut derived = parent.clone();
        derived.subtract_from(&left);
        for f in 0..4u32 {
            for b in 0..5u16 {
                let d = derived.get(f, b, 0);
                let r = right.get(f, b, 0);
                prop_assert!((d.grad - r.grad).abs() < 1e-9);
                prop_assert!((d.hess - r.hess).abs() < 1e-9);
            }
        }
    }

    /// The histogram wire codec must round-trip every shape bit-exactly,
    /// including empty histograms and multi-class (C > 1) strides.
    #[test]
    fn histogram_codec_round_trips(
        d in 0usize..6,
        q in 1usize..8,
        c in 1usize..4,
        entries in prop::collection::vec(
            (0u32..6, 0u16..8, 0usize..4, -10.0f64..10.0, 0.0f64..10.0),
            0..80,
        ),
    ) {
        let mut hist = NodeHistogram::new(d, q, c);
        for &(f, b, k, g, h) in &entries {
            if (f as usize) < d && (b as usize) < q && k < c {
                hist.add(f, b, k, g, h);
            }
        }
        let bytes = hist.encode_bytes();
        prop_assert_eq!(bytes.len(), 12 + d * q * c * 2 * 8);
        let decoded = NodeHistogram::decode_bytes(&bytes);
        prop_assert_eq!(decoded.as_ref(), Some(&hist), "decode(encode(h)) != h");
        // Truncated payloads must be rejected, never mis-decoded.
        if !bytes.is_empty() {
            prop_assert_eq!(NodeHistogram::decode_bytes(&bytes[..bytes.len() - 1]), None);
        }
    }

    /// Tree routing by raw value must match routing by the value's bin.
    #[test]
    fn value_and_bin_routing_agree(
        cuts in prop::collection::btree_set(-100i32..100, 1..10),
        raw_values in prop::collection::vec(prop::option::of(-120i32..120), 1..20),
    ) {
        let cut_values: Vec<f32> = cuts.iter().map(|&c| c as f32).collect();
        let cuts = BinCuts::from_cut_values(vec![cut_values.clone()]);
        // A stump splitting feature 0 at each LEGAL split bin: the split
        // finder never splits at the last bin (the right side would only
        // hold values clamped into it), so neither do we.
        for bin in 0..cut_values.len().saturating_sub(1) as u16 {
            let mut tree = Tree::new(2, 1);
            tree.set_internal(0, 0, bin, cuts.threshold(0, bin), false);
            tree.set_leaf(1, vec![1.0]);
            tree.set_leaf(2, vec![-1.0]);
            for &raw in &raw_values {
                let by_value = match raw {
                    Some(v) => tree.predict_row(&[0], &[v as f32])[0],
                    None => tree.predict_row(&[], &[])[0],
                };
                let by_bin = tree.predict_with(|_| match raw {
                    Some(v) => LookupResult::Bin(cuts.bin(0, v as f32).unwrap()),
                    None => LookupResult::Missing,
                })[0];
                prop_assert_eq!(by_value, by_bin, "raw {:?} bin-split {}", raw, bin);
            }
        }
    }

    /// Sketch quantiles stay within rank-error bounds under random merges.
    #[test]
    fn merged_sketch_rank_error_bounded(
        chunks in prop::collection::vec(prop::collection::vec(-1000i32..1000, 10..300), 1..6),
    ) {
        let mut merged = QuantileSketch::new(128);
        let mut all: Vec<i32> = Vec::new();
        for chunk in &chunks {
            let mut local = QuantileSketch::new(128);
            for &v in chunk {
                local.insert(v as f32);
            }
            merged.merge(&local);
            all.extend_from_slice(chunk);
        }
        all.sort_unstable();
        let n = all.len();
        for phi in [0.25f64, 0.5, 0.75] {
            let got = merged.quantile(phi).unwrap();
            // Rank of the returned value within the exact data.
            let rank = all.partition_point(|&v| (v as f32) <= got);
            let target = phi * n as f64;
            let err = (rank as f64 - target).abs() / n as f64;
            prop_assert!(err < 0.15, "phi={} got={} rank={} of {} (err {})", phi, got, rank, n, err);
        }
    }

    /// Bin cut application clamps every stored value into a valid bin.
    #[test]
    fn binning_is_total_over_training_range(
        values in prop::collection::vec(-50.0f32..50.0, 1..200),
        q in 2usize..30,
    ) {
        let mut sketch = QuantileSketch::new(64);
        for &v in &values {
            sketch.insert(v);
        }
        let cuts = BinCuts::from_cut_values(vec![sketch.candidate_splits(q)]);
        prop_assert!(cuts.n_bins(0) <= q);
        for &v in &values {
            let bin = cuts.bin(0, v).unwrap();
            prop_assert!((bin as usize) < cuts.n_bins(0));
            // Value is <= its bin's threshold (the defining property).
            prop_assert!(v <= cuts.threshold(0, bin));
        }
    }
}

/// Deterministic splitmix64 step, for growing arbitrary-shape trees from a
/// proptest-chosen seed without a strategy for recursive structures.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Grows a random complete-indexed tree: BFS from the root, each node with
/// room for children splits with probability ~0.7, else becomes a leaf.
fn random_tree(seed: &mut u64, n_layers: usize, n_outputs: usize) -> Tree {
    let mut tree = Tree::new(n_layers, n_outputs);
    let mut frontier = vec![0u32];
    let max = gbdt_core::tree::max_nodes(n_layers) as u32;
    while let Some(id) = frontier.pop() {
        let can_split = gbdt_core::tree::children(id).1 < max;
        if can_split && splitmix(seed) % 10 < 7 {
            tree.set_internal_with_gain(
                id,
                (splitmix(seed) % 16) as u32,
                (splitmix(seed) % 64) as u16,
                unit_f64(seed) as f32 * 10.0,
                splitmix(seed).is_multiple_of(2),
                unit_f64(seed).abs() * 5.0,
            );
            let (l, r) = gbdt_core::tree::children(id);
            frontier.push(l);
            frontier.push(r);
        } else {
            tree.set_leaf(id, (0..n_outputs).map(|_| unit_f64(seed)).collect());
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The binary model codec must round-trip arbitrary ensembles
    /// bit-exactly, and re-encoding the decoded model must reproduce the
    /// exact bytes (the hot-swap publish path depends on both).
    #[test]
    fn model_codec_round_trips(
        seed in any::<u64>(),
        obj_pick in 0u8..3,
        n_layers in 1usize..6,
        n_trees in 0usize..5,
        learning_rate in 0.01f64..1.0,
    ) {
        use gbdt_core::model::GbdtModel;
        use gbdt_core::Objective;
        let objective = match obj_pick {
            0 => Objective::SquaredError,
            1 => Objective::Logistic,
            _ => Objective::Softmax { n_classes: 3 },
        };
        let mut m = GbdtModel::new(objective, learning_rate, 16);
        let n_outputs = m.n_outputs();
        let mut state = seed;
        for _ in 0..n_trees {
            m.trees.push(random_tree(&mut state, n_layers, n_outputs));
        }
        let bytes = m.encode_bytes();
        let back = GbdtModel::decode_bytes(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&m), "decode(encode(m)) != m");
        prop_assert_eq!(
            back.unwrap().encode_bytes(),
            bytes,
            "re-encode not byte-identical"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// First- and second-order gradients of every objective must match
    /// central finite differences of its mean loss.
    #[test]
    fn gradients_match_finite_differences(
        score in -3.0f64..3.0,
        label_bit in any::<bool>(),
        class_scores in prop::collection::vec(-3.0f64..3.0, 3),
        label_class in 0usize..3,
        target in -2.0f64..2.0,
    ) {
        use gbdt_core::{GradBuffer, Objective};
        let eps = 1e-5;

        // Logistic.
        let obj = Objective::Logistic;
        let y = [if label_bit { 1.0f32 } else { 0.0 }];
        let mut buf = GradBuffer::new(1, 1);
        obj.compute_gradients(&[score], &y, &mut buf);
        let g = buf.get(0, 0).grad;
        let h = buf.get(0, 0).hess;
        let lp = obj.mean_loss(&[score + eps], &y);
        let lm = obj.mean_loss(&[score - eps], &y);
        let l0 = obj.mean_loss(&[score], &y);
        prop_assert!((g - (lp - lm) / (2.0 * eps)).abs() < 1e-5, "logistic grad");
        prop_assert!((h - (lp - 2.0 * l0 + lm) / (eps * eps)).abs() < 1e-3, "logistic hess");

        // Squared error.
        let obj = Objective::SquaredError;
        let y = [target as f32];
        let mut buf = GradBuffer::new(1, 1);
        obj.compute_gradients(&[score], &y, &mut buf);
        let lp = obj.mean_loss(&[score + eps], &y);
        let lm = obj.mean_loss(&[score - eps], &y);
        prop_assert!((buf.get(0, 0).grad - (lp - lm) / (2.0 * eps)).abs() < 1e-4);
        prop_assert!((buf.get(0, 0).hess - 1.0).abs() < 1e-12);

        // Softmax: per-class first-order gradient (hessian uses the common
        // 2p(1-p) GBDT surrogate rather than the exact diagonal, so only
        // the gradient is checked against finite differences).
        let obj = Objective::Softmax { n_classes: 3 };
        let y = [label_class as f32];
        let mut buf = GradBuffer::new(1, 3);
        obj.compute_gradients(&class_scores, &y, &mut buf);
        for k in 0..3 {
            let mut sp = class_scores.clone();
            sp[k] += eps;
            let mut sm = class_scores.clone();
            sm[k] -= eps;
            let num = (obj.mean_loss(&sp, &y) - obj.mean_loss(&sm, &y)) / (2.0 * eps);
            prop_assert!(
                (buf.get(0, k).grad - num).abs() < 1e-4,
                "softmax grad class {}: {} vs {}", k, buf.get(0, k).grad, num
            );
        }
    }

    /// AUC is invariant under strictly monotone score transforms.
    #[test]
    fn auc_is_rank_invariant(
        pairs in prop::collection::vec((any::<bool>(), -5.0f64..5.0), 4..60),
    ) {
        use gbdt_core::metrics::auc;
        let labels: Vec<f32> = pairs.iter().map(|&(y, _)| f32::from(u8::from(y))).collect();
        let scores: Vec<f64> = pairs.iter().map(|&(_, s)| s).collect();
        let transformed: Vec<f64> = scores.iter().map(|&s| (s * 0.3).exp() + 7.0).collect();
        let a = auc(&labels, &scores);
        let b = auc(&labels, &transformed);
        prop_assert!((a - b).abs() < 1e-12, "{} vs {}", a, b);
    }
}
