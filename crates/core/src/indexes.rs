//! The three tree-node/instance index structures of the paper (§3.2.1,
//! Figure 5):
//!
//! * [`NodeToInstanceIndex`] — maps a tree node to its instances. The
//!   natural fit for row-store: enables direct row scans per node *and* the
//!   histogram subtraction technique. Implemented as a partitioned positions
//!   array (one `u32` per instance, grouped by node) so splitting a node is
//!   a stable in-place partition, not per-node `Vec` churn.
//! * [`InstanceToNodeIndex`] — maps an instance to its node. The natural fit
//!   for column-store scans (XGBoost / QD1), but it cannot enumerate a
//!   node's instances without a full scan, which is why QD1 cannot exploit
//!   histogram subtraction (§3.2.3).
//! * [`ColumnWiseIndex`] — a node-to-instance index maintained *per column*
//!   (Yggdrasil / QD3-variant). Locating a node's pairs on every column is
//!   O(1), but every node split must repartition all D columns — the
//!   D-times-higher split cost the paper calls out.

use gbdt_data::{BinId, BinnedColumns, ColumnStore, InstanceId};
use std::collections::BTreeMap;

/// Node-to-instance index: a positions array partitioned by tree node.
#[derive(Debug, Clone)]
pub struct NodeToInstanceIndex {
    positions: Vec<InstanceId>,
    /// node id → `[start, end)` range into `positions`.
    ranges: BTreeMap<u32, (u32, u32)>,
    scratch: Vec<InstanceId>,
}

impl NodeToInstanceIndex {
    /// All `n_instances` instances start on the root node (id 0).
    pub fn new(n_instances: usize) -> Self {
        let mut ranges = BTreeMap::new();
        ranges.insert(0, (0, n_instances as u32));
        NodeToInstanceIndex {
            positions: (0..n_instances as InstanceId).collect(),
            ranges,
            scratch: Vec::with_capacity(n_instances),
        }
    }

    /// Resets every instance back to the root (start of a new tree).
    pub fn reset(&mut self) {
        for (i, p) in self.positions.iter_mut().enumerate() {
            *p = i as InstanceId;
        }
        self.ranges.clear();
        self.ranges.insert(0, (0, self.positions.len() as u32));
    }

    /// The instances currently on `node` (empty slice when untracked).
    pub fn instances(&self, node: u32) -> &[InstanceId] {
        match self.ranges.get(&node) {
            Some(&(lo, hi)) => &self.positions[lo as usize..hi as usize],
            None => &[],
        }
    }

    /// Number of instances on `node`.
    pub fn count(&self, node: u32) -> usize {
        self.ranges.get(&node).map_or(0, |&(lo, hi)| (hi - lo) as usize)
    }

    /// True when the index currently tracks `node`.
    pub fn contains(&self, node: u32) -> bool {
        self.ranges.contains_key(&node)
    }

    /// Splits `node` into its children with a stable partition: instances
    /// for which `goes_left` holds keep their relative order on the left
    /// child, the rest on the right. Returns `(left_count, right_count)`.
    pub fn split(
        &mut self,
        node: u32,
        mut goes_left: impl FnMut(InstanceId) -> bool,
    ) -> (usize, usize) {
        let (lo, hi) = *self.ranges.get(&node).expect("splitting an untracked node");
        let (lo, hi) = (lo as usize, hi as usize);
        self.scratch.clear();
        let mut write = lo;
        // First pass: keep lefts in place (stable), stash rights in scratch.
        for k in lo..hi {
            let inst = self.positions[k];
            if goes_left(inst) {
                self.positions[write] = inst;
                write += 1;
            } else {
                self.scratch.push(inst);
            }
        }
        self.positions[write..hi].copy_from_slice(&self.scratch);
        let (left, right) = crate::tree::children(node);
        self.ranges.remove(&node);
        // Children must partition the parent's range exactly; a re-split or
        // id collision would alias two nodes onto overlapping positions.
        debug_assert!(
            !self.ranges.contains_key(&left) && !self.ranges.contains_key(&right),
            "child node already tracked: split of {node} would alias ranges"
        );
        debug_assert!(lo <= write && write <= hi, "split point outside parent range");
        self.ranges.insert(left, (lo as u32, write as u32));
        self.ranges.insert(right, (write as u32, hi as u32));
        (write - lo, hi - write)
    }

    /// Drops tracking of a finished node (its range is simply forgotten).
    pub fn retire(&mut self, node: u32) {
        self.ranges.remove(&node);
    }

    /// Bytes of heap storage used.
    pub fn heap_bytes(&self) -> usize {
        self.positions.len() * 4 + self.scratch.capacity() * 4 + self.ranges.len() * 16
    }
}

/// Instance-to-node index: one node id per instance.
#[derive(Debug, Clone)]
pub struct InstanceToNodeIndex {
    nodes: Vec<u32>,
}

impl InstanceToNodeIndex {
    /// All instances start on the root node (id 0).
    pub fn new(n_instances: usize) -> Self {
        InstanceToNodeIndex { nodes: vec![0; n_instances] }
    }

    /// Resets every instance back to the root.
    pub fn reset(&mut self) {
        self.nodes.fill(0);
    }

    /// Node currently holding `instance`.
    #[inline]
    pub fn node_of(&self, instance: InstanceId) -> u32 {
        self.nodes[instance as usize]
    }

    /// Moves every instance on `node` to a child according to `goes_left`.
    /// Requires a full scan of the index — the cost the paper attributes to
    /// this structure. Returns `(left_count, right_count)`.
    pub fn split(
        &mut self,
        node: u32,
        mut goes_left: impl FnMut(InstanceId) -> bool,
    ) -> (usize, usize) {
        let (left, right) = crate::tree::children(node);
        let mut counts = (0usize, 0usize);
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if *n == node {
                if goes_left(i as InstanceId) {
                    *n = left;
                    counts.0 += 1;
                } else {
                    *n = right;
                    counts.1 += 1;
                }
            }
        }
        counts
    }

    /// Number of instances on `node` (full scan).
    pub fn count(&self, node: u32) -> usize {
        self.nodes.iter().filter(|&&n| n == node).count()
    }

    /// Bytes of heap storage used.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.len() * 4
    }
}

/// Column-wise node-to-instance index: each column's 〈instance, bin〉 pairs
/// kept physically partitioned by tree node (Figure 6).
#[derive(Debug, Clone)]
pub struct ColumnWiseIndex {
    n_rows: usize,
    /// Per column: pair arrays, reordered in place as nodes split.
    col_rows: Vec<Vec<InstanceId>>,
    col_bins: Vec<Vec<BinId>>,
    /// node id → per-column `[start, end)` ranges.
    ranges: BTreeMap<u32, Vec<(u32, u32)>>,
}

impl ColumnWiseIndex {
    /// Builds the index from a column-store; all instances start on root.
    pub fn from_columns(columns: &BinnedColumns) -> Self {
        let d = columns.n_features();
        let mut col_rows = Vec::with_capacity(d);
        let mut col_bins = Vec::with_capacity(d);
        let mut root_ranges = Vec::with_capacity(d);
        for j in 0..d {
            let (rows, bins) = columns.col(j);
            col_rows.push(rows.to_vec());
            col_bins.push(bins.to_vec());
            root_ranges.push((0u32, rows.len() as u32));
        }
        let mut ranges = BTreeMap::new();
        ranges.insert(0, root_ranges);
        ColumnWiseIndex { n_rows: columns.n_rows(), col_rows, col_bins, ranges }
    }

    /// Builds the index from either column-store layout. A dense store
    /// contributes exactly its present cells in ascending instance order —
    /// the same pairs, in the same order, as the sparse store — so the
    /// resulting index (and everything trained from it) is identical.
    pub fn from_store(columns: &ColumnStore) -> Self {
        let d = columns.n_features();
        let mut col_rows = Vec::with_capacity(d);
        let mut col_bins = Vec::with_capacity(d);
        let mut root_ranges = Vec::with_capacity(d);
        for j in 0..d {
            let mut rows: Vec<InstanceId> = Vec::new();
            let mut bins: Vec<BinId> = Vec::new();
            columns.for_each_in_col(j, |i, b| {
                rows.push(i);
                bins.push(b);
            });
            root_ranges.push((0u32, rows.len() as u32));
            col_rows.push(rows);
            col_bins.push(bins);
        }
        let mut ranges = BTreeMap::new();
        ranges.insert(0, root_ranges);
        ColumnWiseIndex { n_rows: columns.n_rows(), col_rows, col_bins, ranges }
    }

    /// Number of instances in the underlying data.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns indexed.
    pub fn n_features(&self) -> usize {
        self.col_rows.len()
    }

    /// The 〈instance, bin〉 pairs of `node` on column `j`.
    pub fn node_column(&self, node: u32, j: usize) -> (&[InstanceId], &[BinId]) {
        match self.ranges.get(&node) {
            Some(r) => {
                let (lo, hi) = r[j];
                (&self.col_rows[j][lo as usize..hi as usize], &self.col_bins[j][lo as usize..hi as usize])
            }
            None => (&[], &[]),
        }
    }

    /// Splits `node`, repartitioning **every** column — the O(D) update cost
    /// that makes this index unsuitable for high-dimensional data (§3.2.3).
    pub fn split(&mut self, node: u32, mut goes_left: impl FnMut(InstanceId) -> bool) {
        let node_ranges = self.ranges.remove(&node).expect("splitting an untracked node");
        let d = self.col_rows.len();
        let mut left_ranges = Vec::with_capacity(d);
        let mut right_ranges = Vec::with_capacity(d);
        let mut scratch_rows: Vec<InstanceId> = Vec::new();
        let mut scratch_bins: Vec<BinId> = Vec::new();
        for (j, &(lo, hi)) in node_ranges.iter().enumerate().take(d) {
            let (lo, hi) = (lo as usize, hi as usize);
            debug_assert!(j < d);
            scratch_rows.clear();
            scratch_bins.clear();
            let mut write = lo;
            for k in lo..hi {
                let inst = self.col_rows[j][k];
                let bin = self.col_bins[j][k];
                if goes_left(inst) {
                    self.col_rows[j][write] = inst;
                    self.col_bins[j][write] = bin;
                    write += 1;
                } else {
                    scratch_rows.push(inst);
                    scratch_bins.push(bin);
                }
            }
            self.col_rows[j][write..hi].copy_from_slice(&scratch_rows);
            self.col_bins[j][write..hi].copy_from_slice(&scratch_bins);
            left_ranges.push((lo as u32, write as u32));
            right_ranges.push((write as u32, hi as u32));
        }
        let (left, right) = crate::tree::children(node);
        // Same aliasing guard as NodeToInstanceIndex::split, per column.
        debug_assert!(
            !self.ranges.contains_key(&left) && !self.ranges.contains_key(&right),
            "child node already tracked: split of {node} would alias ranges"
        );
        self.ranges.insert(left, left_ranges);
        self.ranges.insert(right, right_ranges);
    }

    /// Resets the index for a new tree (recomputed from scratch by callers;
    /// here we just merge all ranges back to root by re-sorting columns).
    pub fn reset_from_columns(&mut self, columns: &BinnedColumns) {
        *self = Self::from_columns(columns);
    }

    /// [`Self::reset_from_columns`] for either column-store layout.
    pub fn reset_from_store(&mut self, columns: &ColumnStore) {
        *self = Self::from_store(columns);
    }

    /// Bytes of heap storage used.
    pub fn heap_bytes(&self) -> usize {
        self.col_rows.iter().map(|c| c.len() * 4).sum::<usize>()
            + self.col_bins.iter().map(|c| c.len() * 2).sum::<usize>()
            + self.ranges.len() * (8 + self.col_rows.len() * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_data::binned::BinnedRowsBuilder;

    #[test]
    fn node_to_instance_split_is_stable() {
        let mut idx = NodeToInstanceIndex::new(6);
        assert_eq!(idx.instances(0), &[0, 1, 2, 3, 4, 5]);
        let (l, r) = idx.split(0, |i| i % 2 == 0);
        assert_eq!((l, r), (3, 3));
        assert_eq!(idx.instances(1), &[0, 2, 4]);
        assert_eq!(idx.instances(2), &[1, 3, 5]);
        assert!(!idx.contains(0));
        // Split a child again.
        let (l, r) = idx.split(1, |i| i < 3);
        assert_eq!((l, r), (2, 1));
        assert_eq!(idx.instances(3), &[0, 2]);
        assert_eq!(idx.instances(4), &[4]);
        // Untouched sibling remains.
        assert_eq!(idx.instances(2), &[1, 3, 5]);
    }

    #[test]
    fn node_to_instance_reset() {
        let mut idx = NodeToInstanceIndex::new(4);
        idx.split(0, |i| i < 2);
        idx.reset();
        assert_eq!(idx.instances(0), &[0, 1, 2, 3]);
        assert_eq!(idx.count(1), 0);
    }

    #[test]
    fn instance_to_node_split_scans_all() {
        let mut idx = InstanceToNodeIndex::new(5);
        let (l, r) = idx.split(0, |i| i < 2);
        assert_eq!((l, r), (2, 3));
        assert_eq!(idx.node_of(0), 1);
        assert_eq!(idx.node_of(4), 2);
        assert_eq!(idx.count(1), 2);
        assert_eq!(idx.count(2), 3);
        // Splitting node 2 leaves node 1 instances alone.
        idx.split(2, |i| i == 3);
        assert_eq!(idx.node_of(3), 5);
        assert_eq!(idx.node_of(4), 6);
        assert_eq!(idx.node_of(0), 1);
        idx.reset();
        assert_eq!(idx.count(0), 5);
    }

    fn sample_columns() -> BinnedColumns {
        let mut b = BinnedRowsBuilder::new(2);
        b.push_row(&[(0, 1), (1, 5)]).unwrap(); // inst 0
        b.push_row(&[(0, 2)]).unwrap(); // inst 1
        b.push_row(&[(1, 6)]).unwrap(); // inst 2
        b.push_row(&[(0, 3), (1, 7)]).unwrap(); // inst 3
        b.build().to_columns()
    }

    #[test]
    fn column_wise_index_partitions_every_column() {
        let cols = sample_columns();
        let mut idx = ColumnWiseIndex::from_columns(&cols);
        assert_eq!(idx.node_column(0, 0).0, &[0, 1, 3]);
        assert_eq!(idx.node_column(0, 1).0, &[0, 2, 3]);
        // Instances 0, 2 left; 1, 3 right.
        idx.split(0, |i| i == 0 || i == 2);
        assert_eq!(idx.node_column(1, 0), (&[0u32][..], &[1u16][..]));
        assert_eq!(idx.node_column(2, 0), (&[1u32, 3][..], &[2u16, 3][..]));
        assert_eq!(idx.node_column(1, 1), (&[0u32, 2][..], &[5u16, 6][..]));
        assert_eq!(idx.node_column(2, 1), (&[3u32][..], &[7u16][..]));
        // Untracked node yields empty slices.
        assert_eq!(idx.node_column(9, 0).0.len(), 0);
    }

    #[test]
    fn column_wise_index_identical_from_either_layout() {
        let mut b = BinnedRowsBuilder::new(2);
        b.push_row(&[(0, 1), (1, 5)]).unwrap();
        b.push_row(&[(0, 2)]).unwrap();
        b.push_row(&[(1, 6)]).unwrap();
        b.push_row(&[(0, 3), (1, 7)]).unwrap();
        let rows = b.build();
        let sparse = gbdt_data::BinnedStore::sparse(rows.clone()).to_columns();
        let dense = gbdt_data::BinnedStore::dense(rows, 8).to_columns();
        let a = ColumnWiseIndex::from_store(&sparse);
        let bx = ColumnWiseIndex::from_store(&dense);
        for j in 0..2 {
            assert_eq!(a.node_column(0, j), bx.node_column(0, j), "column {j}");
        }
        assert_eq!(a.heap_bytes(), bx.heap_bytes());
    }

    #[test]
    fn column_wise_reset_restores_root() {
        let cols = sample_columns();
        let mut idx = ColumnWiseIndex::from_columns(&cols);
        idx.split(0, |i| i < 2);
        idx.reset_from_columns(&cols);
        assert_eq!(idx.node_column(0, 0).0, &[0, 1, 3]);
        assert_eq!(idx.node_column(1, 0).0.len(), 0);
    }
}
