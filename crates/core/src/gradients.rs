//! Flat gradient-pair buffers.
//!
//! Histogram construction reads one gradient pair per (instance, class) in
//! its innermost loop, so the storage is a pair of flat `f64` arrays indexed
//! `instance * C + class` — no per-instance allocation, cache-linear for the
//! row-scan orders used by the trainers.

use serde::{Deserialize, Serialize};

/// One first-/second-order gradient pair (gᵢ, hᵢ).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GradPair {
    /// First-order gradient gᵢ.
    pub grad: f64,
    /// Second-order gradient (hessian) hᵢ.
    pub hess: f64,
}

impl GradPair {
    /// Creates a pair.
    pub fn new(grad: f64, hess: f64) -> Self {
        GradPair { grad, hess }
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: GradPair) {
        self.grad += other.grad;
        self.hess += other.hess;
    }
}

/// Gradient pairs for N instances × C classes, stored flat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradBuffer {
    n_instances: usize,
    n_outputs: usize,
    grads: Vec<f64>,
    hesses: Vec<f64>,
}

impl GradBuffer {
    /// Allocates a zeroed buffer for `n_instances × n_outputs` pairs.
    pub fn new(n_instances: usize, n_outputs: usize) -> Self {
        GradBuffer {
            n_instances,
            n_outputs,
            grads: vec![0.0; n_instances * n_outputs],
            hesses: vec![0.0; n_instances * n_outputs],
        }
    }

    /// Number of instances.
    #[inline]
    pub fn n_instances(&self) -> usize {
        self.n_instances
    }

    /// Number of classes C.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Sets the pair of `(instance, class)`.
    #[inline]
    pub fn set(&mut self, instance: usize, class: usize, grad: f64, hess: f64) {
        let k = instance * self.n_outputs + class;
        self.grads[k] = grad;
        self.hesses[k] = hess;
    }

    /// Pair of `(instance, class)`.
    #[inline]
    pub fn get(&self, instance: usize, class: usize) -> GradPair {
        let k = instance * self.n_outputs + class;
        GradPair { grad: self.grads[k], hess: self.hesses[k] }
    }

    /// All C pairs of one instance, as parallel `(grads, hesses)` slices.
    #[inline]
    pub fn instance(&self, instance: usize) -> (&[f64], &[f64]) {
        let lo = instance * self.n_outputs;
        let hi = lo + self.n_outputs;
        (&self.grads[lo..hi], &self.hesses[lo..hi])
    }

    /// The `(g, h)` pair of one instance when `C == 1` — two direct loads,
    /// no slice headers. The C = 1 fill kernels read one pair per row; this
    /// keeps that read out of the per-row prologue cost.
    #[inline(always)]
    pub fn pair1(&self, instance: usize) -> (f64, f64) {
        debug_assert_eq!(self.n_outputs, 1, "pair1 requires C == 1");
        (self.grads[instance], self.hesses[instance])
    }

    /// Sum of all pairs of the given instances, per class, appended into
    /// `grad_out` / `hess_out` (each of length C).
    pub fn sum_instances(&self, instances: &[u32], grad_out: &mut [f64], hess_out: &mut [f64]) {
        debug_assert_eq!(grad_out.len(), self.n_outputs);
        debug_assert_eq!(hess_out.len(), self.n_outputs);
        grad_out.iter_mut().for_each(|g| *g = 0.0);
        hess_out.iter_mut().for_each(|h| *h = 0.0);
        for &i in instances {
            let (g, h) = self.instance(i as usize);
            for c in 0..self.n_outputs {
                grad_out[c] += g[c];
                hess_out[c] += h[c];
            }
        }
    }

    /// Extracts the rows for a horizontal shard `lo..hi`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> GradBuffer {
        GradBuffer {
            n_instances: hi - lo,
            n_outputs: self.n_outputs,
            grads: self.grads[lo * self.n_outputs..hi * self.n_outputs].to_vec(),
            hesses: self.hesses[lo * self.n_outputs..hi * self.n_outputs].to_vec(),
        }
    }

    /// Bytes of heap storage used.
    pub fn heap_bytes(&self) -> usize {
        (self.grads.len() + self.hesses.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = GradBuffer::new(3, 2);
        b.set(1, 0, 0.5, 0.25);
        b.set(1, 1, -0.5, 0.75);
        assert_eq!(b.get(1, 0), GradPair::new(0.5, 0.25));
        assert_eq!(b.get(1, 1), GradPair::new(-0.5, 0.75));
        assert_eq!(b.get(0, 0), GradPair::default());
        let (g, h) = b.instance(1);
        assert_eq!(g, &[0.5, -0.5]);
        assert_eq!(h, &[0.25, 0.75]);
    }

    #[test]
    fn sum_instances_accumulates_per_class() {
        let mut b = GradBuffer::new(4, 2);
        for i in 0..4 {
            b.set(i, 0, 1.0, 2.0);
            b.set(i, 1, -1.0, 0.5);
        }
        let mut g = vec![0.0; 2];
        let mut h = vec![0.0; 2];
        b.sum_instances(&[0, 2, 3], &mut g, &mut h);
        assert_eq!(g, vec![3.0, -3.0]);
        assert_eq!(h, vec![6.0, 1.5]);
    }

    #[test]
    fn slice_rows_extracts_shard() {
        let mut b = GradBuffer::new(4, 1);
        for i in 0..4 {
            b.set(i, 0, i as f64, 1.0);
        }
        let s = b.slice_rows(1, 3);
        assert_eq!(s.n_instances(), 2);
        assert_eq!(s.get(0, 0).grad, 1.0);
        assert_eq!(s.get(1, 0).grad, 2.0);
    }

    #[test]
    fn grad_pair_add() {
        let mut p = GradPair::new(1.0, 2.0);
        p.add(GradPair::new(0.5, 0.5));
        assert_eq!(p, GradPair::new(1.5, 2.5));
    }
}
