//! Training hyper-parameters.

use crate::loss::Objective;
use serde::{Deserialize, Serialize};

/// Histogram wire codec for distributed aggregation (§3.1.3 traffic).
///
/// Selects how flat f64 histogram buffers are serialized by the
/// codec-aware collectives in `gbdt-cluster`. The lossless codecs
/// (`Dense`, `Sparse`, `Auto`) are guaranteed to produce bit-identical
/// ensembles; `F32` is an opt-in lossy mode that halves payload width the
/// way DimBoost's low-precision compressed histograms do (§4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireCodec {
    /// Lossless raw little-endian f64 payloads — the legacy wire format.
    #[default]
    Dense,
    /// Lossless COO-style `(u32 bin index, f64 value)` pairs for the
    /// nonzero bins only (Block-distributed GBT style).
    Sparse,
    /// Per-message choice between `Dense` and `Sparse` by measured
    /// density against the exact break-even byte count.
    Auto,
    /// Lossy f32 payloads (sparsity-aware: picks sparse or dense f32
    /// pairs per message). Changes the trained ensemble; opt-in only.
    F32,
}

impl WireCodec {
    /// All codecs, in display order.
    pub const ALL: [WireCodec; 4] =
        [WireCodec::Dense, WireCodec::Sparse, WireCodec::Auto, WireCodec::F32];

    /// Whether decoded payloads are bit-identical to the encoder's input.
    pub fn is_lossless(self) -> bool {
        !matches!(self, WireCodec::F32)
    }

    /// Short label for reports and CLI echo.
    pub fn label(self) -> &'static str {
        match self {
            WireCodec::Dense => "dense",
            WireCodec::Sparse => "sparse",
            WireCodec::Auto => "auto",
            WireCodec::F32 => "f32",
        }
    }
}

impl std::str::FromStr for WireCodec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(WireCodec::Dense),
            "sparse" => Ok(WireCodec::Sparse),
            "auto" => Ok(WireCodec::Auto),
            "f32" => Ok(WireCodec::F32),
            other => Err(format!("unknown wire codec '{other}' (expected dense|sparse|auto|f32)")),
        }
    }
}

impl std::fmt::Display for WireCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Binned-storage layout policy (§3.2 storage patterns).
///
/// Decides, at binning time, whether trainers scan the sparse
/// 〈feature, bin〉-pair layout or the dense one-cell-per-`(row, feature)`
/// layout with width-specialized histogram kernels. Every choice trains a
/// **bit-identical** ensemble — both layouts scan values in the same
/// ascending order — so this knob trades only memory and scan throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Storage {
    /// Pick dense when the stored-value density of the binned matrix
    /// reaches `gbdt_data::DEFAULT_DENSE_THRESHOLD`, sparse otherwise.
    #[default]
    Auto,
    /// Always the sparse pair layout (the pre-existing storage).
    Sparse,
    /// Always the dense cell layout (u8 cells when `q ≤ 255`, else u16).
    Dense,
    /// Always the dense cell layout with u16 cells, even when `q` fits u8.
    /// Same bits out of training as every other policy; exists so the u16
    /// kernels can be driven (and perf-compared) on small-`q` datasets.
    DenseWide,
}

impl Storage {
    /// All policies, in display order.
    pub const ALL: [Storage; 4] =
        [Storage::Auto, Storage::Sparse, Storage::Dense, Storage::DenseWide];

    /// Short label for reports and CLI echo.
    pub fn label(self) -> &'static str {
        match self {
            Storage::Auto => "auto",
            Storage::Sparse => "sparse",
            Storage::Dense => "dense",
            Storage::DenseWide => "dense-u16",
        }
    }

    /// Applies the policy to already-binned rows. `n_bins` is the global
    /// histogram width (it fixes the dense cell width deterministically, so
    /// every shard of one dataset packs identically).
    pub fn bin_store(
        self,
        rows: gbdt_data::BinnedRows,
        n_bins: usize,
    ) -> gbdt_data::BinnedStore {
        use gbdt_data::BinnedStore;
        match self {
            Storage::Sparse => BinnedStore::sparse(rows),
            Storage::Dense => BinnedStore::dense(rows, n_bins),
            Storage::DenseWide => BinnedStore::dense_wide(rows, n_bins),
            Storage::Auto => {
                BinnedStore::auto(rows, n_bins, gbdt_data::DEFAULT_DENSE_THRESHOLD)
            }
        }
    }
}

impl std::str::FromStr for Storage {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Storage::Auto),
            "sparse" => Ok(Storage::Sparse),
            "dense" => Ok(Storage::Dense),
            "dense-u16" => Ok(Storage::DenseWide),
            other => {
                Err(format!("unknown storage '{other}' (expected auto|sparse|dense|dense-u16)"))
            }
        }
    }
}

impl std::fmt::Display for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Histogram fill-kernel selection for the dense storage layout.
///
/// `Simd` (the default) scans packed cells in fixed-width lane groups
/// with unchecked accumulates whose bounds come from a per-group vector
/// range check (see `gbdt_core::kernels::simd`); `Scalar` is the PR-4
/// reference loop. Both visit values in the same ascending order, so the
/// trained ensemble is **bit-identical** either way — this knob trades
/// only scan throughput, and exists so the perf harness can measure the
/// SIMD speedup and tests can cross-check the two implementations.
/// Sparse storage has a single kernel and ignores this knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// Lane-group SIMD fills (u8×16 / u16×8 classify, f64×4 accumulate).
    #[default]
    Simd,
    /// The scalar reference fills.
    Scalar,
}

impl Kernel {
    /// All kernels, in display order.
    pub const ALL: [Kernel; 2] = [Kernel::Simd, Kernel::Scalar];

    /// Short label for reports and CLI echo.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Simd => "simd",
            Kernel::Scalar => "scalar",
        }
    }
}

impl std::str::FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "simd" => Ok(Kernel::Simd),
            "scalar" => Ok(Kernel::Scalar),
            other => Err(format!("unknown kernel '{other}' (expected simd|scalar)")),
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// GBDT training configuration, using the paper's symbols.
///
/// Defaults follow §5.1: `T = 100` trees, `L = 8` layers, `q = 20` candidate
/// splits. Build with [`TrainConfig::builder`] for fluent construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// T — number of boosted trees.
    pub n_trees: usize,
    /// L — number of tree layers (a root-only tree has L = 1; an L-layer
    /// tree has at most `2^(L-1)` leaves).
    pub n_layers: usize,
    /// q — number of candidate splits per feature (histogram bins).
    pub n_bins: usize,
    /// η — learning rate (step size) applied to every leaf.
    pub learning_rate: f64,
    /// λ — L2 regularization on leaf weights (Eq. 1, 2).
    pub lambda: f64,
    /// γ — per-leaf complexity penalty (Eq. 2).
    pub gamma: f64,
    /// Minimum sum of hessians on each child for a split to be valid.
    pub min_child_weight: f64,
    /// Minimum number of instances on a node for it to be split.
    pub min_node_instances: usize,
    /// The training objective.
    pub objective: Objective,
    /// Intra-worker threads for histogram build and split finding; 0 = auto
    /// (`available_parallelism() / W`, clamped to ≥ 1). Results are
    /// bit-identical for every value — see [`crate::parallel`].
    pub threads: usize,
    /// Histogram wire codec for distributed aggregation. All lossless
    /// codecs (everything but [`WireCodec::F32`]) train bit-identical
    /// ensembles; trainers that never ship histograms (the vertical
    /// quadrants) ignore it entirely.
    pub wire: WireCodec,
    /// Binned-storage layout policy. Every choice trains a bit-identical
    /// ensemble; `Auto` densifies when the binned matrix is dense enough
    /// for the cell layout to win on bytes and scan speed.
    pub storage: Storage,
    /// Dense histogram fill kernel (SIMD lane groups vs the scalar
    /// reference). Bit-identical ensembles either way; speed only.
    pub kernel: Kernel,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            n_trees: 100,
            n_layers: 8,
            n_bins: 20,
            learning_rate: 0.1,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1e-3,
            min_node_instances: 2,
            objective: Objective::Logistic,
            threads: 0,
            wire: WireCodec::Dense,
            storage: Storage::Auto,
            kernel: Kernel::Simd,
        }
    }
}

impl TrainConfig {
    /// Starts a fluent builder from the §5.1 defaults.
    pub fn builder() -> TrainConfigBuilder {
        TrainConfigBuilder { cfg: TrainConfig::default() }
    }

    /// C — the gradient dimension: 1 for regression/binary, the class count
    /// for multi-class (paper §3: "C equals 1 in binary-classification or
    /// the number of classes in multi-classification").
    pub fn n_outputs(&self) -> usize {
        self.objective.n_outputs()
    }

    /// Validates parameter ranges, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_trees == 0 {
            return Err("n_trees must be >= 1".into());
        }
        if self.n_layers == 0 || self.n_layers > 24 {
            return Err("n_layers must be in 1..=24".into());
        }
        if self.n_bins < 2 || self.n_bins > u16::MAX as usize {
            return Err("n_bins must be in 2..=65535".into());
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err("learning_rate must be positive".into());
        }
        if self.lambda < 0.0 || self.gamma < 0.0 {
            return Err("lambda and gamma must be non-negative".into());
        }
        Ok(())
    }
}

/// Fluent builder for [`TrainConfig`].
#[derive(Debug, Clone)]
pub struct TrainConfigBuilder {
    cfg: TrainConfig,
}

impl TrainConfigBuilder {
    /// Sets T, the number of trees.
    pub fn n_trees(mut self, t: usize) -> Self {
        self.cfg.n_trees = t;
        self
    }

    /// Sets L, the number of tree layers.
    pub fn n_layers(mut self, l: usize) -> Self {
        self.cfg.n_layers = l;
        self
    }

    /// Sets q, the number of candidate splits (histogram bins).
    pub fn n_bins(mut self, q: usize) -> Self {
        self.cfg.n_bins = q;
        self
    }

    /// Sets η, the learning rate.
    pub fn learning_rate(mut self, eta: f64) -> Self {
        self.cfg.learning_rate = eta;
        self
    }

    /// Sets λ, the L2 leaf regularization.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.cfg.lambda = lambda;
        self
    }

    /// Sets γ, the per-leaf complexity penalty.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.cfg.gamma = gamma;
        self
    }

    /// Sets the minimum child hessian sum.
    pub fn min_child_weight(mut self, w: f64) -> Self {
        self.cfg.min_child_weight = w;
        self
    }

    /// Sets the minimum instance count for splitting a node.
    pub fn min_node_instances(mut self, n: usize) -> Self {
        self.cfg.min_node_instances = n;
        self
    }

    /// Sets the training objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.cfg.objective = objective;
        self
    }

    /// Sets the intra-worker thread budget (0 = auto; results are
    /// bit-identical for every value).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Sets the histogram wire codec (default [`WireCodec::Dense`]).
    pub fn wire(mut self, wire: WireCodec) -> Self {
        self.cfg.wire = wire;
        self
    }

    /// Sets the binned-storage layout policy (default [`Storage::Auto`];
    /// results are bit-identical for every value).
    pub fn storage(mut self, storage: Storage) -> Self {
        self.cfg.storage = storage;
        self
    }

    /// Sets the dense histogram fill kernel (default [`Kernel::Simd`];
    /// results are bit-identical for every value).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.cfg.kernel = kernel;
        self
    }

    /// Finalizes, validating all parameters.
    pub fn build(self) -> Result<TrainConfig, String> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_section_5_1() {
        let cfg = TrainConfig::default();
        assert_eq!(cfg.n_trees, 100);
        assert_eq!(cfg.n_layers, 8);
        assert_eq!(cfg.n_bins, 20);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = TrainConfig::builder()
            .n_trees(5)
            .n_layers(4)
            .n_bins(16)
            .learning_rate(0.3)
            .lambda(2.0)
            .gamma(0.5)
            .objective(Objective::Softmax { n_classes: 7 })
            .threads(4)
            .build()
            .unwrap();
        assert_eq!(cfg.n_trees, 5);
        assert_eq!(cfg.n_outputs(), 7);
        assert_eq!(cfg.gamma, 0.5);
        assert_eq!(cfg.threads, 4);
    }

    #[test]
    fn default_thread_budget_is_auto() {
        assert_eq!(TrainConfig::default().threads, 0);
    }

    #[test]
    fn default_wire_codec_is_dense() {
        assert_eq!(TrainConfig::default().wire, WireCodec::Dense);
        assert!(WireCodec::Dense.is_lossless());
        assert!(WireCodec::Auto.is_lossless());
        assert!(!WireCodec::F32.is_lossless());
    }

    #[test]
    fn wire_codec_parses_cli_names() {
        for codec in WireCodec::ALL {
            assert_eq!(codec.label().parse::<WireCodec>().unwrap(), codec);
            assert_eq!(format!("{codec}"), codec.label());
        }
        assert!("gzip".parse::<WireCodec>().is_err());
    }

    #[test]
    fn builder_sets_wire_codec() {
        let cfg = TrainConfig::builder().wire(WireCodec::Auto).build().unwrap();
        assert_eq!(cfg.wire, WireCodec::Auto);
    }

    #[test]
    fn default_storage_is_auto() {
        assert_eq!(TrainConfig::default().storage, Storage::Auto);
    }

    #[test]
    fn storage_parses_cli_names() {
        for storage in Storage::ALL {
            assert_eq!(storage.label().parse::<Storage>().unwrap(), storage);
            assert_eq!(format!("{storage}"), storage.label());
        }
        assert!("columnar".parse::<Storage>().is_err());
    }

    #[test]
    fn builder_sets_storage() {
        let cfg = TrainConfig::builder().storage(Storage::Dense).build().unwrap();
        assert_eq!(cfg.storage, Storage::Dense);
    }

    #[test]
    fn bin_store_follows_policy() {
        use gbdt_data::binned::BinnedRowsBuilder;
        let rows = || {
            let mut b = BinnedRowsBuilder::new(2);
            b.push_row(&[(0, 0), (1, 1)]).unwrap();
            b.push_row(&[(0, 1), (1, 0)]).unwrap();
            b.build()
        };
        assert!(!Storage::Sparse.bin_store(rows(), 2).is_dense());
        assert!(Storage::Dense.bin_store(rows(), 2).is_dense());
        assert!(Storage::DenseWide.bin_store(rows(), 2).is_dense());
        // DenseWide forces u16 cells even though 2 bins fit u8.
        assert_eq!(Storage::DenseWide.bin_store(rows(), 2).label(), "dense-u16");
        assert_eq!(Storage::Dense.bin_store(rows(), 2).label(), "dense-u8");
        // Fully dense data crosses the auto threshold.
        assert!(Storage::Auto.bin_store(rows(), 2).is_dense());
    }

    #[test]
    fn default_kernel_is_simd() {
        assert_eq!(TrainConfig::default().kernel, Kernel::Simd);
    }

    #[test]
    fn kernel_parses_cli_names() {
        for kernel in Kernel::ALL {
            assert_eq!(kernel.label().parse::<Kernel>().unwrap(), kernel);
            assert_eq!(format!("{kernel}"), kernel.label());
        }
        assert!("avx512".parse::<Kernel>().is_err());
    }

    #[test]
    fn builder_sets_kernel() {
        let cfg = TrainConfig::builder().kernel(Kernel::Scalar).build().unwrap();
        assert_eq!(cfg.kernel, Kernel::Scalar);
    }

    #[test]
    fn builder_rejects_invalid() {
        assert!(TrainConfig::builder().n_trees(0).build().is_err());
        assert!(TrainConfig::builder().n_bins(1).build().is_err());
        assert!(TrainConfig::builder().learning_rate(0.0).build().is_err());
        assert!(TrainConfig::builder().lambda(-1.0).build().is_err());
        assert!(TrainConfig::builder().n_layers(25).build().is_err());
    }
}
