//! Mergeable quantile sketch for candidate split proposal.
//!
//! The histogram-based algorithm proposes `q` candidate splits per feature
//! from an approximation of the feature's distribution (§2.1.2), built with
//! a *mergeable* sketch so that per-worker local sketches can be repartitioned
//! and merged into global ones (§4.2.1 step 1). This is a KLL-style compactor
//! hierarchy: level `h` stores items of weight `2^h`; when a level overflows
//! it is sorted and every other item is promoted to the next level.
//!
//! Compaction offsets alternate deterministically instead of randomly, so
//! that identical inputs always produce identical sketches — the property the
//! cross-quadrant equivalence tests rely on. The paper's sketches are
//! similarly "usually small in size" (§4.2.1); byte-exact wire encoding is
//! provided for the communication cost accounting.

use serde::{Deserialize, Serialize};

/// Default per-level compactor capacity, giving ≈1% rank error.
pub const DEFAULT_CAPACITY: usize = 256;

/// A mergeable streaming quantile sketch over `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    capacity: usize,
    /// `levels[h]` holds items of weight `2^h`, unsorted between compactions.
    levels: Vec<Vec<f32>>,
    n: u64,
    min: f32,
    max: f32,
    /// Deterministic compaction-offset alternator.
    flip: bool,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl QuantileSketch {
    /// Creates an empty sketch with the given per-level capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 4, "capacity must be at least 4");
        QuantileSketch {
            capacity,
            levels: vec![Vec::new()],
            n: 0,
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            flip: false,
        }
    }

    /// Number of values observed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True when no values have been observed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Smallest observed value (exact).
    pub fn min(&self) -> Option<f32> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observed value (exact).
    pub fn max(&self) -> Option<f32> {
        (self.n > 0).then_some(self.max)
    }

    /// Inserts one value. NaN values are ignored (missing data).
    pub fn insert(&mut self, value: f32) {
        if value.is_nan() {
            return;
        }
        self.n += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.levels[0].push(value);
        self.compact_cascade();
    }

    /// Merges another sketch into this one.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.n == 0 {
            return;
        }
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if other.levels.len() > self.levels.len() {
            self.levels.resize(other.levels.len(), Vec::new());
        }
        for (h, level) in other.levels.iter().enumerate() {
            self.levels[h].extend_from_slice(level);
        }
        self.compact_cascade();
    }

    fn compact_cascade(&mut self) {
        let mut h = 0;
        while h < self.levels.len() {
            if self.levels[h].len() > self.capacity {
                if h + 1 == self.levels.len() {
                    self.levels.push(Vec::new());
                }
                let mut level = std::mem::take(&mut self.levels[h]);
                level.sort_unstable_by(f32::total_cmp);
                let offset = usize::from(self.flip);
                self.flip = !self.flip;
                let promoted = level.iter().skip(offset).step_by(2).copied();
                self.levels[h + 1].extend(promoted);
                // Items at the other parity are discarded; their weight is
                // implicitly transferred to the promoted neighbours.
            }
            h += 1;
        }
    }

    /// Weighted items `(value, weight)` in ascending value order.
    fn weighted_items(&self) -> Vec<(f32, u64)> {
        let mut items: Vec<(f32, u64)> = Vec::new();
        for (h, level) in self.levels.iter().enumerate() {
            let w = 1u64 << h;
            items.extend(level.iter().map(|&v| (v, w)));
        }
        items.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        items
    }

    /// Approximate `phi`-quantile (`phi ∈ [0, 1]`); `None` when empty.
    pub fn quantile(&self, phi: f64) -> Option<f32> {
        if self.n == 0 {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let items = self.weighted_items();
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        let target = (phi * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for &(v, w) in &items {
            cum += w;
            if cum >= target {
                return Some(v);
            }
        }
        Some(self.max)
    }

    /// `q` candidate split values at quantiles `1/q, 2/q, …, 1`, deduplicated
    /// and ending at the exact maximum so every value maps to some bin.
    pub fn candidate_splits(&self, q: usize) -> Vec<f32> {
        if self.n == 0 || q == 0 {
            return Vec::new();
        }
        let mut cuts = Vec::with_capacity(q);
        for i in 1..=q {
            let phi = i as f64 / q as f64;
            if let Some(v) = self.quantile(phi) {
                if cuts.last().is_none_or(|&last| v > last) {
                    cuts.push(v);
                }
            }
        }
        // Guarantee the exact maximum is covered WITHOUT exceeding q cuts:
        // replace the top cut when the budget is already spent.
        match cuts.last_mut() {
            Some(last) if *last < self.max => {
                if cuts.len() < q {
                    cuts.push(self.max);
                } else {
                    *cuts.last_mut().expect("non-empty") = self.max;
                }
            }
            None => cuts.push(self.max),
            _ => {}
        }
        debug_assert!(cuts.len() <= q);
        cuts
    }

    /// Exact wire encoding (header + per-level f32 payloads).
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            29 + self.levels.iter().map(|l| 4 + l.len() * 4).sum::<usize>(),
        );
        out.extend_from_slice(&(self.capacity as u32).to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        out.push(u8::from(self.flip));
        out.extend_from_slice(&(self.levels.len() as u32).to_le_bytes());
        for level in &self.levels {
            out.extend_from_slice(&(level.len() as u32).to_le_bytes());
            for v in level {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Decodes [`Self::encode_bytes`] output. Returns `None` on malformed input.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Option<&[u8]> {
            let slice = bytes.get(pos..pos + n)?;
            pos += n;
            Some(slice)
        };
        let capacity = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let n = u64::from_le_bytes(take(8)?.try_into().ok()?);
        let min = f32::from_le_bytes(take(4)?.try_into().ok()?);
        let max = f32::from_le_bytes(take(4)?.try_into().ok()?);
        let flip = take(1)?[0] != 0;
        let n_levels = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        if capacity < 4 || n_levels > 64 {
            return None;
        }
        let mut levels = Vec::with_capacity(n_levels.max(1));
        for _ in 0..n_levels {
            let len = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
            let mut level = Vec::with_capacity(len);
            for _ in 0..len {
                level.push(f32::from_le_bytes(take(4)?.try_into().ok()?));
            }
            levels.push(level);
        }
        if levels.is_empty() {
            levels.push(Vec::new());
        }
        if pos != bytes.len() {
            return None;
        }
        Some(QuantileSketch { capacity, levels, n, min, max, flip })
    }

    /// Bytes the sketch occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        25 + self.levels.iter().map(|l| 4 + l.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: impl IntoIterator<Item = f32>) -> QuantileSketch {
        let mut s = QuantileSketch::new(64);
        for v in values {
            s.insert(v);
        }
        s
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert!(s.candidate_splits(10).is_empty());
    }

    #[test]
    fn small_stream_is_exact() {
        // Below capacity nothing is compacted, so quantiles are exact.
        let s = filled((1..=50).map(|i| i as f32));
        assert_eq!(s.count(), 50);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(50.0));
        assert_eq!(s.quantile(0.5), Some(25.0));
        assert_eq!(s.quantile(1.0), Some(50.0));
        assert_eq!(s.quantile(0.02), Some(1.0));
    }

    #[test]
    fn nan_values_are_ignored() {
        let mut s = QuantileSketch::new(16);
        s.insert(1.0);
        s.insert(f32::NAN);
        s.insert(2.0);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn large_stream_has_bounded_rank_error() {
        let n = 20_000;
        let s = {
            let mut s = QuantileSketch::new(256);
            // Deterministic pseudo-shuffled order.
            for i in 0..n {
                let v = ((i * 7919) % n) as f32;
                s.insert(v);
            }
            s
        };
        for phi in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let got = s.quantile(phi).unwrap() as f64;
            let want = phi * n as f64;
            let err = (got - want).abs() / n as f64;
            assert!(err < 0.05, "phi={phi}: got {got}, want {want}, err {err}");
        }
    }

    #[test]
    fn merge_equals_union_statistically() {
        let a = filled((0..5_000).map(|i| i as f32));
        let b = filled((5_000..10_000).map(|i| i as f32));
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 10_000);
        assert_eq!(merged.min(), Some(0.0));
        assert_eq!(merged.max(), Some(9_999.0));
        let mid = merged.quantile(0.5).unwrap() as f64;
        assert!((mid - 5_000.0).abs() / 10_000.0 < 0.05, "median {mid}");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = filled([3.0, 1.0, 2.0]);
        let mut b = a.clone();
        b.merge(&QuantileSketch::default());
        assert_eq!(a, b);
        let mut empty = QuantileSketch::new(64);
        empty.merge(&a);
        assert_eq!(empty.count(), 3);
        assert_eq!(empty.quantile(1.0), Some(3.0));
    }

    #[test]
    fn candidate_splits_are_sorted_distinct_and_end_at_max() {
        let s = filled((0..1000).map(|i| (i % 10) as f32));
        let cuts = s.candidate_splits(20);
        assert!(!cuts.is_empty());
        for w in cuts.windows(2) {
            assert!(w[0] < w[1], "cuts not strictly ascending: {cuts:?}");
        }
        assert_eq!(*cuts.last().unwrap(), 9.0);
        // Only 10 distinct values -> at most 10 cuts even with q=20.
        assert!(cuts.len() <= 10);
    }

    #[test]
    fn constant_feature_yields_single_cut() {
        let s = filled(std::iter::repeat_n(4.2, 100));
        let cuts = s.candidate_splits(20);
        assert_eq!(cuts, vec![4.2]);
    }

    #[test]
    fn wire_roundtrip_is_exact() {
        let s = filled((0..3_000).map(|i| (i as f32).sin()));
        let bytes = s.encode_bytes();
        assert_eq!(bytes.len(), s.wire_bytes());
        let back = QuantileSketch::decode_bytes(&bytes).unwrap();
        assert_eq!(s, back);
        // Truncated input is rejected.
        assert!(QuantileSketch::decode_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(QuantileSketch::decode_bytes(&[1, 2, 3]).is_none());
    }

    #[test]
    fn determinism_across_identical_streams() {
        let a = filled((0..10_000).map(|i| ((i * 31) % 997) as f32));
        let b = filled((0..10_000).map(|i| ((i * 31) % 997) as f32));
        assert_eq!(a, b);
    }

    #[test]
    fn sketch_stays_small() {
        let mut s = QuantileSketch::new(256);
        for i in 0..1_000_000 {
            s.insert((i % 100_000) as f32);
        }
        // Logarithmic level count, bounded per-level size.
        assert!(s.wire_bytes() < 64 * 1024, "sketch grew to {} bytes", s.wire_bytes());
    }
}
