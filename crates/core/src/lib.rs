//! GBDT algorithm core.
//!
//! Everything in this crate is *data-management agnostic*: the same
//! histograms, split finding, trees, and losses are shared by all four
//! quadrant trainers (paper §5.2: "we implement different partitioning
//! schemes and storage patterns in the same code base"). The crate covers:
//!
//! * [`config`] — training hyper-parameters (T trees, L layers, q candidate
//!   splits, η, λ, γ — the symbols of §2.1 / §5.1).
//! * [`sketch`] — mergeable quantile sketch for candidate split proposal
//!   (§2.1.2: "the most common approach … is using the quantile sketch").
//! * [`binning`] — candidate splits per feature and value → bin mapping.
//! * [`loss`] — second-order objectives: squared error, logistic, softmax.
//! * [`gradients`] — flat first-/second-order gradient buffers.
//! * [`histogram`] — gradient histograms with element-wise merge and the
//!   histogram **subtraction** technique (§2.1.2).
//! * [`split`] — split gain (Eq. 2), leaf weights (Eq. 1), missing-value
//!   default direction.
//! * [`tree`] / [`model`] — the decision tree and boosted ensemble.
//! * [`indexes`] — the three tree-node/instance index structures of §3.2.1.
//! * [`metrics`] — AUC, accuracy, RMSE, log-loss.
//! * [`parallel`] — deterministic intra-worker multi-core execution
//!   (chunked histogram map-reduce, feature-fanned split finding).
//! * [`kernels`] — storage-specialized histogram-build kernels (dense row
//!   and column scans, `C = 1` fast path, explicit SIMD lane fills in the
//!   one audited `kernels::simd` unsafe module) that are bit-identical to
//!   the sparse pair walk.

pub mod binning;
pub mod config;
pub mod gradients;
pub mod histogram;
pub mod indexes;
pub mod kernels;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod parallel;
pub mod sketch;
pub mod split;
pub mod tree;

pub use binning::BinCuts;
pub use config::{Kernel, Storage, TrainConfig, WireCodec};
pub use gradients::{GradBuffer, GradPair};
pub use histogram::NodeHistogram;
pub use loss::Objective;
pub use model::GbdtModel;
pub use parallel::Parallelism;
pub use sketch::QuantileSketch;
pub use split::{NodeStats, Split, SplitParams};
pub use tree::{NodeKind, Tree, TreeNode};
