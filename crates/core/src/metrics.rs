//! Evaluation metrics used by the paper's convergence plots: validation AUC
//! for binary tasks (Figures 11a–f, 12-left) and validation accuracy for
//! multi-class tasks (Figures 11g–h, 12-mid/right), plus RMSE and log-loss.

/// Area under the ROC curve from raw scores (higher score = class 1).
///
/// Rank-based (Mann–Whitney) computation with midrank tie handling.
/// Returns 0.5 when either class is absent.
pub fn auc(labels: &[f32], scores: &[f64]) -> f64 {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    let n = labels.len();
    let n_pos = labels.iter().filter(|&&y| y == 1.0).count();
    let n_neg = n - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Midranks over tied score groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            if labels[k] == 1.0 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Binary accuracy of probabilities at a 0.5 threshold.
pub fn accuracy_binary(labels: &[f32], probs: &[f64]) -> f64 {
    assert_eq!(labels.len(), probs.len());
    if labels.is_empty() {
        return 0.0;
    }
    let hits = labels
        .iter()
        .zip(probs)
        .filter(|&(&y, &p)| (p >= 0.5) == (y == 1.0))
        .count();
    hits as f64 / labels.len() as f64
}

/// Multi-class accuracy: `scores` is row-major `[instance][class]`.
pub fn accuracy_multiclass(labels: &[f32], scores: &[f64], n_classes: usize) -> f64 {
    assert_eq!(scores.len(), labels.len() * n_classes, "scores shape mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &scores[i * n_classes..(i + 1) * n_classes];
        let mut best = 0usize;
        for (k, &s) in row.iter().enumerate() {
            if s > row[best] {
                best = k;
            }
        }
        if best == y as usize {
            hits += 1;
        }
    }
    hits as f64 / labels.len() as f64
}

/// Root mean squared error.
pub fn rmse(labels: &[f32], preds: &[f64]) -> f64 {
    assert_eq!(labels.len(), preds.len());
    if labels.is_empty() {
        return 0.0;
    }
    let mse: f64 = labels
        .iter()
        .zip(preds)
        .map(|(&y, &p)| (p - f64::from(y)).powi(2))
        .sum::<f64>()
        / labels.len() as f64;
    mse.sqrt()
}

/// Binary cross-entropy of probabilities.
pub fn logloss(labels: &[f32], probs: &[f64]) -> f64 {
    assert_eq!(labels.len(), probs.len());
    if labels.is_empty() {
        return 0.0;
    }
    let total: f64 = labels
        .iter()
        .zip(probs)
        .map(|(&y, &p)| {
            let p = p.clamp(1e-15, 1.0 - 1e-15);
            if y == 1.0 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&labels, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(auc(&labels, &[0.9, 0.8, 0.2, 0.1]), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        let labels = [0.0, 1.0, 0.0, 1.0];
        // All scores equal: midranks give exactly 0.5.
        assert!((auc(&labels, &[0.5; 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_partial_order() {
        let labels = [1.0, 0.0, 1.0, 0.0];
        let scores = [0.9, 0.8, 0.3, 0.4];
        // Pairs: (0.9>0.8)=1, (0.9>0.4)=1, (0.3<0.8)=0, (0.3<0.4)=0 -> 2/4.
        assert!((auc(&labels, &scores) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(auc(&[1.0, 1.0], &[0.1, 0.9]), 0.5);
        assert_eq!(auc(&[0.0, 0.0], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn binary_accuracy_counts_threshold_hits() {
        let labels = [1.0, 0.0, 1.0, 0.0];
        let probs = [0.9, 0.1, 0.4, 0.6];
        assert!((accuracy_binary(&labels, &probs) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy_binary(&[], &[]), 0.0);
    }

    #[test]
    fn multiclass_accuracy_argmax() {
        let labels = [0.0, 2.0, 1.0];
        #[rustfmt::skip]
        let scores = [
            0.7, 0.2, 0.1, // -> 0 (hit)
            0.1, 0.1, 0.8, // -> 2 (hit)
            0.5, 0.3, 0.2, // -> 0 (miss, label 1)
        ];
        assert!((accuracy_multiclass(&labels, &scores, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_and_logloss_basic() {
        assert!((rmse(&[1.0, 3.0], &[2.0, 1.0]) - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[1.0], &[1.0]), 0.0);
        let ll = logloss(&[1.0, 0.0], &[0.9, 0.1]);
        assert!((ll - (-(0.9f64.ln()) - (0.9f64).ln()) / 2.0).abs() < 1e-12);
        // Extreme probs don't produce infinities.
        assert!(logloss(&[1.0], &[0.0]).is_finite());
    }
}
