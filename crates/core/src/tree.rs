//! Decision tree structure with complete-tree node indexing.
//!
//! Trees grow layer by layer to at most L layers (the paper's growth model,
//! §3.1.2). Nodes use complete-binary-tree ids: root is 0, children of `i`
//! are `2i+1` and `2i+2`, layer `l` spans ids `2^l − 1 .. 2^(l+1) − 1`.

use crate::split::NodeStats;
use gbdt_data::{BinId, FeatureId};
use serde::{Deserialize, Serialize};

/// Children ids of node `i`.
#[inline]
pub const fn children(node: u32) -> (u32, u32) {
    (2 * node + 1, 2 * node + 2)
}

/// Parent id of a non-root node.
#[inline]
pub const fn parent(node: u32) -> u32 {
    (node - 1) / 2
}

/// Sibling id of a non-root node.
#[inline]
pub const fn sibling(node: u32) -> u32 {
    if node.is_multiple_of(2) { node - 1 } else { node + 1 }
}

/// Node ids of layer `l` (0-based): `2^l − 1 .. 2^(l+1) − 1`.
#[inline]
pub fn layer_range(layer: usize) -> std::ops::Range<u32> {
    ((1u32 << layer) - 1)..((1u32 << (layer + 1)) - 1)
}

/// Maximum node count of an L-layer tree: `2^L − 1`.
#[inline]
pub const fn max_nodes(n_layers: usize) -> usize {
    (1usize << n_layers) - 1
}

/// What a materialized tree node is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An internal decision node.
    Internal {
        /// Global id of the split feature.
        feature: FeatureId,
        /// Training-time split: instances with bin ≤ `bin` go left.
        bin: BinId,
        /// Inference-time split: instances with value ≤ `threshold` go left.
        threshold: f32,
        /// Side receiving instances with a missing value for `feature`.
        default_left: bool,
        /// Split gain achieved (Eq. 2) — drives gain-based feature
        /// importance.
        gain: f64,
    },
    /// A leaf carrying C output values (already scaled by η).
    Leaf {
        /// Per-class leaf values.
        values: Vec<f64>,
    },
}

/// A materialized tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// The node payload.
    pub kind: NodeKind,
}

/// One decision tree of the ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    n_layers: usize,
    n_outputs: usize,
    nodes: Vec<Option<TreeNode>>,
}

impl Tree {
    /// Creates an empty tree growing to at most `n_layers` layers, with
    /// C = `n_outputs` values per leaf.
    pub fn new(n_layers: usize, n_outputs: usize) -> Self {
        assert!((1..=24).contains(&n_layers), "n_layers out of range");
        Tree { n_layers, n_outputs, nodes: vec![None; max_nodes(n_layers)] }
    }

    /// Number of layers this tree may grow to.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Values per leaf (C).
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// The node at `id`, if materialized.
    pub fn node(&self, id: u32) -> Option<&TreeNode> {
        self.nodes.get(id as usize).and_then(Option::as_ref)
    }

    /// Materializes an internal node.
    pub fn set_internal(
        &mut self,
        id: u32,
        feature: FeatureId,
        bin: BinId,
        threshold: f32,
        default_left: bool,
    ) {
        self.set_internal_with_gain(id, feature, bin, threshold, default_left, 0.0);
    }

    /// Materializes an internal node, recording its split gain.
    pub fn set_internal_with_gain(
        &mut self,
        id: u32,
        feature: FeatureId,
        bin: BinId,
        threshold: f32,
        default_left: bool,
        gain: f64,
    ) {
        assert!(
            (children(id).1 as usize) < self.nodes.len(),
            "internal node {id} would exceed {} layers",
            self.n_layers
        );
        self.nodes[id as usize] = Some(TreeNode {
            kind: NodeKind::Internal { feature, bin, threshold, default_left, gain },
        });
    }

    /// Materializes a leaf from node statistics (Eq. 1), scaling by η.
    pub fn set_leaf_from_stats(&mut self, id: u32, stats: &NodeStats, lambda: f64, eta: f64) {
        let values = stats.leaf_weights(lambda).into_iter().map(|w| w * eta).collect();
        self.set_leaf(id, values);
    }

    /// Materializes a leaf with explicit values.
    pub fn set_leaf(&mut self, id: u32, values: Vec<f64>) {
        assert_eq!(values.len(), self.n_outputs, "leaf arity mismatch");
        self.nodes[id as usize] = Some(TreeNode { kind: NodeKind::Leaf { values } });
    }

    /// Number of materialized nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Some(TreeNode { kind: NodeKind::Leaf { .. } })))
            .count()
    }

    /// Walks the tree with a per-feature value lookup returning `None` for
    /// missing values; yields the reached leaf's values.
    ///
    /// This single traversal backs both inference (lookup by raw value
    /// against thresholds) and training-time placement (lookup by bin).
    pub fn predict_with(&self, mut lookup: impl FnMut(FeatureId) -> LookupResult) -> &[f64] {
        let mut id = 0u32;
        loop {
            match &self.node(id).expect("tree traversal reached a missing node").kind {
                NodeKind::Leaf { values } => return values,
                NodeKind::Internal { feature, bin, threshold, default_left, .. } => {
                    let go_left = match lookup(*feature) {
                        LookupResult::Missing => *default_left,
                        LookupResult::Value(v) => v <= *threshold,
                        LookupResult::Bin(b) => b <= *bin,
                    };
                    let (l, r) = children(id);
                    id = if go_left { l } else { r };
                }
            }
        }
    }

    /// Predicts from a sparse row of (sorted) features and raw values.
    pub fn predict_row(&self, feats: &[FeatureId], vals: &[f32]) -> &[f64] {
        self.predict_with(|f| match feats.binary_search(&f) {
            Ok(k) => LookupResult::Value(vals[k]),
            Err(_) => LookupResult::Missing,
        })
    }

    /// Predicts from a dense row of raw values.
    pub fn predict_dense(&self, row: &[f32]) -> &[f64] {
        self.predict_with(|f| LookupResult::Value(row[f as usize]))
    }

    /// Visits every internal node as `(feature, threshold, gain)`.
    pub fn visit_internal(&self, mut visit: impl FnMut(FeatureId, f32, f64)) {
        for node in self.nodes.iter().flatten() {
            if let NodeKind::Internal { feature, threshold, gain, .. } = &node.kind {
                visit(*feature, *threshold, *gain);
            }
        }
    }

    /// Depth of the deepest materialized node (root-only tree = 1).
    pub fn depth(&self) -> usize {
        let mut deepest = 0usize;
        for (id, node) in self.nodes.iter().enumerate() {
            if node.is_some() {
                deepest = deepest.max((usize::BITS - (id + 1).leading_zeros()) as usize);
            }
        }
        deepest
    }
}

/// Result of a feature lookup during tree traversal.
#[derive(Debug, Clone, Copy)]
pub enum LookupResult {
    /// The instance has no value for the feature.
    Missing,
    /// Raw feature value (inference path).
    Value(f32),
    /// Quantized bin (training-time placement path).
    Bin(BinId),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stump() -> Tree {
        // root: feature 0, threshold 1.5 (bin 0), missing -> right
        // left leaf: +1, right leaf: -1
        let mut t = Tree::new(2, 1);
        t.set_internal(0, 0, 0, 1.5, false);
        t.set_leaf(1, vec![1.0]);
        t.set_leaf(2, vec![-1.0]);
        t
    }

    #[test]
    fn id_arithmetic() {
        assert_eq!(children(0), (1, 2));
        assert_eq!(children(2), (5, 6));
        assert_eq!(parent(5), 2);
        assert_eq!(parent(6), 2);
        assert_eq!(sibling(5), 6);
        assert_eq!(sibling(6), 5);
        assert_eq!(layer_range(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(layer_range(2).collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        assert_eq!(max_nodes(3), 7);
    }

    #[test]
    fn stump_routes_by_threshold() {
        let t = stump();
        assert_eq!(t.predict_row(&[0], &[1.0]), &[1.0]);
        assert_eq!(t.predict_row(&[0], &[1.5]), &[1.0]); // boundary goes left
        assert_eq!(t.predict_row(&[0], &[2.0]), &[-1.0]);
    }

    #[test]
    fn missing_values_use_default_direction() {
        let t = stump();
        // Row lacks feature 0: default is right.
        assert_eq!(t.predict_row(&[3], &[9.0]), &[-1.0]);
        assert_eq!(t.predict_row(&[], &[]), &[-1.0]);
    }

    #[test]
    fn bin_lookup_matches_value_lookup() {
        let t = stump();
        let by_bin = t.predict_with(|_| LookupResult::Bin(0));
        assert_eq!(by_bin, &[1.0]);
        let by_bin = t.predict_with(|_| LookupResult::Bin(1));
        assert_eq!(by_bin, &[-1.0]);
    }

    #[test]
    fn deeper_tree_traversal() {
        let mut t = Tree::new(3, 1);
        t.set_internal(0, 0, 0, 0.0, true);
        t.set_internal(1, 1, 0, 10.0, true);
        t.set_leaf(2, vec![5.0]);
        t.set_leaf(3, vec![1.0]);
        t.set_leaf(4, vec![2.0]);
        assert_eq!(t.predict_row(&[0, 1], &[-1.0, 3.0]), &[1.0]);
        assert_eq!(t.predict_row(&[0, 1], &[-1.0, 30.0]), &[2.0]);
        assert_eq!(t.predict_row(&[0], &[1.0]), &[5.0]);
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.n_leaves(), 3);
    }

    #[test]
    fn set_leaf_from_stats_applies_eta_and_lambda() {
        let mut t = Tree::new(1, 2);
        let stats = NodeStats { grads: vec![2.0, -4.0], hesses: vec![1.0, 3.0] };
        t.set_leaf_from_stats(0, &stats, 1.0, 0.5);
        // w = -g/(h+1) * 0.5 -> [-0.5, 0.5]
        assert_eq!(t.predict_row(&[], &[]), &[-0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn internal_node_cannot_exceed_depth() {
        let mut t = Tree::new(2, 1);
        t.set_internal(1, 0, 0, 0.0, true); // children 3,4 don't fit in 2 layers
    }

    #[test]
    fn depth_and_visitor() {
        let mut t = Tree::new(3, 1);
        t.set_internal_with_gain(0, 5, 0, 0.0, true, 2.5);
        t.set_leaf(1, vec![1.0]);
        t.set_leaf(2, vec![-1.0]);
        assert_eq!(t.depth(), 2);
        let mut seen = Vec::new();
        t.visit_internal(|f, _, g| seen.push((f, g)));
        assert_eq!(seen, vec![(5, 2.5)]);
        let t1 = {
            let mut t = Tree::new(1, 1);
            t.set_leaf(0, vec![0.0]);
            t
        };
        assert_eq!(t1.depth(), 1);
    }

    #[test]
    fn multiclass_leaves() {
        let mut t = Tree::new(1, 3);
        t.set_leaf(0, vec![0.1, 0.2, 0.3]);
        assert_eq!(t.predict_row(&[], &[]), &[0.1, 0.2, 0.3]);
    }
}
