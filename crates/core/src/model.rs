//! The boosted ensemble: prediction, evaluation, and (de)serialization.

use crate::loss::Objective;
use crate::metrics;
use crate::tree::Tree;
use gbdt_data::dataset::{Dataset, FeatureMatrix};
use serde::{Deserialize, Serialize};

/// A trained GBDT model: `ŷᵢ = Σ_t η·f_t(xᵢ)` (leaf values are stored
/// already scaled by η).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtModel {
    /// The training objective (decides the prediction transform).
    pub objective: Objective,
    /// η used during training (informational; already folded into leaves).
    pub learning_rate: f64,
    /// Dimensionality the model was trained on.
    pub n_features: usize,
    /// Constant scores added before any tree.
    pub init_scores: Vec<f64>,
    /// The boosted trees, in training order.
    pub trees: Vec<Tree>,
}

impl GbdtModel {
    /// Creates an empty model (no trees yet).
    pub fn new(objective: Objective, learning_rate: f64, n_features: usize) -> Self {
        GbdtModel {
            objective,
            learning_rate,
            n_features,
            init_scores: objective.init_scores(),
            trees: Vec::new(),
        }
    }

    /// C — raw scores per instance.
    pub fn n_outputs(&self) -> usize {
        self.objective.n_outputs()
    }

    /// Raw scores of one sparse row, summed over trees, into `out` (len C).
    pub fn predict_row_into(&self, feats: &[u32], vals: &[f32], out: &mut [f64]) {
        out.copy_from_slice(&self.init_scores);
        for tree in &self.trees {
            for (o, &v) in out.iter_mut().zip(tree.predict_row(feats, vals)) {
                *o += v;
            }
        }
    }

    /// Raw scores of one sparse row.
    pub fn predict_row(&self, feats: &[u32], vals: &[f32]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_outputs()];
        self.predict_row_into(feats, vals, &mut out);
        out
    }

    /// Transformed prediction (probabilities / regression value) of one row.
    pub fn predict_row_transformed(&self, feats: &[u32], vals: &[f32]) -> Vec<f64> {
        self.objective.transform(&self.predict_row(feats, vals))
    }

    /// Raw scores of every instance, row-major `[instance][class]`.
    pub fn predict_dataset_raw(&self, dataset: &Dataset) -> Vec<f64> {
        let c = self.n_outputs();
        let n = dataset.n_instances();
        let mut scores = vec![0.0; n * c];
        match &dataset.features {
            FeatureMatrix::Sparse(csr) => {
                for (i, feats, vals) in csr.iter_rows() {
                    self.predict_row_into(feats, vals, &mut scores[i * c..(i + 1) * c]);
                }
            }
            FeatureMatrix::Dense(dense) => {
                for i in 0..dense.n_rows() {
                    let row = dense.row(i);
                    let out = &mut scores[i * c..(i + 1) * c];
                    out.copy_from_slice(&self.init_scores);
                    for tree in &self.trees {
                        for (o, &v) in out.iter_mut().zip(tree.predict_dense(row)) {
                            *o += v;
                        }
                    }
                }
            }
        }
        scores
    }

    /// Evaluates the model on a dataset with the task's canonical metrics.
    pub fn evaluate(&self, dataset: &Dataset) -> Evaluation {
        let scores = self.predict_dataset_raw(dataset);
        evaluation_from_scores(&self.objective, &scores, &dataset.labels)
    }

    /// Per-feature importance scores.
    ///
    /// `SplitCount` counts how often each feature is chosen; `TotalGain`
    /// sums the Eq. 2 gains its splits achieved. Both are normalized to sum
    /// to 1 (all-zero when the model has no internal nodes).
    pub fn feature_importance(&self, kind: ImportanceKind) -> Vec<f64> {
        let mut scores = vec![0.0; self.n_features];
        for tree in &self.trees {
            tree.visit_internal(|feature, _, gain| {
                if (feature as usize) < scores.len() {
                    scores[feature as usize] += match kind {
                        ImportanceKind::SplitCount => 1.0,
                        ImportanceKind::TotalGain => gain.max(0.0),
                    };
                }
            });
        }
        let total: f64 = scores.iter().sum();
        if total > 0.0 {
            for s in &mut scores {
                *s /= total;
            }
        }
        scores
    }

    /// Serializes to the compact binary wire format.
    ///
    /// This is the payload a trainer publishes to serving workers
    /// (`gbdt-serve` hot-swap) — all little-endian, fully deterministic:
    /// the same model always encodes to the same bytes, so the pinned
    /// encode fingerprints in `tests/ensemble_pinned.rs` hold across
    /// machines. Layout:
    ///
    /// ```text
    /// magic "GBDT" · u32 format version (1)
    /// u8 objective tag · u32 n_classes (softmax only, else 0)
    /// f64 learning_rate · u32 n_features
    /// u32 init_scores len · f64 × len
    /// u32 n_trees, then per tree:
    ///   u32 n_layers · u32 n_outputs · u32 n_nodes, then per node
    ///   (ascending complete-tree id):
    ///     u32 id · u8 kind (0 = internal, 1 = leaf)
    ///     internal: u32 feature · u16 bin · f32 threshold ·
    ///               u8 default_left · f64 gain
    ///     leaf:     f64 × n_outputs values
    /// ```
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.trees.len() * 256);
        out.extend_from_slice(MODEL_MAGIC);
        out.extend_from_slice(&MODEL_FORMAT_VERSION.to_le_bytes());
        let (obj_tag, n_classes) = match self.objective {
            Objective::SquaredError => (0u8, 0u32),
            Objective::Logistic => (1, 0),
            Objective::Softmax { n_classes } => (2, n_classes as u32),
        };
        out.push(obj_tag);
        out.extend_from_slice(&n_classes.to_le_bytes());
        out.extend_from_slice(&self.learning_rate.to_le_bytes());
        out.extend_from_slice(&(self.n_features as u32).to_le_bytes());
        out.extend_from_slice(&(self.init_scores.len() as u32).to_le_bytes());
        for s in &self.init_scores {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&(self.trees.len() as u32).to_le_bytes());
        for tree in &self.trees {
            out.extend_from_slice(&(tree.n_layers() as u32).to_le_bytes());
            out.extend_from_slice(&(tree.n_outputs() as u32).to_le_bytes());
            out.extend_from_slice(&(tree.n_nodes() as u32).to_le_bytes());
            for id in 0..crate::tree::max_nodes(tree.n_layers()) as u32 {
                let Some(node) = tree.node(id) else { continue };
                out.extend_from_slice(&id.to_le_bytes());
                match &node.kind {
                    crate::tree::NodeKind::Internal {
                        feature,
                        bin,
                        threshold,
                        default_left,
                        gain,
                    } => {
                        out.push(0);
                        out.extend_from_slice(&feature.to_le_bytes());
                        out.extend_from_slice(&bin.to_le_bytes());
                        out.extend_from_slice(&threshold.to_le_bytes());
                        out.push(u8::from(*default_left));
                        out.extend_from_slice(&gain.to_le_bytes());
                    }
                    crate::tree::NodeKind::Leaf { values } => {
                        out.push(1);
                        for v in values {
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
            }
        }
        out
    }

    /// Decodes [`Self::encode_bytes`] output. `decode(encode(m)) == m`
    /// bit-for-bit; malformed or truncated buffers return a description of
    /// the first framing violation instead of panicking.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader { bytes, pos: 0 };
        if r.take(4)? != MODEL_MAGIC {
            return Err("bad magic: not a GBDT model buffer".into());
        }
        let version = r.u32()?;
        if version != MODEL_FORMAT_VERSION {
            return Err(format!("unsupported model format version {version}"));
        }
        let obj_tag = r.u8()?;
        let n_classes = r.u32()? as usize;
        let objective = match obj_tag {
            0 => Objective::SquaredError,
            1 => Objective::Logistic,
            2 => Objective::Softmax { n_classes },
            t => return Err(format!("unknown objective tag {t}")),
        };
        let learning_rate = r.f64()?;
        let n_features = r.u32()? as usize;
        let n_init = r.u32()? as usize;
        let mut init_scores = Vec::with_capacity(n_init.min(1 << 20));
        for _ in 0..n_init {
            init_scores.push(r.f64()?);
        }
        let n_trees = r.u32()? as usize;
        let mut trees = Vec::with_capacity(n_trees.min(1 << 20));
        for t in 0..n_trees {
            let n_layers = r.u32()? as usize;
            let n_outputs = r.u32()? as usize;
            if !(1..=24).contains(&n_layers) {
                return Err(format!("tree {t}: n_layers {n_layers} out of range"));
            }
            let n_nodes = r.u32()? as usize;
            let mut tree = Tree::new(n_layers, n_outputs);
            let max = crate::tree::max_nodes(n_layers) as u32;
            let mut prev: Option<u32> = None;
            for _ in 0..n_nodes {
                let id = r.u32()?;
                if id >= max {
                    return Err(format!("tree {t}: node id {id} exceeds {n_layers} layers"));
                }
                if prev.is_some_and(|p| id <= p) {
                    return Err(format!("tree {t}: node ids not strictly ascending at {id}"));
                }
                prev = Some(id);
                match r.u8()? {
                    0 => {
                        let feature = r.u32()?;
                        let bin = r.u16()?;
                        let threshold = r.f32()?;
                        let default_left = r.u8()? != 0;
                        let gain = r.f64()?;
                        if (crate::tree::children(id).1) >= max {
                            return Err(format!(
                                "tree {t}: internal node {id} has no room for children"
                            ));
                        }
                        tree.set_internal_with_gain(id, feature, bin, threshold, default_left, gain);
                    }
                    1 => {
                        let mut values = Vec::with_capacity(n_outputs);
                        for _ in 0..n_outputs {
                            values.push(r.f64()?);
                        }
                        tree.set_leaf(id, values);
                    }
                    k => return Err(format!("tree {t}: unknown node kind {k}")),
                }
            }
            trees.push(tree);
        }
        if r.pos != bytes.len() {
            return Err(format!("{} trailing bytes after model payload", bytes.len() - r.pos));
        }
        Ok(GbdtModel { objective, learning_rate, n_features, init_scores, trees })
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserializes from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Leading bytes of every [`GbdtModel::encode_bytes`] buffer.
pub const MODEL_MAGIC: &[u8; 4] = b"GBDT";
/// Binary model format version ([`GbdtModel::encode_bytes`]).
pub const MODEL_FORMAT_VERSION: u32 = 1;

/// Bounds-checked little-endian cursor for [`GbdtModel::decode_bytes`].
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated model buffer at byte {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().map_err(|_| "u16".to_string())?))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().map_err(|_| "u32".to_string())?))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().map_err(|_| "f32".to_string())?))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().map_err(|_| "f64".to_string())?))
    }
}

/// How [`GbdtModel::feature_importance`] weighs each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImportanceKind {
    /// Each split counts 1.
    SplitCount,
    /// Each split counts its Eq. 2 gain.
    TotalGain,
}

/// Computes the canonical metrics from raw scores (shared with trainers that
/// keep running scores during boosting, avoiding a re-predict per tree).
pub fn evaluation_from_scores(objective: &Objective, scores: &[f64], labels: &[f32]) -> Evaluation {
    match objective {
        Objective::SquaredError => Evaluation {
            auc: None,
            accuracy: None,
            rmse: Some(metrics::rmse(labels, scores)),
            loss: objective.mean_loss(scores, labels),
        },
        Objective::Logistic => {
            let probs: Vec<f64> = scores.iter().map(|&s| crate::loss::sigmoid(s)).collect();
            Evaluation {
                auc: Some(metrics::auc(labels, scores)),
                accuracy: Some(metrics::accuracy_binary(labels, &probs)),
                rmse: None,
                loss: objective.mean_loss(scores, labels),
            }
        }
        Objective::Softmax { n_classes } => Evaluation {
            auc: None,
            accuracy: Some(metrics::accuracy_multiclass(labels, scores, *n_classes)),
            rmse: None,
            loss: objective.mean_loss(scores, labels),
        },
    }
}

/// Task-appropriate evaluation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// ROC AUC (binary tasks).
    pub auc: Option<f64>,
    /// Accuracy (classification tasks).
    pub accuracy: Option<f64>,
    /// RMSE (regression).
    pub rmse: Option<f64>,
    /// Mean objective loss.
    pub loss: f64,
}

impl Evaluation {
    /// The headline metric the paper plots for this task: AUC for binary,
    /// accuracy for multi-class, RMSE for regression.
    pub fn headline(&self) -> f64 {
        self.auc.or(self.accuracy).or(self.rmse).unwrap_or(self.loss)
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Tree;
    use gbdt_data::sparse::CsrBuilder;

    fn stump(leaf_left: f64, leaf_right: f64) -> Tree {
        let mut t = Tree::new(2, 1);
        t.set_internal(0, 0, 0, 0.5, true);
        t.set_leaf(1, vec![leaf_left]);
        t.set_leaf(2, vec![leaf_right]);
        t
    }

    fn toy_dataset() -> Dataset {
        let mut b = CsrBuilder::new(2);
        b.push_row(&[(0, 0.0)]).unwrap();
        b.push_row(&[(0, 1.0)]).unwrap();
        b.push_row(&[(1, 3.0)]).unwrap(); // feature 0 missing
        Dataset::new(FeatureMatrix::Sparse(b.build()), vec![1.0, 0.0, 1.0], 2, "toy").unwrap()
    }

    #[test]
    fn prediction_sums_trees_and_init() {
        let mut m = GbdtModel::new(Objective::Logistic, 0.1, 2);
        m.trees.push(stump(1.0, -1.0));
        m.trees.push(stump(0.5, -0.5));
        assert_eq!(m.predict_row(&[0], &[0.0]), vec![1.5]);
        assert_eq!(m.predict_row(&[0], &[1.0]), vec![-1.5]);
        // Missing feature 0: default left.
        assert_eq!(m.predict_row(&[1], &[3.0]), vec![1.5]);
    }

    #[test]
    fn dataset_prediction_matches_row_prediction() {
        let mut m = GbdtModel::new(Objective::Logistic, 0.1, 2);
        m.trees.push(stump(2.0, -2.0));
        let ds = toy_dataset();
        let scores = m.predict_dataset_raw(&ds);
        assert_eq!(scores, vec![2.0, -2.0, 2.0]);
    }

    #[test]
    fn evaluate_reports_task_metrics() {
        let mut m = GbdtModel::new(Objective::Logistic, 0.1, 2);
        m.trees.push(stump(2.0, -2.0));
        let eval = m.evaluate(&toy_dataset());
        // Labels (1,0,1); scores (2,-2,2): perfect ranking.
        assert_eq!(eval.auc, Some(1.0));
        assert_eq!(eval.accuracy, Some(1.0));
        assert!(eval.rmse.is_none());
        assert!(eval.loss > 0.0);
        assert_eq!(eval.headline(), 1.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut m = GbdtModel::new(Objective::Softmax { n_classes: 3 }, 0.2, 5);
        let mut t = Tree::new(1, 3);
        t.set_leaf(0, vec![0.1, 0.2, 0.3]);
        m.trees.push(t);
        let json = m.to_json();
        let back = GbdtModel::from_json(&json).unwrap();
        assert_eq!(m, back);
        assert!(GbdtModel::from_json("{bad json").is_err());
    }

    #[test]
    fn feature_importance_normalizes_and_ranks() {
        let mut m = GbdtModel::new(Objective::Logistic, 0.1, 3);
        let mut t = Tree::new(3, 1);
        t.set_internal_with_gain(0, 2, 0, 0.5, true, 10.0);
        t.set_internal_with_gain(1, 0, 0, 0.5, true, 1.0);
        t.set_leaf(2, vec![0.0]);
        t.set_leaf(3, vec![0.0]);
        t.set_leaf(4, vec![0.0]);
        m.trees.push(t);
        let by_count = m.feature_importance(ImportanceKind::SplitCount);
        assert!((by_count.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(by_count, vec![0.5, 0.0, 0.5]);
        let by_gain = m.feature_importance(ImportanceKind::TotalGain);
        assert!(by_gain[2] > by_gain[0]);
        assert!((by_gain.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // No trees: all zero, no NaN.
        let empty = GbdtModel::new(Objective::Logistic, 0.1, 3);
        assert_eq!(empty.feature_importance(ImportanceKind::TotalGain), vec![0.0; 3]);
    }

    #[test]
    fn byte_codec_roundtrip() {
        let mut m = GbdtModel::new(Objective::Softmax { n_classes: 3 }, 0.2, 5);
        let mut t = Tree::new(3, 3);
        t.set_internal_with_gain(0, 4, 7, -1.25, false, 3.5);
        t.set_leaf(1, vec![0.1, 0.2, 0.3]);
        t.set_leaf(2, vec![-0.1, f64::MIN_POSITIVE, 0.0]);
        m.trees.push(t);
        let mut t2 = Tree::new(1, 3);
        t2.set_leaf(0, vec![1.0, 2.0, 3.0]);
        m.trees.push(t2);
        let bytes = m.encode_bytes();
        let back = GbdtModel::decode_bytes(&bytes).unwrap();
        assert_eq!(m, back);
        // Determinism: re-encoding the decoded model is byte-identical.
        assert_eq!(bytes, back.encode_bytes());
    }

    #[test]
    fn byte_codec_rejects_malformed() {
        let mut m = GbdtModel::new(Objective::Logistic, 0.1, 2);
        m.trees.push(stump(1.0, -1.0));
        let bytes = m.encode_bytes();
        // Truncation at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(GbdtModel::decode_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(GbdtModel::decode_bytes(&long).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(GbdtModel::decode_bytes(&bad).is_err());
        // Unknown format version.
        let mut vers = bytes.clone();
        vers[4] = 99;
        assert!(GbdtModel::decode_bytes(&vers).is_err());
        // Unknown objective tag.
        let mut obj = bytes;
        obj[8] = 7;
        assert!(GbdtModel::decode_bytes(&obj).is_err());
    }

    #[test]
    fn dense_prediction_path() {
        let mut m = GbdtModel::new(Objective::SquaredError, 0.1, 2);
        m.trees.push(stump(1.0, 3.0));
        let dense = gbdt_data::DenseMatrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let ds = Dataset::new(FeatureMatrix::Dense(dense), vec![1.0, 3.0], 0, "d").unwrap();
        assert_eq!(m.predict_dataset_raw(&ds), vec![1.0, 3.0]);
        let eval = m.evaluate(&ds);
        assert_eq!(eval.rmse, Some(0.0));
    }
}
