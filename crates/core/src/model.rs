//! The boosted ensemble: prediction, evaluation, and (de)serialization.

use crate::loss::Objective;
use crate::metrics;
use crate::tree::Tree;
use gbdt_data::dataset::{Dataset, FeatureMatrix};
use serde::{Deserialize, Serialize};

/// A trained GBDT model: `ŷᵢ = Σ_t η·f_t(xᵢ)` (leaf values are stored
/// already scaled by η).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtModel {
    /// The training objective (decides the prediction transform).
    pub objective: Objective,
    /// η used during training (informational; already folded into leaves).
    pub learning_rate: f64,
    /// Dimensionality the model was trained on.
    pub n_features: usize,
    /// Constant scores added before any tree.
    pub init_scores: Vec<f64>,
    /// The boosted trees, in training order.
    pub trees: Vec<Tree>,
}

impl GbdtModel {
    /// Creates an empty model (no trees yet).
    pub fn new(objective: Objective, learning_rate: f64, n_features: usize) -> Self {
        GbdtModel {
            objective,
            learning_rate,
            n_features,
            init_scores: objective.init_scores(),
            trees: Vec::new(),
        }
    }

    /// C — raw scores per instance.
    pub fn n_outputs(&self) -> usize {
        self.objective.n_outputs()
    }

    /// Raw scores of one sparse row, summed over trees, into `out` (len C).
    pub fn predict_row_into(&self, feats: &[u32], vals: &[f32], out: &mut [f64]) {
        out.copy_from_slice(&self.init_scores);
        for tree in &self.trees {
            for (o, &v) in out.iter_mut().zip(tree.predict_row(feats, vals)) {
                *o += v;
            }
        }
    }

    /// Raw scores of one sparse row.
    pub fn predict_row(&self, feats: &[u32], vals: &[f32]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_outputs()];
        self.predict_row_into(feats, vals, &mut out);
        out
    }

    /// Transformed prediction (probabilities / regression value) of one row.
    pub fn predict_row_transformed(&self, feats: &[u32], vals: &[f32]) -> Vec<f64> {
        self.objective.transform(&self.predict_row(feats, vals))
    }

    /// Raw scores of every instance, row-major `[instance][class]`.
    pub fn predict_dataset_raw(&self, dataset: &Dataset) -> Vec<f64> {
        let c = self.n_outputs();
        let n = dataset.n_instances();
        let mut scores = vec![0.0; n * c];
        match &dataset.features {
            FeatureMatrix::Sparse(csr) => {
                for (i, feats, vals) in csr.iter_rows() {
                    self.predict_row_into(feats, vals, &mut scores[i * c..(i + 1) * c]);
                }
            }
            FeatureMatrix::Dense(dense) => {
                for i in 0..dense.n_rows() {
                    let row = dense.row(i);
                    let out = &mut scores[i * c..(i + 1) * c];
                    out.copy_from_slice(&self.init_scores);
                    for tree in &self.trees {
                        for (o, &v) in out.iter_mut().zip(tree.predict_dense(row)) {
                            *o += v;
                        }
                    }
                }
            }
        }
        scores
    }

    /// Evaluates the model on a dataset with the task's canonical metrics.
    pub fn evaluate(&self, dataset: &Dataset) -> Evaluation {
        let scores = self.predict_dataset_raw(dataset);
        evaluation_from_scores(&self.objective, &scores, &dataset.labels)
    }

    /// Per-feature importance scores.
    ///
    /// `SplitCount` counts how often each feature is chosen; `TotalGain`
    /// sums the Eq. 2 gains its splits achieved. Both are normalized to sum
    /// to 1 (all-zero when the model has no internal nodes).
    pub fn feature_importance(&self, kind: ImportanceKind) -> Vec<f64> {
        let mut scores = vec![0.0; self.n_features];
        for tree in &self.trees {
            tree.visit_internal(|feature, _, gain| {
                if (feature as usize) < scores.len() {
                    scores[feature as usize] += match kind {
                        ImportanceKind::SplitCount => 1.0,
                        ImportanceKind::TotalGain => gain.max(0.0),
                    };
                }
            });
        }
        let total: f64 = scores.iter().sum();
        if total > 0.0 {
            for s in &mut scores {
                *s /= total;
            }
        }
        scores
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserializes from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// How [`GbdtModel::feature_importance`] weighs each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImportanceKind {
    /// Each split counts 1.
    SplitCount,
    /// Each split counts its Eq. 2 gain.
    TotalGain,
}

/// Computes the canonical metrics from raw scores (shared with trainers that
/// keep running scores during boosting, avoiding a re-predict per tree).
pub fn evaluation_from_scores(objective: &Objective, scores: &[f64], labels: &[f32]) -> Evaluation {
    match objective {
        Objective::SquaredError => Evaluation {
            auc: None,
            accuracy: None,
            rmse: Some(metrics::rmse(labels, scores)),
            loss: objective.mean_loss(scores, labels),
        },
        Objective::Logistic => {
            let probs: Vec<f64> = scores.iter().map(|&s| crate::loss::sigmoid(s)).collect();
            Evaluation {
                auc: Some(metrics::auc(labels, scores)),
                accuracy: Some(metrics::accuracy_binary(labels, &probs)),
                rmse: None,
                loss: objective.mean_loss(scores, labels),
            }
        }
        Objective::Softmax { n_classes } => Evaluation {
            auc: None,
            accuracy: Some(metrics::accuracy_multiclass(labels, scores, *n_classes)),
            rmse: None,
            loss: objective.mean_loss(scores, labels),
        },
    }
}

/// Task-appropriate evaluation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// ROC AUC (binary tasks).
    pub auc: Option<f64>,
    /// Accuracy (classification tasks).
    pub accuracy: Option<f64>,
    /// RMSE (regression).
    pub rmse: Option<f64>,
    /// Mean objective loss.
    pub loss: f64,
}

impl Evaluation {
    /// The headline metric the paper plots for this task: AUC for binary,
    /// accuracy for multi-class, RMSE for regression.
    pub fn headline(&self) -> f64 {
        self.auc.or(self.accuracy).or(self.rmse).unwrap_or(self.loss)
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Tree;
    use gbdt_data::sparse::CsrBuilder;

    fn stump(leaf_left: f64, leaf_right: f64) -> Tree {
        let mut t = Tree::new(2, 1);
        t.set_internal(0, 0, 0, 0.5, true);
        t.set_leaf(1, vec![leaf_left]);
        t.set_leaf(2, vec![leaf_right]);
        t
    }

    fn toy_dataset() -> Dataset {
        let mut b = CsrBuilder::new(2);
        b.push_row(&[(0, 0.0)]).unwrap();
        b.push_row(&[(0, 1.0)]).unwrap();
        b.push_row(&[(1, 3.0)]).unwrap(); // feature 0 missing
        Dataset::new(FeatureMatrix::Sparse(b.build()), vec![1.0, 0.0, 1.0], 2, "toy").unwrap()
    }

    #[test]
    fn prediction_sums_trees_and_init() {
        let mut m = GbdtModel::new(Objective::Logistic, 0.1, 2);
        m.trees.push(stump(1.0, -1.0));
        m.trees.push(stump(0.5, -0.5));
        assert_eq!(m.predict_row(&[0], &[0.0]), vec![1.5]);
        assert_eq!(m.predict_row(&[0], &[1.0]), vec![-1.5]);
        // Missing feature 0: default left.
        assert_eq!(m.predict_row(&[1], &[3.0]), vec![1.5]);
    }

    #[test]
    fn dataset_prediction_matches_row_prediction() {
        let mut m = GbdtModel::new(Objective::Logistic, 0.1, 2);
        m.trees.push(stump(2.0, -2.0));
        let ds = toy_dataset();
        let scores = m.predict_dataset_raw(&ds);
        assert_eq!(scores, vec![2.0, -2.0, 2.0]);
    }

    #[test]
    fn evaluate_reports_task_metrics() {
        let mut m = GbdtModel::new(Objective::Logistic, 0.1, 2);
        m.trees.push(stump(2.0, -2.0));
        let eval = m.evaluate(&toy_dataset());
        // Labels (1,0,1); scores (2,-2,2): perfect ranking.
        assert_eq!(eval.auc, Some(1.0));
        assert_eq!(eval.accuracy, Some(1.0));
        assert!(eval.rmse.is_none());
        assert!(eval.loss > 0.0);
        assert_eq!(eval.headline(), 1.0);
    }

    #[test]
    fn json_roundtrip() {
        let mut m = GbdtModel::new(Objective::Softmax { n_classes: 3 }, 0.2, 5);
        let mut t = Tree::new(1, 3);
        t.set_leaf(0, vec![0.1, 0.2, 0.3]);
        m.trees.push(t);
        let json = m.to_json();
        let back = GbdtModel::from_json(&json).unwrap();
        assert_eq!(m, back);
        assert!(GbdtModel::from_json("{bad json").is_err());
    }

    #[test]
    fn feature_importance_normalizes_and_ranks() {
        let mut m = GbdtModel::new(Objective::Logistic, 0.1, 3);
        let mut t = Tree::new(3, 1);
        t.set_internal_with_gain(0, 2, 0, 0.5, true, 10.0);
        t.set_internal_with_gain(1, 0, 0, 0.5, true, 1.0);
        t.set_leaf(2, vec![0.0]);
        t.set_leaf(3, vec![0.0]);
        t.set_leaf(4, vec![0.0]);
        m.trees.push(t);
        let by_count = m.feature_importance(ImportanceKind::SplitCount);
        assert!((by_count.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(by_count, vec![0.5, 0.0, 0.5]);
        let by_gain = m.feature_importance(ImportanceKind::TotalGain);
        assert!(by_gain[2] > by_gain[0]);
        assert!((by_gain.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // No trees: all zero, no NaN.
        let empty = GbdtModel::new(Objective::Logistic, 0.1, 3);
        assert_eq!(empty.feature_importance(ImportanceKind::TotalGain), vec![0.0; 3]);
    }

    #[test]
    fn dense_prediction_path() {
        let mut m = GbdtModel::new(Objective::SquaredError, 0.1, 2);
        m.trees.push(stump(1.0, 3.0));
        let dense = gbdt_data::DenseMatrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let ds = Dataset::new(FeatureMatrix::Dense(dense), vec![1.0, 3.0], 0, "d").unwrap();
        assert_eq!(m.predict_dataset_raw(&ds), vec![1.0, 3.0]);
        let eval = m.evaluate(&ds);
        assert_eq!(eval.rmse, Some(0.0));
    }
}
