//! Storage-specialized histogram-build kernels.
//!
//! Histogram construction is the dominant computation cost of every
//! quadrant (§3.1.1), and its inner loop shape depends on the binned
//! storage layout. The sparse kernel walks a row's 〈feature, bin〉 pairs —
//! one `u32` feature-id load plus a single pre-sliced slot index per
//! value. The dense kernels scan the packed cell row directly: the feature
//! id **is** the loop position, so the per-feature histogram region
//! advances by a constant stride with no id loads and no per-feature
//! offset multiplies.
//!
//! On top of the scalar dense scan sits the SIMD fast path ([`Kernel`]
//! knob, default on): cells are loaded in fixed-width lane groups (u8×16 /
//! u16×8, see [`simd`]), one vector compare classifies each lane as
//! present (`bin < n_bins`), missing (the all-ones sentinel), or corrupt
//! (loud panic), and present lanes accumulate through unchecked indices
//! whose bounds are proven by that same compare. Lanes are *features*, not
//! instances: lane `j` of a group targets feature region `f + j`, regions
//! are disjoint, and lanes are drained in ascending order, so there are no
//! bin collisions inside a group and the f64 accumulation order is exactly
//! the scalar kernel's. Multiclass rows pre-interleave the instance's
//! `(g, h)` pairs once per row and add them as f64×4 lane groups per
//! present cell. Every kernel therefore visits values in ascending feature
//! order and skips missing cells — exactly the sparse pair order — so a
//! histogram built from any (layout × kernel) combination is
//! **bit-identical**, and all of them slot into
//! [`crate::parallel::build_histogram_chunked`] as chunk fills without
//! touching the PR-1 determinism invariant.

use crate::config::Kernel;
use crate::gradients::GradBuffer;
use crate::histogram::NodeHistogram;
use gbdt_data::dense_binned::{BinPack, DenseBinnedRows, MISSING_U16, MISSING_U8};
use gbdt_data::{BinId, BinnedRows, BinnedStore};

pub mod simd;

/// A packed bin cell: `u8` or `u16` with the all-ones missing sentinel.
pub trait Cell: Copy {
    /// Whether this cell is the missing sentinel.
    fn is_missing(self) -> bool;
    /// The bin index (only meaningful when present).
    fn bin(self) -> usize;
}

impl Cell for u8 {
    #[inline(always)]
    fn is_missing(self) -> bool {
        self == MISSING_U8
    }

    #[inline(always)]
    fn bin(self) -> usize {
        self as usize
    }
}

impl Cell for u16 {
    #[inline(always)]
    fn is_missing(self) -> bool {
        self == MISSING_U16
    }

    #[inline(always)]
    fn bin(self) -> usize {
        self as usize
    }
}

/// [`Cell`] widths that also load as a fixed-width SIMD lane group —
/// 16 cells for `u8`, 8 for `u16`, one 128-bit vector either way.
pub trait CellLanes: Cell {
    /// Cells per lane group.
    const LANES: usize;
    /// The lane-group vector type from [`simd`].
    type Group: Copy;
    /// Loads the first `Self::LANES` cells of `cells` (panics if shorter).
    fn load_group(cells: &[Self]) -> Self::Group;
    /// Bitmask of lanes holding a valid bin: `cell < limit`.
    fn present_mask(group: Self::Group, limit: usize) -> u32;
    /// Bitmask of lanes holding the missing sentinel.
    fn missing_mask(group: Self::Group) -> u32;
    /// Lane `j` widened to a bin index.
    fn group_bin(group: Self::Group, j: usize) -> usize;
}

impl CellLanes for u8 {
    const LANES: usize = simd::U8x16::LANES;
    type Group = simd::U8x16;

    #[inline(always)]
    fn load_group(cells: &[u8]) -> simd::U8x16 {
        simd::U8x16::load(cells)
    }

    #[inline(always)]
    fn present_mask(group: simd::U8x16, limit: usize) -> u32 {
        group.lt_mask(limit.min(MISSING_U8 as usize) as u8)
    }

    #[inline(always)]
    fn missing_mask(group: simd::U8x16) -> u32 {
        group.eq_mask(MISSING_U8)
    }

    #[inline(always)]
    fn group_bin(group: simd::U8x16, j: usize) -> usize {
        group.lane(j)
    }
}

impl CellLanes for u16 {
    const LANES: usize = simd::U16x8::LANES;
    type Group = simd::U16x8;

    #[inline(always)]
    fn load_group(cells: &[u16]) -> simd::U16x8 {
        simd::U16x8::load(cells)
    }

    #[inline(always)]
    fn present_mask(group: simd::U16x8, limit: usize) -> u32 {
        group.lt_mask(limit.min(MISSING_U16 as usize) as u16)
    }

    #[inline(always)]
    fn missing_mask(group: simd::U16x8) -> u32 {
        group.eq_mask(MISSING_U16)
    }

    #[inline(always)]
    fn group_bin(group: simd::U16x8, j: usize) -> usize {
        group.lane(j)
    }
}

/// All-lanes-set mask for one group of `T`.
#[inline(always)]
fn lane_full<T: CellLanes>() -> u32 {
    (1u32 << T::LANES) - 1
}

/// A lane group held a cell that is neither a valid bin nor the missing
/// sentinel — the pack is corrupt (bins are validated at pack time, so
/// this only fires on hand-built or deserialized garbage). Kept out of
/// line so the hot loop carries one predictable branch.
#[cold]
#[inline(never)]
fn corrupt_cell_panic(at: usize, limit: usize) -> ! {
    panic!("corrupt dense pack: non-sentinel cell with bin >= {limit} in lane group at {at}");
}

/// Accumulates one chunk of instances into `hist` from whichever layout
/// `store` holds. This is the chunk-fill body every row-scan trainer hands
/// to [`crate::parallel::build_histogram_chunked`]. `kernel` picks the
/// dense fill implementation (SIMD lane groups vs the scalar reference);
/// both produce bit-identical histograms, and the sparse layout has a
/// single (scalar) kernel.
#[inline]
pub fn fill_rows_chunk(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    store: &BinnedStore,
    grads: &GradBuffer,
    kernel: Kernel,
) {
    match store {
        BinnedStore::Sparse(rows) => fill_sparse_rows(hist, chunk, rows, grads),
        BinnedStore::Dense(dense) => fill_dense_rows(hist, chunk, dense, grads, kernel),
    }
}

/// The sparse row kernel: walk each row's 〈feature, bin〉 pairs.
///
/// The `C = 1` fast path hoists the `(g, h)` loads out of the pair loop
/// and indexes each 2-slot `(g, h)` pair with a single bounds-checked
/// range; multiclass pre-slices the slot once and walks its `(g, h)`
/// interleave with `chunks_exact(2)` — same accumulation order as
/// [`NodeHistogram::add_instance`], fewer per-value bounds checks.
pub fn fill_sparse_rows(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    rows: &BinnedRows,
    grads: &GradBuffer,
) {
    let c = hist.n_outputs();
    let stride = hist.feature_stride();
    let data = hist.as_mut_slice();
    if c == 1 {
        for &i in chunk {
            let (g, h) = grads.pair1(i as usize);
            let (feats, bins) = rows.row(i as usize);
            for (&f, &b) in feats.iter().zip(bins) {
                let pair = &mut data[f as usize * stride + b as usize * 2..][..2];
                pair[0] += g;
                pair[1] += h;
            }
        }
    } else {
        for &i in chunk {
            let (g, h) = grads.instance(i as usize);
            let (feats, bins) = rows.row(i as usize);
            for (&f, &b) in feats.iter().zip(bins) {
                let slot = &mut data[f as usize * stride + b as usize * c * 2..][..c * 2];
                for (pair, (&gv, &hv)) in slot.chunks_exact_mut(2).zip(g.iter().zip(h)) {
                    pair[0] += gv;
                    pair[1] += hv;
                }
            }
        }
    }
}

/// The dense row kernel, dispatching on cell width, class count, and
/// [`Kernel`]. The SIMD arms upgrade the shape checks to hard asserts:
/// the unchecked accumulates in [`simd`] derive their bounds from them.
pub fn fill_dense_rows(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    dense: &DenseBinnedRows,
    grads: &GradBuffer,
    kernel: Kernel,
) {
    match kernel {
        Kernel::Scalar => {
            debug_assert_eq!(hist.n_features(), dense.n_features(), "kernel shape mismatch");
            debug_assert!(dense.n_bins() <= hist.n_bins(), "cells packed for a wider histogram");
            match (dense.pack(), hist.n_outputs()) {
                (BinPack::U8(cells), 1) => dense_rows_c1(hist, chunk, cells, grads),
                (BinPack::U16(cells), 1) => dense_rows_c1(hist, chunk, cells, grads),
                (BinPack::U8(cells), _) => dense_rows_multi(hist, chunk, cells, grads),
                (BinPack::U16(cells), _) => dense_rows_multi(hist, chunk, cells, grads),
            }
        }
        Kernel::Simd => {
            assert_eq!(hist.n_features(), dense.n_features(), "kernel shape mismatch");
            assert!(dense.n_bins() <= hist.n_bins(), "cells packed for a wider histogram");
            let limit = dense.n_bins();
            match (dense.pack(), hist.n_outputs()) {
                (BinPack::U8(cells), 1) => dense_rows_c1_simd(hist, chunk, cells, limit, grads),
                (BinPack::U16(cells), 1) => dense_rows_c1_simd(hist, chunk, cells, limit, grads),
                (BinPack::U8(cells), _) => dense_rows_multi_simd(hist, chunk, cells, limit, grads),
                (BinPack::U16(cells), _) => {
                    dense_rows_multi_simd(hist, chunk, cells, limit, grads)
                }
            }
        }
    }
}

/// Dense scan, `C = 1`: the histogram region of feature `f` is the `f`-th
/// `2·q` window, so the scan zips the cell row against constant-stride
/// windows and adds the interleaved `(g, h)` pair directly.
fn dense_rows_c1<T: Cell>(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    cells: &[T],
    grads: &GradBuffer,
) {
    let d = hist.n_features();
    let stride = hist.feature_stride();
    let data = hist.as_mut_slice();
    for &i in chunk {
        let (g, h) = grads.pair1(i as usize);
        let row = &cells[i as usize * d..i as usize * d + d];
        for (feat_region, &cell) in data.chunks_exact_mut(stride).zip(row) {
            if cell.is_missing() {
                continue;
            }
            let k = cell.bin() * 2;
            feat_region[k] += g;
            feat_region[k + 1] += h;
        }
    }
}

/// Dense scan, multiclass: same constant-stride walk, all `C` pairs per
/// present cell.
fn dense_rows_multi<T: Cell>(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    cells: &[T],
    grads: &GradBuffer,
) {
    let d = hist.n_features();
    let c = hist.n_outputs();
    let stride = hist.feature_stride();
    let data = hist.as_mut_slice();
    for &i in chunk {
        let (g, h) = grads.instance(i as usize);
        let row = &cells[i as usize * d..i as usize * d + d];
        for (feat_region, &cell) in data.chunks_exact_mut(stride).zip(row) {
            if cell.is_missing() {
                continue;
            }
            let slot = &mut feat_region[cell.bin() * c * 2..(cell.bin() + 1) * c * 2];
            for k in 0..c {
                slot[k * 2] += g[k];
                slot[k * 2 + 1] += h[k];
            }
        }
    }
}

/// Dense SIMD scan, `C = 1`: features in lane groups, one vector
/// classification per group, unchecked `(g, h)` accumulates for present
/// lanes in ascending feature order, scalar tail for `D mod LANES`.
///
/// Rows are deliberately processed one at a time: within a row every
/// accumulate targets a *different* feature region, so the stores never
/// collide with in-flight loads. (An earlier draft interleaved two rows
/// for extra ILP; their streams hit the same feature regions a few
/// instructions apart and memory-disambiguation stalls made the fill ~3×
/// slower — do not reintroduce that shape without measuring.) Extracting
/// bins from GPR `u64` words instead of the vector group was also tried
/// and abandoned: derived from the group it de-vectorizes the mask
/// pipeline (~40% slower), and as an independent re-load of the same
/// cells it measured neutral once the stride was monomorphized.
///
/// Bounds for [`simd::add_pair`]: a present lane has `bin < limit`
/// (vector-compared), `limit ≤ hist.n_bins` and `C == 1` give
/// `bin·2 + 1 < stride`, and `f < D` gives
/// `f·stride + bin·2 + 1 < D·stride = data.len()`.
fn dense_rows_c1_simd<T: CellLanes>(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    cells: &[T],
    limit: usize,
    grads: &GradBuffer,
) {
    // Monomorphize the hot shape: stride 40 is `n_bins = 20 × C = 1 × 2`
    // — the default bin budget, the shape every paper experiment and the
    // BENCH grids run. With the stride a compile-time constant the
    // per-lane feature advance folds into constant address displacements
    // (no `base += stride` chain, no per-lane `lea`), worth ~15% on the
    // BENCH_PR4 fill. Every other stride takes the runtime-stride body.
    match hist.feature_stride() {
        40 => c1_simd_body::<T, 40>(hist, chunk, cells, limit, grads),
        _ => c1_simd_body::<T, 0>(hist, chunk, cells, limit, grads),
    }
}

/// Body of [`dense_rows_c1_simd`], stride-monomorphized: `S` is the
/// compile-time feature stride, or 0 to read it from `hist` at runtime.
#[inline(always)]
fn c1_simd_body<T: CellLanes, const S: usize>(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    cells: &[T],
    limit: usize,
    grads: &GradBuffer,
) {
    let d = hist.n_features();
    let stride = if S != 0 { S } else { hist.feature_stride() };
    debug_assert_eq!(stride, hist.feature_stride());
    let full = lane_full::<T>();
    let data = hist.as_mut_slice();
    for &i in chunk {
        let (g, h) = grads.pair1(i as usize);
        let row = &cells[i as usize * d..][..d];
        let mut f = 0;
        while f + T::LANES <= d {
            let group = T::load_group(&row[f..]);
            let present = T::present_mask(group, limit);
            let mut base = f * stride;
            if present == full {
                // Fully present group (the common case on dense data): no
                // per-lane branch, and no missing/corrupt classification —
                // all `LANES` bins just vector-checked in range, so neither
                // sentinel nor garbage can be present.
                for j in 0..T::LANES {
                    simd::add_pair(data, base + T::group_bin(group, j) * 2, g, h);
                    base += stride;
                }
            } else {
                if present | T::missing_mask(group) != full {
                    corrupt_cell_panic(f, limit);
                }
                if present != 0 {
                    for j in 0..T::LANES {
                        if present & (1 << j) != 0 {
                            simd::add_pair(data, base + T::group_bin(group, j) * 2, g, h);
                        }
                        base += stride;
                    }
                }
            }
            f += T::LANES;
        }
        c1_simd_tail(data, &row[f..], f * stride, stride, limit, g, h);
    }
}

/// Scalar tail of the C = 1 SIMD scan: the `D mod LANES` cells past the
/// last full lane group, bounds upgraded to a hard assert per present
/// cell. (An overlapped-group tail — reloading the last `LANES` cells and
/// masking off the already-drained lanes — measured ~60% *slower* than
/// this plain walk on the BENCH_PR4 shape; the extra live vector wrecks
/// the main loop's register allocation. Don't revisit without measuring.)
#[inline(always)]
fn c1_simd_tail<T: Cell>(
    data: &mut [f64],
    tail: &[T],
    mut base: usize,
    stride: usize,
    limit: usize,
    g: f64,
    h: f64,
) {
    for &cell in tail {
        if !cell.is_missing() {
            let b = cell.bin();
            assert!(b < limit, "corrupt dense pack: bin {b} >= {limit}");
            simd::add_pair(data, base + b * 2, g, h);
        }
        base += stride;
    }
}

/// Dense SIMD scan, multiclass: the instance's `(g, h)` pairs are
/// interleaved into a scratch span once per row, then added per present
/// cell as f64×4 lane groups ([`simd::add_span`] — element-wise, so
/// bit-identical to the scalar per-class loop).
fn dense_rows_multi_simd<T: CellLanes>(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    cells: &[T],
    limit: usize,
    grads: &GradBuffer,
) {
    let d = hist.n_features();
    let c = hist.n_outputs();
    let stride = hist.feature_stride();
    let slot = c * 2;
    let full = lane_full::<T>();
    let data = hist.as_mut_slice();
    let mut gh = vec![0.0f64; slot];
    for &i in chunk {
        let (g, h) = grads.instance(i as usize);
        for k in 0..c {
            gh[k * 2] = g[k];
            gh[k * 2 + 1] = h[k];
        }
        let row = &cells[i as usize * d..][..d];
        let mut f = 0;
        while f + T::LANES <= d {
            let group = T::load_group(&row[f..]);
            let present = T::present_mask(group, limit);
            if present | T::missing_mask(group) != full {
                corrupt_cell_panic(f, limit);
            }
            let mut base = f * stride;
            for j in 0..T::LANES {
                if present & (1 << j) != 0 {
                    simd::add_span(data, base + T::group_bin(group, j) * slot, &gh);
                }
                base += stride;
            }
            f += T::LANES;
        }
        let mut base = f * stride;
        for &cell in &row[f..] {
            if !cell.is_missing() {
                let b = cell.bin();
                assert!(b < limit, "corrupt dense pack: bin {b} >= {limit}");
                simd::add_span(data, base + b * slot, &gh);
            }
            base += stride;
        }
    }
}

/// Accumulates every present value of one column into that feature's
/// histogram region (layout `[bin][class][g,h]`), instances ascending —
/// the column-scan kernel the per-feature-parallel builders use. For the
/// dense layout the inner loop is a straight cell scan with no instance-id
/// loads; `C = 1` drops the per-class loop, and the SIMD kernel
/// classifies instances in lane groups. Bin collisions inside a group
/// (adjacent instances hitting the same bin) accumulate serially in lane
/// order — ascending instance order, exactly the scalar kernel's.
pub fn fill_column_slice(
    slice: &mut [f64],
    n_outputs: usize,
    store: &gbdt_data::ColumnStore,
    col: usize,
    grads: &GradBuffer,
    kernel: Kernel,
) {
    use gbdt_data::ColumnStore;
    match (store, n_outputs) {
        (ColumnStore::Dense(d), 1) => {
            let cells_range = col * d.n_rows()..(col + 1) * d.n_rows();
            match (d.pack(), kernel) {
                (BinPack::U8(cells), Kernel::Simd) => {
                    dense_col_c1_simd(slice, &cells[cells_range], d.n_bins(), grads)
                }
                (BinPack::U16(cells), Kernel::Simd) => {
                    dense_col_c1_simd(slice, &cells[cells_range], d.n_bins(), grads)
                }
                (BinPack::U8(cells), Kernel::Scalar) => {
                    dense_col_c1(slice, &cells[cells_range], grads)
                }
                (BinPack::U16(cells), Kernel::Scalar) => {
                    dense_col_c1(slice, &cells[cells_range], grads)
                }
            }
        }
        _ => store.for_each_in_col(col, |i, b| {
            let (g, h) = grads.instance(i as usize);
            crate::histogram::add_instance_to_feature_slice(slice, n_outputs, b, g, h);
        }),
    }
}

fn dense_col_c1<T: Cell>(slice: &mut [f64], cells: &[T], grads: &GradBuffer) {
    for (i, &cell) in cells.iter().enumerate() {
        if cell.is_missing() {
            continue;
        }
        let (g, h) = grads.instance(i);
        let k = cell.bin() * 2;
        slice[k] += g[0];
        slice[k + 1] += h[0];
    }
}

/// Column SIMD scan, `C = 1`: lanes are consecutive *instances* of one
/// feature. Bounds for [`simd::add_pair`]: `bin < limit` per the group
/// classification and the entry assert gives `bin·2 + 1 < limit·2 ≤
/// slice.len()`.
fn dense_col_c1_simd<T: CellLanes>(
    slice: &mut [f64],
    cells: &[T],
    limit: usize,
    grads: &GradBuffer,
) {
    assert!(limit * 2 <= slice.len(), "column slice narrower than the pack's bin range");
    let full = lane_full::<T>();
    let n = cells.len();
    let mut i = 0;
    while i + T::LANES <= n {
        let group = T::load_group(&cells[i..]);
        let present = T::present_mask(group, limit);
        if present | T::missing_mask(group) != full {
            corrupt_cell_panic(i, limit);
        }
        for j in 0..T::LANES {
            if present & (1 << j) != 0 {
                let (g, h) = grads.instance(i + j);
                simd::add_pair(slice, T::group_bin(group, j) * 2, g[0], h[0]);
            }
        }
        i += T::LANES;
    }
    for (j, &cell) in cells[i..].iter().enumerate() {
        if !cell.is_missing() {
            let b = cell.bin();
            assert!(b < limit, "corrupt dense pack: bin {b} >= {limit}");
            let (g, h) = grads.instance(i + j);
            simd::add_pair(slice, b * 2, g[0], h[0]);
        }
    }
}

/// Bin lookup shared by split-placement paths: `None` routes through the
/// learned default direction. O(1) on the dense layout.
#[inline]
pub fn lookup(store: &BinnedStore, row: usize, feature: u32) -> Option<BinId> {
    store.get(row, feature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_data::binned::BinnedRowsBuilder;
    use gbdt_data::dense_binned::BinWidth;
    use gbdt_data::FeatureId;

    /// A deterministic ragged matrix: ~2/3 of cells present.
    fn rows(n: usize, d: usize, q: usize) -> BinnedRows {
        let mut b = BinnedRowsBuilder::new(d);
        for i in 0..n {
            let entries: Vec<(FeatureId, u16)> = (0..d)
                .filter(|j| (i + j) % 3 != 0)
                .map(|j| (j as FeatureId, ((i * 7 + j * 13) % q) as u16))
                .collect();
            b.push_row(&entries).unwrap();
        }
        b.build()
    }

    /// Fully dense rows: every cell present (exercises the no-branch
    /// full-group SIMD path).
    fn full_rows(n: usize, d: usize, q: usize) -> BinnedRows {
        let mut b = BinnedRowsBuilder::new(d);
        for i in 0..n {
            let entries: Vec<(FeatureId, u16)> =
                (0..d).map(|j| (j as FeatureId, ((i * 11 + j * 5) % q) as u16)).collect();
            b.push_row(&entries).unwrap();
        }
        b.build()
    }

    fn grads(n: usize, c: usize) -> GradBuffer {
        let mut g = GradBuffer::new(n, c);
        for i in 0..n {
            for k in 0..c {
                g.set(i, k, (i as f64 + k as f64) * 0.3517, (i as f64 - k as f64) * 0.636);
            }
        }
        g
    }

    #[test]
    fn dense_kernels_match_sparse_bit_for_bit() {
        // d = 37 exercises both whole lane groups (u8×16 ×2, u16×8 ×4)
        // and a non-lane-multiple tail.
        let (n, q) = (257, 6);
        for d in [11usize, 37] {
            for c in [1usize, 3] {
                for build in [rows, full_rows] {
                    let sparse = build(n, d, q);
                    let g = grads(n, c);
                    let chunk: Vec<u32> = (0..n as u32).collect();
                    let mut expect = NodeHistogram::new(d, q, c);
                    fill_sparse_rows(&mut expect, &chunk, &sparse, &g);
                    for width in [BinWidth::U8, BinWidth::U16] {
                        for kernel in Kernel::ALL {
                            let dense = DenseBinnedRows::from_sparse_with_width(&sparse, q, width);
                            let mut got = NodeHistogram::new(d, q, c);
                            fill_dense_rows(&mut got, &chunk, &dense, &g, kernel);
                            assert_eq!(
                                got.as_slice(),
                                expect.as_slice(),
                                "D={d} C={c} {width:?} {kernel:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn store_dispatch_matches_direct_kernels() {
        let (n, d, q) = (64, 7, 5);
        let sparse = rows(n, d, q);
        let g = grads(n, 1);
        let chunk: Vec<u32> = (0..n as u32).collect();
        let mut via_sparse = NodeHistogram::new(d, q, 1);
        fill_rows_chunk(
            &mut via_sparse,
            &chunk,
            &BinnedStore::sparse(sparse.clone()),
            &g,
            Kernel::Simd,
        );
        for kernel in Kernel::ALL {
            let mut via_dense = NodeHistogram::new(d, q, 1);
            fill_rows_chunk(&mut via_dense, &chunk, &BinnedStore::dense(sparse.clone(), q), &g, kernel);
            assert_eq!(via_sparse.as_slice(), via_dense.as_slice(), "{kernel:?}");
        }
    }

    #[test]
    fn column_kernel_matches_row_kernel() {
        let (n, d, q) = (97, 9, 8);
        for c in [1usize, 2] {
            let sparse = rows(n, d, q);
            let g = grads(n, c);
            let chunk: Vec<u32> = (0..n as u32).collect();
            let mut expect = NodeHistogram::new(d, q, c);
            fill_sparse_rows(&mut expect, &chunk, &sparse, &g);
            for store in [
                BinnedStore::sparse(sparse.clone()).to_columns(),
                BinnedStore::dense(sparse.clone(), q).to_columns(),
            ] {
                for kernel in Kernel::ALL {
                    let mut got = NodeHistogram::new(d, q, c);
                    let stride = got.feature_stride();
                    for (j, slice) in got.as_mut_slice().chunks_mut(stride).enumerate() {
                        fill_column_slice(slice, c, &store, j, &g, kernel);
                    }
                    assert_eq!(got.as_slice(), expect.as_slice(), "C={c} {kernel:?}");
                }
            }
        }
    }

    #[test]
    fn simd_handles_wide_histograms_in_narrow_packs() {
        // The pack may be narrower than the histogram (q < hist.n_bins):
        // the SIMD limit comes from the pack, bounds still hold.
        let (n, d, q) = (130, 21, 9);
        let sparse = rows(n, d, q);
        let g = grads(n, 1);
        let chunk: Vec<u32> = (0..n as u32).collect();
        let wide_bins = 16;
        let mut expect = NodeHistogram::new(d, wide_bins, 1);
        fill_sparse_rows(&mut expect, &chunk, &sparse, &g);
        let dense = DenseBinnedRows::from_sparse_with_width(&sparse, q, BinWidth::U8);
        let mut got = NodeHistogram::new(d, wide_bins, 1);
        fill_dense_rows(&mut got, &chunk, &dense, &g, Kernel::Simd);
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn lookup_agrees_across_layouts() {
        let sparse = rows(20, 5, 4);
        let s = BinnedStore::sparse(sparse.clone());
        let d = BinnedStore::dense(sparse, 4);
        for i in 0..20 {
            for j in 0..5u32 {
                assert_eq!(lookup(&s, i, j), lookup(&d, i, j));
            }
        }
    }
}
