//! Storage-specialized histogram-build kernels.
//!
//! Histogram construction is the dominant computation cost of every
//! quadrant (§3.1.1), and its inner loop shape depends on the binned
//! storage layout. The sparse kernel walks a row's 〈feature, bin〉 pairs —
//! one `u32` feature-id load plus the three-level offset multiply per
//! value. The dense kernels scan the packed cell row directly: the feature
//! id **is** the loop position, so the per-feature histogram region
//! advances by a constant stride (`chunks_exact_mut`) with no id loads and
//! no per-feature offset multiplies, and the `C = 1` fast path accumulates
//! the interleaved `(g, h)` pair without the per-class loop that
//! [`NodeHistogram::add_instance`] runs.
//!
//! Each kernel is monomorphized over (cell width × C==1 vs multiclass) via
//! [`Cell`], so the hot loop compiles with the width and class count baked
//! in. All kernels visit values in ascending feature order and skip missing
//! cells — exactly the sparse pair order — so a histogram built from either
//! layout is **bit-identical**, and they slot into
//! [`crate::parallel::build_histogram_chunked`] as chunk fills without
//! touching the PR-1 determinism invariant.

use crate::gradients::GradBuffer;
use crate::histogram::NodeHistogram;
use gbdt_data::dense_binned::{BinPack, DenseBinnedRows, MISSING_U16, MISSING_U8};
use gbdt_data::{BinId, BinnedRows, BinnedStore};

/// A packed bin cell: `u8` or `u16` with the all-ones missing sentinel.
pub trait Cell: Copy {
    /// Whether this cell is the missing sentinel.
    fn is_missing(self) -> bool;
    /// The bin index (only meaningful when present).
    fn bin(self) -> usize;
}

impl Cell for u8 {
    #[inline(always)]
    fn is_missing(self) -> bool {
        self == MISSING_U8
    }

    #[inline(always)]
    fn bin(self) -> usize {
        self as usize
    }
}

impl Cell for u16 {
    #[inline(always)]
    fn is_missing(self) -> bool {
        self == MISSING_U16
    }

    #[inline(always)]
    fn bin(self) -> usize {
        self as usize
    }
}

/// Accumulates one chunk of instances into `hist` from whichever layout
/// `store` holds. This is the chunk-fill body every row-scan trainer hands
/// to [`crate::parallel::build_histogram_chunked`].
#[inline]
pub fn fill_rows_chunk(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    store: &BinnedStore,
    grads: &GradBuffer,
) {
    match store {
        BinnedStore::Sparse(rows) => fill_sparse_rows(hist, chunk, rows, grads),
        BinnedStore::Dense(dense) => fill_dense_rows(hist, chunk, dense, grads),
    }
}

/// The sparse row kernel: walk each row's 〈feature, bin〉 pairs.
pub fn fill_sparse_rows(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    rows: &BinnedRows,
    grads: &GradBuffer,
) {
    for &i in chunk {
        let (g, h) = grads.instance(i as usize);
        let (feats, bins) = rows.row(i as usize);
        for (&f, &b) in feats.iter().zip(bins) {
            hist.add_instance(f, b, g, h);
        }
    }
}

/// The dense row kernel, dispatching on cell width and class count.
pub fn fill_dense_rows(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    dense: &DenseBinnedRows,
    grads: &GradBuffer,
) {
    debug_assert_eq!(hist.n_features(), dense.n_features(), "kernel shape mismatch");
    debug_assert!(dense.n_bins() <= hist.n_bins(), "cells packed for a wider histogram");
    match (dense.pack(), hist.n_outputs()) {
        (BinPack::U8(cells), 1) => dense_rows_c1(hist, chunk, cells, grads),
        (BinPack::U16(cells), 1) => dense_rows_c1(hist, chunk, cells, grads),
        (BinPack::U8(cells), _) => dense_rows_multi(hist, chunk, cells, grads),
        (BinPack::U16(cells), _) => dense_rows_multi(hist, chunk, cells, grads),
    }
}

/// Dense scan, `C = 1`: the histogram region of feature `f` is the `f`-th
/// `2·q` window, so the scan zips the cell row against constant-stride
/// windows and adds the interleaved `(g, h)` pair directly.
fn dense_rows_c1<T: Cell>(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    cells: &[T],
    grads: &GradBuffer,
) {
    let d = hist.n_features();
    let stride = hist.feature_stride();
    let data = hist.as_mut_slice();
    for &i in chunk {
        let (g, h) = grads.instance(i as usize);
        let (g, h) = (g[0], h[0]);
        let row = &cells[i as usize * d..i as usize * d + d];
        for (feat_region, &cell) in data.chunks_exact_mut(stride).zip(row) {
            if cell.is_missing() {
                continue;
            }
            let k = cell.bin() * 2;
            feat_region[k] += g;
            feat_region[k + 1] += h;
        }
    }
}

/// Dense scan, multiclass: same constant-stride walk, all `C` pairs per
/// present cell.
fn dense_rows_multi<T: Cell>(
    hist: &mut NodeHistogram,
    chunk: &[u32],
    cells: &[T],
    grads: &GradBuffer,
) {
    let d = hist.n_features();
    let c = hist.n_outputs();
    let stride = hist.feature_stride();
    let data = hist.as_mut_slice();
    for &i in chunk {
        let (g, h) = grads.instance(i as usize);
        let row = &cells[i as usize * d..i as usize * d + d];
        for (feat_region, &cell) in data.chunks_exact_mut(stride).zip(row) {
            if cell.is_missing() {
                continue;
            }
            let slot = &mut feat_region[cell.bin() * c * 2..(cell.bin() + 1) * c * 2];
            for k in 0..c {
                slot[k * 2] += g[k];
                slot[k * 2 + 1] += h[k];
            }
        }
    }
}

/// Accumulates every present value of one column into that feature's
/// histogram region (layout `[bin][class][g,h]`), instances ascending —
/// the column-scan kernel the per-feature-parallel builders use. For the
/// dense layout the inner loop is a straight cell scan with no instance-id
/// loads; `C = 1` drops the per-class loop.
pub fn fill_column_slice(
    slice: &mut [f64],
    n_outputs: usize,
    store: &gbdt_data::ColumnStore,
    col: usize,
    grads: &GradBuffer,
) {
    use gbdt_data::ColumnStore;
    match (store, n_outputs) {
        (ColumnStore::Dense(d), 1) => match d.pack() {
            BinPack::U8(cells) => dense_col_c1(slice, &cells[col * d.n_rows()..][..d.n_rows()], grads),
            BinPack::U16(cells) => {
                dense_col_c1(slice, &cells[col * d.n_rows()..][..d.n_rows()], grads)
            }
        },
        _ => store.for_each_in_col(col, |i, b| {
            let (g, h) = grads.instance(i as usize);
            crate::histogram::add_instance_to_feature_slice(slice, n_outputs, b, g, h);
        }),
    }
}

fn dense_col_c1<T: Cell>(slice: &mut [f64], cells: &[T], grads: &GradBuffer) {
    for (i, &cell) in cells.iter().enumerate() {
        if cell.is_missing() {
            continue;
        }
        let (g, h) = grads.instance(i);
        let k = cell.bin() * 2;
        slice[k] += g[0];
        slice[k + 1] += h[0];
    }
}

/// Bin lookup shared by split-placement paths: `None` routes through the
/// learned default direction. O(1) on the dense layout.
#[inline]
pub fn lookup(store: &BinnedStore, row: usize, feature: u32) -> Option<BinId> {
    store.get(row, feature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_data::binned::BinnedRowsBuilder;
    use gbdt_data::dense_binned::BinWidth;
    use gbdt_data::FeatureId;

    /// A deterministic ragged matrix: ~2/3 of cells present.
    fn rows(n: usize, d: usize, q: usize) -> BinnedRows {
        let mut b = BinnedRowsBuilder::new(d);
        for i in 0..n {
            let entries: Vec<(FeatureId, u16)> = (0..d)
                .filter(|j| (i + j) % 3 != 0)
                .map(|j| (j as FeatureId, ((i * 7 + j * 13) % q) as u16))
                .collect();
            b.push_row(&entries).unwrap();
        }
        b.build()
    }

    fn grads(n: usize, c: usize) -> GradBuffer {
        let mut g = GradBuffer::new(n, c);
        for i in 0..n {
            for k in 0..c {
                g.set(i, k, (i as f64 + k as f64) * 0.3517, (i as f64 - k as f64) * 0.636);
            }
        }
        g
    }

    #[test]
    fn dense_kernels_match_sparse_bit_for_bit() {
        let (n, d, q) = (257, 11, 6);
        for c in [1usize, 3] {
            let sparse = rows(n, d, q);
            let g = grads(n, c);
            let chunk: Vec<u32> = (0..n as u32).collect();
            let mut expect = NodeHistogram::new(d, q, c);
            fill_sparse_rows(&mut expect, &chunk, &sparse, &g);
            for width in [BinWidth::U8, BinWidth::U16] {
                let dense = DenseBinnedRows::from_sparse_with_width(&sparse, q, width);
                let mut got = NodeHistogram::new(d, q, c);
                fill_dense_rows(&mut got, &chunk, &dense, &g);
                assert_eq!(got.as_slice(), expect.as_slice(), "C={c} {width:?}");
            }
        }
    }

    #[test]
    fn store_dispatch_matches_direct_kernels() {
        let (n, d, q) = (64, 7, 5);
        let sparse = rows(n, d, q);
        let g = grads(n, 1);
        let chunk: Vec<u32> = (0..n as u32).collect();
        let mut via_sparse = NodeHistogram::new(d, q, 1);
        fill_rows_chunk(&mut via_sparse, &chunk, &BinnedStore::sparse(sparse.clone()), &g);
        let mut via_dense = NodeHistogram::new(d, q, 1);
        fill_rows_chunk(&mut via_dense, &chunk, &BinnedStore::dense(sparse, q), &g);
        assert_eq!(via_sparse.as_slice(), via_dense.as_slice());
    }

    #[test]
    fn column_kernel_matches_row_kernel() {
        let (n, d, q) = (97, 9, 8);
        for c in [1usize, 2] {
            let sparse = rows(n, d, q);
            let g = grads(n, c);
            let chunk: Vec<u32> = (0..n as u32).collect();
            let mut expect = NodeHistogram::new(d, q, c);
            fill_sparse_rows(&mut expect, &chunk, &sparse, &g);
            for store in [
                BinnedStore::sparse(sparse.clone()).to_columns(),
                BinnedStore::dense(sparse.clone(), q).to_columns(),
            ] {
                let mut got = NodeHistogram::new(d, q, c);
                let stride = got.feature_stride();
                for (j, slice) in got.as_mut_slice().chunks_mut(stride).enumerate() {
                    fill_column_slice(slice, c, &store, j, &g);
                }
                assert_eq!(got.as_slice(), expect.as_slice(), "C={c}");
            }
        }
    }

    #[test]
    fn lookup_agrees_across_layouts() {
        let sparse = rows(20, 5, 4);
        let s = BinnedStore::sparse(sparse.clone());
        let d = BinnedStore::dense(sparse, 4);
        for i in 0..20 {
            for j in 0..5u32 {
                assert_eq!(lookup(&s, i, j), lookup(&d, i, j));
            }
        }
    }
}
