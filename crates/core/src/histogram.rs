//! Gradient histograms: construction, merge, and subtraction.
//!
//! A node's histogram summarizes, per (feature, bin, class), the summed
//! first- and second-order gradients of the instances on that node
//! (§2.1.2, Figure 3). Its size — the quantity the whole paper's analysis
//! revolves around — is `Sizehist = 2 × D × q × C × 8` bytes (§3.1.1).
//!
//! The layout is one flat `f64` array ordered `[feature][bin][class][g,h]`,
//! so per-feature slices are contiguous for split finding and the whole
//! buffer is contiguous for element-wise aggregation and subtraction.

use crate::gradients::GradPair;
use crate::split::NodeStats;
use gbdt_data::{BinId, FeatureId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// `Sizehist` — histogram bytes for one tree node (paper §3.1.1).
pub const fn histogram_size_bytes(n_features: usize, n_bins: usize, n_outputs: usize) -> usize {
    2 * n_features * n_bins * n_outputs * 8
}

/// Gradient histogram of one tree node over a set of (local) features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeHistogram {
    n_features: usize,
    n_bins: usize,
    n_outputs: usize,
    data: Vec<f64>,
}

impl NodeHistogram {
    /// Allocates a zeroed histogram for `n_features × n_bins × n_outputs`.
    pub fn new(n_features: usize, n_bins: usize, n_outputs: usize) -> Self {
        NodeHistogram {
            n_features,
            n_bins,
            n_outputs,
            data: vec![0.0; n_features * n_bins * n_outputs * 2],
        }
    }

    /// Number of features covered.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Bins per feature (q).
    #[inline]
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Classes per bin (C).
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Resets all bins to zero without reallocating.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    #[inline]
    fn offset(&self, feature: usize, bin: usize, class: usize) -> usize {
        ((feature * self.n_bins + bin) * self.n_outputs + class) * 2
    }

    /// Accumulates one gradient pair into `(feature, bin, class)`.
    #[inline]
    pub fn add(&mut self, feature: FeatureId, bin: BinId, class: usize, grad: f64, hess: f64) {
        let k = self.offset(feature as usize, bin as usize, class);
        self.data[k] += grad;
        self.data[k + 1] += hess;
    }

    /// Accumulates all C gradient pairs of one instance into `(feature, bin)`.
    ///
    /// This is the innermost loop of histogram construction: `grads` and
    /// `hesses` are the instance's per-class gradients.
    #[inline]
    pub fn add_instance(&mut self, feature: FeatureId, bin: BinId, grads: &[f64], hesses: &[f64]) {
        let k = self.offset(feature as usize, bin as usize, 0);
        let slot = &mut self.data[k..k + self.n_outputs * 2];
        for c in 0..self.n_outputs {
            slot[c * 2] += grads[c];
            slot[c * 2 + 1] += hesses[c];
        }
    }

    /// Gradient pair stored at `(feature, bin, class)`.
    #[inline]
    pub fn get(&self, feature: FeatureId, bin: BinId, class: usize) -> GradPair {
        let k = self.offset(feature as usize, bin as usize, class);
        GradPair { grad: self.data[k], hess: self.data[k + 1] }
    }

    /// Element-wise sum with another histogram of identical shape
    /// (the aggregation step of horizontal partitioning, §2.2.1).
    pub fn merge_from(&mut self, other: &NodeHistogram) {
        assert_eq!(self.data.len(), other.data.len(), "histogram shape mismatch");
        // Equal flat length does not imply equal (D, B, C) factorization;
        // merging a transposed shape would silently scramble bins.
        debug_assert!(
            self.n_features == other.n_features
                && self.n_bins == other.n_bins
                && self.n_outputs == other.n_outputs,
            "histogram factor mismatch: ({}, {}, {}) vs ({}, {}, {})",
            self.n_features,
            self.n_bins,
            self.n_outputs,
            other.n_features,
            other.n_bins,
            other.n_outputs
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise subtraction: `self -= other`.
    ///
    /// This is the **histogram subtraction technique** (§2.1.2): the sibling
    /// histogram equals parent minus the built child.
    pub fn subtract_from(&mut self, other: &NodeHistogram) {
        assert_eq!(self.data.len(), other.data.len(), "histogram shape mismatch");
        debug_assert!(
            self.n_features == other.n_features
                && self.n_bins == other.n_bins
                && self.n_outputs == other.n_outputs,
            "histogram factor mismatch: ({}, {}, {}) vs ({}, {}, {})",
            self.n_features,
            self.n_bins,
            self.n_outputs,
            other.n_features,
            other.n_bins,
            other.n_outputs
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Per-class gradient sums over all bins of one feature — the gradient
    /// mass of instances with a *present* value for the feature. The node
    /// total minus this is the "missing" mass routed by the default
    /// direction.
    pub fn feature_totals(&self, feature: FeatureId) -> NodeStats {
        let mut stats = NodeStats::zero(self.n_outputs);
        for bin in 0..self.n_bins {
            let k = self.offset(feature as usize, bin, 0);
            for c in 0..self.n_outputs {
                stats.grads[c] += self.data[k + c * 2];
                stats.hesses[c] += self.data[k + c * 2 + 1];
            }
        }
        stats
    }

    /// Adds the pairs of `(feature, bin)` into `stats`.
    #[inline]
    pub fn accumulate_bin(&self, feature: FeatureId, bin: usize, stats: &mut NodeStats) {
        let k = self.offset(feature as usize, bin, 0);
        for c in 0..self.n_outputs {
            stats.grads[c] += self.data[k + c * 2];
            stats.hesses[c] += self.data[k + c * 2 + 1];
        }
    }

    /// `f64` elements covering one feature (`n_bins × n_outputs × 2`) — the
    /// stride between consecutive features in the flat buffer, used to carve
    /// the buffer into disjoint per-feature regions for parallel fills.
    #[inline]
    pub fn feature_stride(&self) -> usize {
        self.n_bins * self.n_outputs * 2
    }

    /// The raw flat buffer (for wire transfer and reduce-scatter slicing).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Rebuilds a histogram from a flat buffer (inverse of [`Self::as_slice`]).
    pub fn from_flat(
        n_features: usize,
        n_bins: usize,
        n_outputs: usize,
        data: Vec<f64>,
    ) -> Self {
        assert_eq!(data.len(), n_features * n_bins * n_outputs * 2, "flat buffer mismatch");
        NodeHistogram { n_features, n_bins, n_outputs, data }
    }

    /// Heap bytes of this histogram (`Sizehist` for its feature count).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Exact wire encoding: 12-byte header + LE f64 payload.
    ///
    /// The buffer is sized once up front and filled through fixed 8-byte
    /// windows — one bulk pass without per-element growth checks, which
    /// matters because aggregation serializes whole `Sizehist` buffers.
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; 12 + self.data.len() * 8];
        out[0..4].copy_from_slice(&(self.n_features as u32).to_le_bytes());
        out[4..8].copy_from_slice(&(self.n_bins as u32).to_le_bytes());
        out[8..12].copy_from_slice(&(self.n_outputs as u32).to_le_bytes());
        for (dst, v) in out[12..].chunks_exact_mut(8).zip(&self.data) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes [`Self::encode_bytes`] output.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 12 {
            return None;
        }
        let f = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let q = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let c = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        let payload = &bytes[12..];
        let expect = f.checked_mul(q)?.checked_mul(c)?.checked_mul(16)?;
        if payload.len() != expect {
            return None;
        }
        let mut data = Vec::with_capacity(payload.len() / 8);
        data.extend(
            payload.chunks_exact(8).map(|ch| f64::from_le_bytes(ch.try_into().unwrap())),
        );
        Some(NodeHistogram { n_features: f, n_bins: q, n_outputs: c, data })
    }
}

/// Accumulates one instance's per-class gradient pairs into a single
/// feature's region of a histogram buffer (layout `[bin][class][g,h]`), as
/// handed out by feature-parallel fills.
#[inline]
pub fn add_instance_to_feature_slice(
    slice: &mut [f64],
    n_outputs: usize,
    bin: BinId,
    grads: &[f64],
    hesses: &[f64],
) {
    let k = bin as usize * n_outputs * 2;
    let slot = &mut slice[k..k + n_outputs * 2];
    for c in 0..n_outputs {
        slot[c * 2] += grads[c];
        slot[c * 2 + 1] += hesses[c];
    }
}

/// Pool of per-node histograms with subtraction support and exact peak-memory
/// accounting (the quantity Figure 10(e)/(f) reports).
///
/// Parent histograms are retained while their children are outstanding
/// (§3.1.2: "we have to conserve the histograms of the parent nodes"), and
/// buffers are recycled through a free list so steady-state training does not
/// allocate.
#[derive(Debug)]
pub struct HistogramPool {
    n_features: usize,
    n_bins: usize,
    n_outputs: usize,
    live: BTreeMap<u32, NodeHistogram>,
    free: Vec<NodeHistogram>,
    current_bytes: usize,
    peak_bytes: usize,
}

impl HistogramPool {
    /// Creates a pool producing histograms of the given shape.
    pub fn new(n_features: usize, n_bins: usize, n_outputs: usize) -> Self {
        HistogramPool {
            n_features,
            n_bins,
            n_outputs,
            live: BTreeMap::new(),
            free: Vec::new(),
            current_bytes: 0,
            peak_bytes: 0,
        }
    }

    fn hist_bytes(&self) -> usize {
        histogram_size_bytes(self.n_features, self.n_bins, self.n_outputs)
    }

    /// Takes a zeroed histogram for `node`, reusing a free buffer if any.
    pub fn acquire(&mut self, node: u32) -> &mut NodeHistogram {
        assert!(!self.live.contains_key(&node), "node {node} already has a histogram");
        let hist = match self.free.pop() {
            Some(mut h) => {
                h.zero();
                h
            }
            None => NodeHistogram::new(self.n_features, self.n_bins, self.n_outputs),
        };
        self.current_bytes += self.hist_bytes();
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
        self.live.entry(node).or_insert(hist)
    }

    /// Histogram of `node`, if live.
    pub fn get(&self, node: u32) -> Option<&NodeHistogram> {
        self.live.get(&node)
    }

    /// Mutable histogram of `node`, if live.
    pub fn get_mut(&mut self, node: u32) -> Option<&mut NodeHistogram> {
        self.live.get_mut(&node)
    }

    /// Replaces the histogram of `node` (used after aggregation rounds).
    ///
    /// The full shape must match: a histogram with the right feature count
    /// but the wrong bin or class width would silently corrupt every
    /// subtraction and split scan downstream, so it fails loudly here.
    pub fn insert(&mut self, node: u32, hist: NodeHistogram) {
        assert_eq!(hist.n_features, self.n_features, "histogram feature-count mismatch");
        assert_eq!(hist.n_bins, self.n_bins, "histogram bin-count mismatch");
        assert_eq!(hist.n_outputs, self.n_outputs, "histogram class-count mismatch");
        if self.live.insert(node, hist).is_none() {
            self.current_bytes += self.hist_bytes();
            self.peak_bytes = self.peak_bytes.max(self.current_bytes);
        }
    }

    /// Computes the sibling histogram by subtraction: `sibling = parent −
    /// built`, retiring the parent buffer into the sibling's slot.
    pub fn subtract_sibling(&mut self, parent: u32, built: u32, sibling: u32) {
        let mut parent_hist =
            self.live.remove(&parent).expect("parent histogram must be live for subtraction");
        let built_hist = self.live.get(&built).expect("built child histogram must be live");
        parent_hist.subtract_from(built_hist);
        self.live.insert(sibling, parent_hist);
    }

    /// Takes a zeroed scratch histogram from the free list (allocating if
    /// empty) for use as a per-thread partial in parallel builds. Scratch
    /// buffers are transient and do **not** count toward the live/peak
    /// accounting, which tracks only per-node histograms as §3.1.2 defines.
    pub fn take_scratch(&mut self) -> NodeHistogram {
        match self.free.pop() {
            Some(mut h) => {
                h.zero();
                h
            }
            None => NodeHistogram::new(self.n_features, self.n_bins, self.n_outputs),
        }
    }

    /// Returns a scratch histogram to the free list for reuse.
    pub fn return_scratch(&mut self, hist: NodeHistogram) {
        debug_assert_eq!(hist.n_features, self.n_features, "scratch shape mismatch");
        self.free.push(hist);
    }

    /// Releases the histogram of `node` back to the free list.
    pub fn release(&mut self, node: u32) {
        if let Some(h) = self.live.remove(&node) {
            self.current_bytes -= self.hist_bytes();
            self.free.push(h);
        }
    }

    /// Releases every live histogram (end of tree).
    pub fn release_all(&mut self) {
        let nodes: Vec<u32> = self.live.keys().copied().collect();
        for node in nodes {
            self.release(node);
        }
    }

    /// Peak bytes of simultaneously *live* histograms seen so far.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Bytes of currently live histograms.
    pub fn current_bytes(&self) -> usize {
        self.current_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_formula_matches_paper_example() {
        // §3.1.4: D = 330K, q = 20, C = 9 -> ~906 MB per node.
        let bytes = histogram_size_bytes(330_000, 20, 9);
        assert_eq!(bytes, 2 * 330_000 * 20 * 9 * 8);
        assert!((bytes as f64 / (1024.0 * 1024.0) - 906.0).abs() < 1.0);
    }

    #[test]
    fn add_and_get() {
        let mut h = NodeHistogram::new(2, 4, 3);
        h.add(1, 2, 0, 0.5, 1.0);
        h.add(1, 2, 0, 0.25, 0.5);
        h.add(1, 2, 2, -1.0, 2.0);
        assert_eq!(h.get(1, 2, 0), GradPair::new(0.75, 1.5));
        assert_eq!(h.get(1, 2, 2), GradPair::new(-1.0, 2.0));
        assert_eq!(h.get(0, 0, 0), GradPair::default());
    }

    #[test]
    fn add_instance_covers_all_classes() {
        let mut h = NodeHistogram::new(1, 2, 2);
        h.add_instance(0, 1, &[0.125, 0.25], &[1.0, 2.0]);
        h.add_instance(0, 1, &[0.375, 0.5], &[3.0, 4.0]);
        assert_eq!(h.get(0, 1, 0), GradPair::new(0.5, 4.0));
        assert_eq!(h.get(0, 1, 1), GradPair::new(0.75, 6.0));
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let mut a = NodeHistogram::new(1, 2, 1);
        let mut b = NodeHistogram::new(1, 2, 1);
        a.add(0, 0, 0, 1.0, 2.0);
        b.add(0, 0, 0, 10.0, 20.0);
        b.add(0, 1, 0, 5.0, 5.0);
        a.merge_from(&b);
        assert_eq!(a.get(0, 0, 0), GradPair::new(11.0, 22.0));
        assert_eq!(a.get(0, 1, 0), GradPair::new(5.0, 5.0));
    }

    #[test]
    fn subtraction_recovers_sibling() {
        // parent = child1 + child2 exactly (same addition order per bin).
        let mut parent = NodeHistogram::new(2, 3, 1);
        let mut child = NodeHistogram::new(2, 3, 1);
        for (f, b, g, h) in [(0u32, 0u16, 1.0, 0.5), (1, 2, -2.0, 1.5), (0, 1, 3.0, 2.5)] {
            parent.add(f, b, 0, g, h);
        }
        child.add(0, 0, 0, 1.0, 0.5);
        let mut sibling = parent.clone();
        sibling.subtract_from(&child);
        assert_eq!(sibling.get(0, 0, 0), GradPair::default());
        assert_eq!(sibling.get(1, 2, 0), GradPair::new(-2.0, 1.5));
        assert_eq!(sibling.get(0, 1, 0), GradPair::new(3.0, 2.5));
    }

    #[test]
    fn feature_totals_sum_bins() {
        let mut h = NodeHistogram::new(2, 3, 2);
        h.add(1, 0, 0, 1.0, 1.0);
        h.add(1, 2, 0, 2.0, 2.0);
        h.add(1, 2, 1, -1.0, 3.0);
        let t = h.feature_totals(1);
        assert_eq!(t.grads, vec![3.0, -1.0]);
        assert_eq!(t.hesses, vec![3.0, 3.0]);
        let t0 = h.feature_totals(0);
        assert_eq!(t0.grads, vec![0.0, 0.0]);
    }

    #[test]
    fn wire_roundtrip() {
        let mut h = NodeHistogram::new(3, 4, 2);
        h.add(2, 3, 1, 0.123, 4.56);
        let bytes = h.encode_bytes();
        assert_eq!(NodeHistogram::decode_bytes(&bytes).unwrap(), h);
        assert!(NodeHistogram::decode_bytes(&bytes[..10]).is_none());
        assert!(NodeHistogram::decode_bytes(&bytes[..bytes.len() - 8]).is_none());
    }

    #[test]
    fn pool_tracks_peak_memory() {
        let mut pool = HistogramPool::new(4, 8, 1);
        let each = histogram_size_bytes(4, 8, 1);
        pool.acquire(0);
        pool.acquire(1);
        assert_eq!(pool.current_bytes(), 2 * each);
        pool.release(0);
        assert_eq!(pool.current_bytes(), each);
        pool.acquire(2);
        pool.acquire(3);
        assert_eq!(pool.peak_bytes(), 3 * each);
        pool.release_all();
        assert_eq!(pool.current_bytes(), 0);
        assert_eq!(pool.peak_bytes(), 3 * each);
    }

    #[test]
    fn pool_subtract_sibling_moves_parent_buffer() {
        let mut pool = HistogramPool::new(1, 2, 1);
        pool.acquire(0).add(0, 0, 0, 10.0, 10.0);
        pool.get_mut(0).unwrap().add(0, 1, 0, 4.0, 4.0);
        pool.acquire(1).add(0, 0, 0, 3.0, 3.0);
        pool.subtract_sibling(0, 1, 2);
        assert!(pool.get(0).is_none());
        let sib = pool.get(2).unwrap();
        assert_eq!(sib.get(0, 0, 0), GradPair::new(7.0, 7.0));
        assert_eq!(sib.get(0, 1, 0), GradPair::new(4.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "bin-count mismatch")]
    fn pool_insert_rejects_wrong_bin_count() {
        // Same feature count, different q — the old n_features-only check
        // let this through and downstream subtraction corrupted silently.
        let mut pool = HistogramPool::new(2, 8, 1);
        pool.insert(0, NodeHistogram::new(2, 4, 1));
    }

    #[test]
    #[should_panic(expected = "class-count mismatch")]
    fn pool_insert_rejects_wrong_class_count() {
        let mut pool = HistogramPool::new(2, 8, 2);
        pool.insert(0, NodeHistogram::new(2, 8, 1));
    }

    #[test]
    #[should_panic(expected = "already has a histogram")]
    fn pool_rejects_double_acquire() {
        let mut pool = HistogramPool::new(1, 2, 1);
        pool.acquire(0);
        pool.acquire(0);
    }

    #[test]
    fn scratch_buffers_recycle_without_accounting() {
        let mut pool = HistogramPool::new(2, 3, 1);
        let mut s = pool.take_scratch();
        s.add(0, 0, 0, 1.0, 1.0);
        assert_eq!(pool.current_bytes(), 0);
        pool.return_scratch(s);
        // Reuse zeroes the buffer.
        let s2 = pool.take_scratch();
        assert_eq!(s2.get(0, 0, 0), GradPair::default());
        assert_eq!(pool.peak_bytes(), 0);
    }

    #[test]
    fn feature_slice_accumulate_matches_add_instance() {
        let mut direct = NodeHistogram::new(3, 4, 2);
        direct.add_instance(1, 2, &[0.5, -0.25], &[1.0, 2.0]);
        let mut sliced = NodeHistogram::new(3, 4, 2);
        let stride = sliced.feature_stride();
        let slice = &mut sliced.as_mut_slice()[stride..2 * stride];
        add_instance_to_feature_slice(slice, 2, 2, &[0.5, -0.25], &[1.0, 2.0]);
        assert_eq!(direct.as_slice(), sliced.as_slice());
    }

    #[test]
    fn wire_roundtrip_empty_and_multiclass() {
        let empty = NodeHistogram::new(0, 20, 3);
        assert_eq!(NodeHistogram::decode_bytes(&empty.encode_bytes()).unwrap(), empty);
        let mut multi = NodeHistogram::new(2, 3, 5);
        multi.add_instance(1, 0, &[0.1, 0.2, 0.3, 0.4, 0.5], &[1.0; 5]);
        let bytes = multi.encode_bytes();
        assert_eq!(bytes.len(), 12 + 2 * 3 * 5 * 2 * 8);
        assert_eq!(NodeHistogram::decode_bytes(&bytes).unwrap(), multi);
    }
}
