//! Second-order training objectives.
//!
//! GBDT optimizes a second-order Taylor expansion of the loss (§2.1.1), so
//! each objective must provide first- and second-order gradients `gᵢ, hᵢ`
//! per instance (and per class for multi-class softmax, where the gradient
//! is "a vector of partial derivatives on all classes", §3.1.1).

use crate::gradients::GradBuffer;
use serde::{Deserialize, Serialize};

/// Training objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Squared-error regression: `l(y, ŷ) = (y − ŷ)² / 2`.
    SquaredError,
    /// Binary logistic loss on a single raw score.
    Logistic,
    /// Multi-class softmax cross-entropy over `n_classes` raw scores.
    Softmax {
        /// Number of classes C (≥ 2 meaningful, ≥ 3 typical).
        n_classes: usize,
    },
}

impl Objective {
    /// C — number of raw scores per instance (1 except for softmax).
    pub fn n_outputs(&self) -> usize {
        match self {
            Objective::SquaredError | Objective::Logistic => 1,
            Objective::Softmax { n_classes } => *n_classes,
        }
    }

    /// Constant initial raw score(s) before any tree is added.
    pub fn init_scores(&self) -> Vec<f64> {
        vec![0.0; self.n_outputs()]
    }

    /// Fills `out` with the gradient pairs of every instance given the
    /// current raw scores.
    ///
    /// `scores` is row-major `[instance][class]` with `n_outputs()` scores
    /// per instance; `labels` holds the regression target or the class id.
    pub fn compute_gradients(&self, scores: &[f64], labels: &[f32], out: &mut GradBuffer) {
        let c = self.n_outputs();
        let n = labels.len();
        assert_eq!(scores.len(), n * c, "scores shape mismatch");
        assert_eq!(out.n_instances(), n, "gradient buffer shape mismatch");
        assert_eq!(out.n_outputs(), c, "gradient buffer class mismatch");
        match self {
            Objective::SquaredError => {
                for i in 0..n {
                    let g = scores[i] - f64::from(labels[i]);
                    out.set(i, 0, g, 1.0);
                }
            }
            Objective::Logistic => {
                for i in 0..n {
                    let p = sigmoid(scores[i]);
                    let g = p - f64::from(labels[i]);
                    let h = (p * (1.0 - p)).max(1e-16);
                    out.set(i, 0, g, h);
                }
            }
            Objective::Softmax { n_classes } => {
                let mut probs = vec![0f64; *n_classes];
                for i in 0..n {
                    softmax_into(&scores[i * c..(i + 1) * c], &mut probs);
                    let label = labels[i] as usize;
                    for (k, &p) in probs.iter().enumerate() {
                        let y = if k == label { 1.0 } else { 0.0 };
                        let h = (2.0 * p * (1.0 - p)).max(1e-16);
                        out.set(i, k, p - y, h);
                    }
                }
            }
        }
    }

    /// Transforms raw scores into predictions (probabilities for
    /// classification, identity for regression). `scores` is one instance's
    /// `n_outputs()` raw scores.
    pub fn transform(&self, scores: &[f64]) -> Vec<f64> {
        match self {
            Objective::SquaredError => scores.to_vec(),
            Objective::Logistic => vec![sigmoid(scores[0])],
            Objective::Softmax { n_classes } => {
                let mut probs = vec![0f64; *n_classes];
                softmax_into(scores, &mut probs);
                probs
            }
        }
    }

    /// Mean loss of raw scores against labels (for convergence reporting).
    pub fn mean_loss(&self, scores: &[f64], labels: &[f32]) -> f64 {
        let c = self.n_outputs();
        let n = labels.len();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        match self {
            Objective::SquaredError => {
                for i in 0..n {
                    let d = scores[i] - f64::from(labels[i]);
                    total += 0.5 * d * d;
                }
            }
            Objective::Logistic => {
                for i in 0..n {
                    let p = sigmoid(scores[i]).clamp(1e-15, 1.0 - 1e-15);
                    let y = f64::from(labels[i]);
                    total -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
                }
            }
            Objective::Softmax { n_classes } => {
                let mut probs = vec![0f64; *n_classes];
                for i in 0..n {
                    softmax_into(&scores[i * c..(i + 1) * c], &mut probs);
                    let p = probs[labels[i] as usize].clamp(1e-15, 1.0);
                    total -= p.ln();
                }
            }
        }
        total / n as f64
    }
}

/// Numerically stable logistic function.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softmax into a preallocated buffer.
#[inline]
pub fn softmax_into(scores: &[f64], out: &mut [f64]) {
    debug_assert_eq!(scores.len(), out.len());
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for (o, &s) in out.iter_mut().zip(scores) {
        *o = (s - max).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0); // no underflow panic
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut out = [0.0; 3];
        softmax_into(&[1.0, 2.0, 3.0], &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out[2] > out[1] && out[1] > out[0]);
        // Large values do not overflow.
        softmax_into(&[1000.0, 999.0, 0.0], &mut out);
        assert!(out[0] > out[1] && out.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn squared_error_gradients() {
        let obj = Objective::SquaredError;
        let mut buf = GradBuffer::new(2, 1);
        obj.compute_gradients(&[3.0, -1.0], &[1.0, 2.0], &mut buf);
        assert_eq!(buf.get(0, 0).grad, 2.0);
        assert_eq!(buf.get(0, 0).hess, 1.0);
        assert_eq!(buf.get(1, 0).grad, -3.0);
    }

    #[test]
    fn logistic_gradients_point_toward_label() {
        let obj = Objective::Logistic;
        let mut buf = GradBuffer::new(2, 1);
        obj.compute_gradients(&[0.0, 0.0], &[1.0, 0.0], &mut buf);
        // Positive label: gradient negative (score should rise).
        assert!(buf.get(0, 0).grad < 0.0);
        assert!(buf.get(1, 0).grad > 0.0);
        assert!((buf.get(0, 0).hess - 0.25).abs() < 1e-12);
    }

    #[test]
    fn softmax_gradients_sum_to_zero_per_instance() {
        let obj = Objective::Softmax { n_classes: 3 };
        let mut buf = GradBuffer::new(1, 3);
        obj.compute_gradients(&[0.5, -0.5, 1.0], &[2.0], &mut buf);
        let sum: f64 = (0..3).map(|k| buf.get(0, k).grad).sum();
        assert!(sum.abs() < 1e-12);
        // Gradient of the true class is negative.
        assert!(buf.get(0, 2).grad < 0.0);
        assert!(buf.get(0, 0).grad > 0.0);
    }

    #[test]
    fn mean_loss_decreases_with_better_scores() {
        let obj = Objective::Logistic;
        let labels = [1.0f32, 0.0];
        let bad = obj.mean_loss(&[-2.0, 2.0], &labels);
        let good = obj.mean_loss(&[2.0, -2.0], &labels);
        assert!(good < bad);

        let obj = Objective::Softmax { n_classes: 2 };
        let bad = obj.mean_loss(&[0.0, 3.0, 3.0, 0.0], &[0.0, 1.0]);
        let good = obj.mean_loss(&[3.0, 0.0, 0.0, 3.0], &[0.0, 1.0]);
        assert!(good < bad);
    }

    #[test]
    fn transform_produces_probabilities() {
        assert_eq!(Objective::SquaredError.transform(&[4.2]), vec![4.2]);
        let p = Objective::Logistic.transform(&[0.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        let p = Objective::Softmax { n_classes: 2 }.transform(&[0.0, 0.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }
}
