//! Fixed-width SIMD lane primitives for the histogram fill kernels.
//!
//! Zero-dependency, portable lane structs in the style of the `wide`
//! crate: each type wraps a fixed-size array and exposes exactly the
//! element-wise operations the kernels need, written as straight-line
//! per-lane loops that LLVM lowers to vector instructions on every tier
//! of x86-64 (SSE2 `pcmpeqb`/`pmovmskb` for the cell masks, `addpd` for
//! the f64 accumulates) without any target-feature gates or intrinsics.
//!
//! This module is the **only** place in the workspace allowed to contain
//! `unsafe` — gbdt-lint's `unsafe-outside-simd` rule denies the keyword
//! everywhere else. The unsafe surface is two accumulate helpers
//! ([`add_pair`] and the tail of [`add_span`]) whose bounds preconditions
//! are documented below, asserted in debug builds, and established by the
//! callers in [`crate::kernels`] through a per-lane-group range check
//! (every present cell's bin is vector-compared against the pack's bin
//! count before any unchecked index is formed).
//!
//! Determinism: nothing here reorders floating-point accumulation. The
//! masks only *classify* lanes; the kernels still visit lanes in ascending
//! order and issue one scalar-equivalent `+=` per (slot, instance), so a
//! SIMD fill is bit-identical to the scalar and sparse fills.

/// 16 packed `u8` cells — one 128-bit lane group.
#[derive(Debug, Copy, Clone)]
pub struct U8x16([u8; 16]);

/// 8 packed `u16` cells — one 128-bit lane group.
#[derive(Debug, Copy, Clone)]
pub struct U16x8([u16; 8]);

impl U8x16 {
    /// Lanes per group.
    pub const LANES: usize = 16;

    /// Loads the first 16 cells of `s` (panics when shorter).
    #[inline(always)]
    pub fn load(s: &[u8]) -> U8x16 {
        U8x16(s[..16].try_into().expect("u8 lane group needs 16 cells"))
    }

    /// Bitmask with bit `j` set when lane `j` is strictly below `limit`
    /// (compiles to `pcmpgtb` + `pmovmskb`).
    #[inline(always)]
    pub fn lt_mask(self, limit: u8) -> u32 {
        let mut m = 0u32;
        for j in 0..Self::LANES {
            m |= u32::from(self.0[j] < limit) << j;
        }
        m
    }

    /// Bitmask with bit `j` set when lane `j` equals `v` (the missing
    /// sentinel, in kernel use).
    #[inline(always)]
    pub fn eq_mask(self, v: u8) -> u32 {
        let mut m = 0u32;
        for j in 0..Self::LANES {
            m |= u32::from(self.0[j] == v) << j;
        }
        m
    }

    /// Lane `j` widened to a bin index.
    #[inline(always)]
    pub fn lane(self, j: usize) -> usize {
        self.0[j] as usize
    }
}

impl U16x8 {
    /// Lanes per group.
    pub const LANES: usize = 8;

    /// Loads the first 8 cells of `s` (panics when shorter).
    #[inline(always)]
    pub fn load(s: &[u16]) -> U16x8 {
        U16x8(s[..8].try_into().expect("u16 lane group needs 8 cells"))
    }

    /// Bitmask with bit `j` set when lane `j` is strictly below `limit`.
    #[inline(always)]
    pub fn lt_mask(self, limit: u16) -> u32 {
        let mut m = 0u32;
        for j in 0..Self::LANES {
            m |= u32::from(self.0[j] < limit) << j;
        }
        m
    }

    /// Bitmask with bit `j` set when lane `j` equals `v`.
    #[inline(always)]
    pub fn eq_mask(self, v: u16) -> u32 {
        let mut m = 0u32;
        for j in 0..Self::LANES {
            m |= u32::from(self.0[j] == v) << j;
        }
        m
    }

    /// Lane `j` widened to a bin index.
    #[inline(always)]
    pub fn lane(self, j: usize) -> usize {
        self.0[j] as usize
    }
}

/// 4 `f64` accumulator lanes (one 256-bit `addpd` group).
#[derive(Debug, Copy, Clone)]
pub struct F64x4([f64; 4]);

impl F64x4 {
    /// Loads the first 4 elements of `s` (panics when shorter).
    #[inline(always)]
    pub fn load(s: &[f64]) -> F64x4 {
        F64x4(s[..4].try_into().expect("f64 lane group needs 4 elements"))
    }

    /// Stores into the first 4 elements of `s`.
    #[inline(always)]
    pub fn store(self, s: &mut [f64]) {
        s[..4].copy_from_slice(&self.0);
    }
}

/// Lane-wise IEEE addition — identical bits to four scalar `+`s.
impl std::ops::Add for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn add(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }
}

/// Adds `(g, h)` into `data[idx]` / `data[idx + 1]` with no bounds checks —
/// the innermost accumulate of the SIMD dense fills, one per present cell.
///
/// # Bounds precondition (debug-asserted)
///
/// `idx + 1 < data.len()`. The kernels in [`crate::kernels`] establish it
/// as `idx = f·stride + bin·2` with `f < n_features`, `bin < n_bins` (the
/// per-lane-group `lt_mask` range check), and
/// `data.len() = n_features·stride`, `bin·2 + 1 < stride`; any cell that
/// cannot prove `bin < n_bins` panics in the kernel before reaching here.
#[inline(always)]
pub fn add_pair(data: &mut [f64], idx: usize, g: f64, h: f64) {
    debug_assert!(idx + 1 < data.len(), "add_pair out of bounds: {idx}+1 vs {}", data.len());
    // SAFETY: `idx + 1 < data.len()` per the documented precondition above,
    // which every caller derives from the lane-group range check. The pair
    // is read, added, and written as one 128-bit `[f64; 2]` so the cell
    // costs one load + one `addpd` + one store instead of 2 + 2 + 2;
    // lane-wise IEEE addition keeps the bits identical to two scalar `+=`s.
    unsafe {
        let p = data.as_mut_ptr().add(idx).cast::<[f64; 2]>();
        let v = p.read_unaligned();
        p.write_unaligned([v[0] + g, v[1] + h]);
    }
}

/// `data[idx..idx + gh.len()] += gh`, element-wise, in f64×4 lane groups —
/// the multiclass accumulate: `gh` is one instance's interleaved
/// `[g0, h0, g1, h1, …]` pairs and the destination is one `(feature, bin)`
/// slot. Element-wise lane addition makes this bit-identical to the scalar
/// per-class loop.
///
/// The destination subslice is formed with a single checked range (one
/// branch per present cell instead of `2·C`); the lane loop itself is
/// safe code.
#[inline(always)]
pub fn add_span(data: &mut [f64], idx: usize, gh: &[f64]) {
    let dst = &mut data[idx..idx + gh.len()];
    let mut chunks = dst.chunks_exact_mut(4);
    let mut src = gh.chunks_exact(4);
    for (d, s) in (&mut chunks).zip(&mut src) {
        (F64x4::load(d) + F64x4::load(s)).store(d);
    }
    for (d, s) in chunks.into_remainder().iter_mut().zip(src.remainder()) {
        *d += *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_masks_classify_lanes() {
        let mut cells = [0u8; 16];
        cells[3] = 255; // sentinel
        cells[7] = 19; // last valid bin for limit 20
        cells[11] = 20; // out of range for limit 20
        let v = U8x16::load(&cells);
        let present = v.lt_mask(20);
        let missing = v.eq_mask(255);
        assert_eq!(missing, 1 << 3);
        assert_eq!(present & (1 << 3), 0);
        assert_eq!(present & (1 << 7), 1 << 7);
        assert_eq!(present & (1 << 11), 0);
        // Lane 11 is neither present nor missing: the kernels treat that
        // as a corrupt pack and panic.
        assert_eq!((present | missing) & (1 << 11), 0);
        assert_eq!(v.lane(7), 19);
    }

    #[test]
    fn u16_masks_classify_lanes() {
        let mut cells = [5u16; 8];
        cells[0] = u16::MAX;
        cells[6] = 300;
        let v = U16x8::load(&cells);
        assert_eq!(v.eq_mask(u16::MAX), 1);
        assert_eq!(v.lt_mask(301) & (1 << 6), 1 << 6);
        assert_eq!(v.lt_mask(300) & (1 << 6), 0);
        assert_eq!(v.lane(6), 300);
    }

    #[test]
    fn add_pair_accumulates() {
        let mut data = vec![0.0; 6];
        add_pair(&mut data, 2, 0.5, 1.5);
        add_pair(&mut data, 2, 0.25, 0.5);
        assert_eq!(&data[2..4], &[0.75, 2.0]);
    }

    #[test]
    fn add_span_matches_scalar_loop_bitwise() {
        for c in [1usize, 2, 3, 5, 8] {
            let gh: Vec<f64> = (0..2 * c).map(|k| (k as f64) * 0.371 - 0.9).collect();
            let mut simd = vec![0.1234567891011; 2 * c + 3];
            let mut scalar = simd.clone();
            add_span(&mut simd, 3, &gh);
            for (k, &v) in gh.iter().enumerate() {
                scalar[3 + k] += v;
            }
            assert_eq!(simd, scalar, "C = {c}");
        }
    }

    #[test]
    #[should_panic]
    fn add_span_rejects_out_of_range() {
        let mut data = vec![0.0; 4];
        add_span(&mut data, 2, &[1.0, 2.0, 3.0]);
    }
}
