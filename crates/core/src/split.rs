//! Split gain, leaf weights, and best-split search over histograms.
//!
//! Implements Equations 1 and 2 of the paper: the optimal leaf weight
//! `w* = −G / (H + λ)` and the split gain
//! `Gain = ½ [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`,
//! generalized to C-dimensional gradients for multi-class (per-class terms
//! are summed). Instances whose value for the split feature is missing are
//! routed through a learned **default direction**, chosen as whichever side
//! yields the higher gain.

use crate::histogram::NodeHistogram;
use gbdt_data::{BinId, FeatureId};
use serde::{Deserialize, Serialize};

/// Regularization parameters of the gain computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitParams {
    /// λ — L2 regularization on leaf weights.
    pub lambda: f64,
    /// γ — per-leaf complexity penalty.
    pub gamma: f64,
    /// Minimum total hessian on each child.
    pub min_child_weight: f64,
}

impl Default for SplitParams {
    fn default() -> Self {
        SplitParams { lambda: 1.0, gamma: 0.0, min_child_weight: 1e-3 }
    }
}

impl SplitParams {
    /// Extracts the split parameters from a training config.
    pub fn from_config(cfg: &crate::config::TrainConfig) -> Self {
        SplitParams {
            lambda: cfg.lambda,
            gamma: cfg.gamma,
            min_child_weight: cfg.min_child_weight,
        }
    }
}

/// Per-class gradient sums of a tree node (or one side of a split).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Per-class first-order sums G.
    pub grads: Vec<f64>,
    /// Per-class second-order sums H.
    pub hesses: Vec<f64>,
}

impl NodeStats {
    /// Zeroed stats for C classes.
    pub fn zero(n_outputs: usize) -> Self {
        NodeStats { grads: vec![0.0; n_outputs], hesses: vec![0.0; n_outputs] }
    }

    /// Number of classes C.
    pub fn n_outputs(&self) -> usize {
        self.grads.len()
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &NodeStats) {
        for (a, b) in self.grads.iter_mut().zip(&other.grads) {
            *a += b;
        }
        for (a, b) in self.hesses.iter_mut().zip(&other.hesses) {
            *a += b;
        }
    }

    /// Element-wise difference (`self − other`), e.g. missing = node − present.
    pub fn sub(&self, other: &NodeStats) -> NodeStats {
        NodeStats {
            grads: self.grads.iter().zip(&other.grads).map(|(a, b)| a - b).collect(),
            hesses: self.hesses.iter().zip(&other.hesses).map(|(a, b)| a - b).collect(),
        }
    }

    /// Total hessian across classes (used for `min_child_weight`).
    pub fn total_hess(&self) -> f64 {
        self.hesses.iter().sum()
    }

    /// The structure score `Σ_c G_c² / (H_c + λ)` (twice the negated loss
    /// contribution of Eq. 1).
    pub fn score(&self, lambda: f64) -> f64 {
        self.grads
            .iter()
            .zip(&self.hesses)
            .map(|(&g, &h)| g * g / (h + lambda))
            .sum()
    }

    /// Optimal leaf weights `w*_c = −G_c / (H_c + λ)` (Eq. 1).
    pub fn leaf_weights(&self, lambda: f64) -> Vec<f64> {
        self.grads
            .iter()
            .zip(&self.hesses)
            .map(|(&g, &h)| -g / (h + lambda))
            .collect()
    }

    /// Exact wire encoding (LE f64s after a class-count header).
    pub fn encode_bytes(&self) -> Vec<u8> {
        let c = self.grads.len();
        let mut out = Vec::with_capacity(4 + c * 16);
        out.extend_from_slice(&(c as u32).to_le_bytes());
        for v in self.grads.iter().chain(&self.hesses) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes [`Self::encode_bytes`] output.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let c = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let payload = &bytes[4..];
        if payload.len() != c * 16 {
            return None;
        }
        let vals: Vec<f64> = payload
            .chunks_exact(8)
            .map(|ch| f64::from_le_bytes(ch.try_into().unwrap()))
            .collect();
        Some(NodeStats { grads: vals[..c].to_vec(), hesses: vals[c..].to_vec() })
    }
}

/// A candidate split of one tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Split feature. Trainers working on vertical shards initially set the
    /// group-local id and translate to the global id before exchanging
    /// local bests (§4.2.2: "the master needs to recover the original
    /// feature afterwards").
    pub feature: FeatureId,
    /// Instances with bin ≤ this value go left.
    pub bin: BinId,
    /// Where instances missing the feature go.
    pub default_left: bool,
    /// Split gain (Eq. 2).
    pub gain: f64,
    /// Gradient sums of the left child (missing side included).
    pub left: NodeStats,
    /// Gradient sums of the right child (missing side included).
    pub right: NodeStats,
}

impl Split {
    /// Tolerance below which two gains are considered tied. Quadrants sum
    /// the same per-instance gradients in different orders (horizontal
    /// trainers reduce per-worker partials, vertical trainers sum whole
    /// columns), so mathematically equal gains — e.g. two correlated
    /// features inducing the identical partition — can differ by a few ulps
    /// (observed ≲1e-13 relative). Treating near-equal gains as ties and
    /// resolving them by the (feature, bin, default) key keeps every
    /// trainer's choice identical despite that rounding noise; genuinely
    /// distinct candidates differ by far more than this.
    const GAIN_TIE_REL: f64 = 1e-9;
    const GAIN_TIE_ABS: f64 = 1e-12;

    fn gain_ties(&self, other: &Split) -> bool {
        let tol = Self::GAIN_TIE_ABS + Self::GAIN_TIE_REL * self.gain.abs().max(other.gain.abs());
        (self.gain - other.gain).abs() <= tol
    }

    /// Deterministic preference order: larger gain wins; (near-)ties break
    /// toward the smaller feature id, then the smaller bin, then default
    /// left. Every trainer uses this single comparison, which is what makes
    /// all quadrants grow identical trees on equivalent histograms.
    pub fn better_than(&self, other: &Split) -> bool {
        if !self.gain_ties(other) {
            return self.gain > other.gain;
        }
        if self.feature != other.feature {
            return self.feature < other.feature;
        }
        if self.bin != other.bin {
            return self.bin < other.bin;
        }
        self.default_left && !other.default_left
    }

    /// Exact wire encoding for best-split exchange.
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(15 + 2 * (4 + self.left.grads.len() * 16));
        out.extend_from_slice(&self.feature.to_le_bytes());
        out.extend_from_slice(&self.bin.to_le_bytes());
        out.push(u8::from(self.default_left));
        out.extend_from_slice(&self.gain.to_le_bytes());
        let left = self.left.encode_bytes();
        let right = self.right.encode_bytes();
        out.extend_from_slice(&(left.len() as u32).to_le_bytes());
        out.extend_from_slice(&left);
        out.extend_from_slice(&right);
        out
    }

    /// Decodes [`Self::encode_bytes`] output.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 19 {
            return None;
        }
        let feature = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let bin = u16::from_le_bytes(bytes[4..6].try_into().ok()?);
        let default_left = bytes[6] != 0;
        let gain = f64::from_le_bytes(bytes[7..15].try_into().ok()?);
        let left_len = u32::from_le_bytes(bytes[15..19].try_into().ok()?) as usize;
        let left = NodeStats::decode_bytes(bytes.get(19..19 + left_len)?)?;
        let right = NodeStats::decode_bytes(bytes.get(19 + left_len..)?)?;
        Some(Split { feature, bin, default_left, gain, left, right })
    }
}

/// Finds the best split of one feature from its histogram slice.
///
/// `node` holds the full gradient sums of the node (including instances with
/// missing values for this feature); the missing mass is `node −
/// feature_totals` and is tried on both sides.
pub fn best_split_for_feature(
    hist: &NodeHistogram,
    feature: FeatureId,
    n_bins: usize,
    node: &NodeStats,
    params: &SplitParams,
) -> Option<Split> {
    if n_bins < 2 {
        return None;
    }
    let c = node.n_outputs();
    let present = hist.feature_totals(feature);
    let missing = node.sub(&present);
    let node_score = node.score(params.lambda);

    let mut left_present = NodeStats::zero(c);
    let mut best: Option<Split> = None;

    // Split after bin b (bins 0..=b left); the last bin never splits.
    for b in 0..n_bins - 1 {
        hist.accumulate_bin(feature, b, &mut left_present);
        let right_present = present.sub(&left_present);

        for default_left in [true, false] {
            let (left, right) = if default_left {
                let mut l = left_present.clone();
                l.add(&missing);
                (l, right_present.clone())
            } else {
                let mut r = right_present.clone();
                r.add(&missing);
                (left_present.clone(), r)
            };
            if left.total_hess() < params.min_child_weight
                || right.total_hess() < params.min_child_weight
            {
                continue;
            }
            let gain =
                0.5 * (left.score(params.lambda) + right.score(params.lambda) - node_score)
                    - params.gamma;
            if gain <= 0.0 {
                continue;
            }
            let candidate = Split {
                feature,
                bin: b as BinId,
                default_left,
                gain,
                left,
                right,
            };
            if best.as_ref().is_none_or(|cur| candidate.better_than(cur)) {
                best = Some(candidate);
            }
        }
    }
    best
}

/// Finds the best split over all features of a histogram.
///
/// `n_bins_of` reports the true bin count of each (local) feature, which may
/// be smaller than the histogram stride; `feature_map` translates local ids
/// to global ids for the returned split.
pub fn best_split(
    hist: &NodeHistogram,
    node: &NodeStats,
    params: &SplitParams,
    n_bins_of: impl Fn(FeatureId) -> usize,
    feature_map: impl Fn(FeatureId) -> FeatureId,
) -> Option<Split> {
    best_split_in_range(hist, 0..hist.n_features() as FeatureId, node, params, n_bins_of, feature_map)
}

/// Finds the best split over a (local) feature subrange of a histogram —
/// the feature-sharded split finding of reduce-scatter / parameter-server
/// aggregation, where each worker only holds aggregated histograms for a
/// slice of the features (§4.1).
pub fn best_split_in_range(
    hist: &NodeHistogram,
    range: std::ops::Range<FeatureId>,
    node: &NodeStats,
    params: &SplitParams,
    n_bins_of: impl Fn(FeatureId) -> usize,
    feature_map: impl Fn(FeatureId) -> FeatureId,
) -> Option<Split> {
    debug_assert!(range.end as usize <= hist.n_features());
    let mut best: Option<Split> = None;
    for f in range {
        if let Some(mut s) = best_split_for_feature(hist, f, n_bins_of(f), node, params) {
            s.feature = feature_map(f);
            if best.as_ref().is_none_or(|cur| s.better_than(cur)) {
                best = Some(s);
            }
        }
    }
    best
}

/// Parallel [`best_split_in_range`]: the per-feature scans fan out across
/// `threads`, each feature's candidate lands in a feature-indexed slot, and
/// the slots are reduced sequentially in ascending feature order with
/// [`Split::better_than`]. The reduction therefore folds the same
/// candidates in the same order as the sequential scan, making the chosen
/// split bit-identical for every thread count.
pub fn best_split_in_range_parallel(
    hist: &NodeHistogram,
    range: std::ops::Range<FeatureId>,
    node: &NodeStats,
    params: &SplitParams,
    n_bins_of: impl Fn(FeatureId) -> usize + Sync,
    feature_map: impl Fn(FeatureId) -> FeatureId + Sync,
    threads: usize,
) -> Option<Split> {
    let len = range.len();
    if threads <= 1 || len < crate::parallel::MIN_PARALLEL_FEATURES {
        return best_split_in_range(hist, range, node, params, n_bins_of, feature_map);
    }
    let start = range.start;
    let mut slots: Vec<Option<Split>> = vec![None; len];
    crate::parallel::par_map_slots(&mut slots, threads, |k, slot| {
        let f = start + k as FeatureId;
        *slot = best_split_for_feature(hist, f, n_bins_of(f), node, params).map(|mut s| {
            s.feature = feature_map(f);
            s
        });
    });
    let mut best: Option<Split> = None;
    for s in slots.into_iter().flatten() {
        if best.as_ref().is_none_or(|cur| s.better_than(cur)) {
            best = Some(s);
        }
    }
    best
}

/// Parallel [`best_split`] over all features of a histogram.
pub fn best_split_parallel(
    hist: &NodeHistogram,
    node: &NodeStats,
    params: &SplitParams,
    n_bins_of: impl Fn(FeatureId) -> usize + Sync,
    feature_map: impl Fn(FeatureId) -> FeatureId + Sync,
    threads: usize,
) -> Option<Split> {
    best_split_in_range_parallel(
        hist,
        0..hist.n_features() as FeatureId,
        node,
        params,
        n_bins_of,
        feature_map,
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SplitParams {
        SplitParams { lambda: 1.0, gamma: 0.0, min_child_weight: 0.0 }
    }

    /// Node with two clusters: bin 0 has grads +1 (x4), bin 1 has grads -1 (x4).
    fn two_cluster_hist() -> (NodeHistogram, NodeStats) {
        let mut hist = NodeHistogram::new(1, 2, 1);
        let mut node = NodeStats::zero(1);
        for _ in 0..4 {
            hist.add(0, 0, 0, 1.0, 1.0);
            node.grads[0] += 1.0;
            node.hesses[0] += 1.0;
        }
        for _ in 0..4 {
            hist.add(0, 1, 0, -1.0, 1.0);
            node.grads[0] += -1.0;
            node.hesses[0] += 1.0;
        }
        (hist, node)
    }

    #[test]
    fn leaf_weight_matches_equation_1() {
        let stats = NodeStats { grads: vec![4.0], hesses: vec![3.0] };
        assert_eq!(stats.leaf_weights(1.0), vec![-1.0]);
        assert_eq!(stats.score(1.0), 4.0);
    }

    #[test]
    fn gain_matches_equation_2() {
        let (hist, node) = two_cluster_hist();
        let s = best_split_for_feature(&hist, 0, 2, &node, &params()).unwrap();
        assert_eq!(s.bin, 0);
        // GL=4, HL=4; GR=-4, HR=4; G=0, H=8.
        // gain = 0.5*(16/5 + 16/5 - 0) = 3.2
        assert!((s.gain - 3.2).abs() < 1e-12, "gain {}", s.gain);
        assert_eq!(s.left.grads, vec![4.0]);
        assert_eq!(s.right.grads, vec![-4.0]);
    }

    #[test]
    fn gamma_subtracts_from_gain_and_can_veto() {
        let (hist, node) = two_cluster_hist();
        let p = SplitParams { gamma: 1.0, ..params() };
        let s = best_split_for_feature(&hist, 0, 2, &node, &p).unwrap();
        assert!((s.gain - 2.2).abs() < 1e-12);
        let p = SplitParams { gamma: 10.0, ..params() };
        assert!(best_split_for_feature(&hist, 0, 2, &node, &p).is_none());
    }

    #[test]
    fn min_child_weight_vetoes_thin_children() {
        let (hist, node) = two_cluster_hist();
        let p = SplitParams { min_child_weight: 5.0, ..params() };
        assert!(best_split_for_feature(&hist, 0, 2, &node, &p).is_none());
    }

    #[test]
    fn missing_values_choose_best_default_direction() {
        // Present: bin 0 has grad +2 (hess 2), bin 1 grad 0 (hess 1).
        // Missing mass: grad -3, hess 3. Best: split after bin 0 with
        // missing going right (so left is pure positive).
        let mut hist = NodeHistogram::new(1, 2, 1);
        hist.add(0, 0, 0, 2.0, 2.0);
        hist.add(0, 1, 0, 0.0, 1.0);
        let node = NodeStats { grads: vec![-1.0], hesses: vec![6.0] };
        let s = best_split_for_feature(&hist, 0, 2, &node, &params()).unwrap();
        assert!(!s.default_left);
        assert_eq!(s.left.grads, vec![2.0]);
        assert_eq!(s.right.grads, vec![-3.0]);
        assert_eq!(s.right.hesses, vec![4.0]);
    }

    #[test]
    fn no_split_on_uniform_gradients() {
        // All instances identical: any split gives zero gain.
        let mut hist = NodeHistogram::new(1, 2, 1);
        hist.add(0, 0, 0, 1.0, 1.0);
        hist.add(0, 1, 0, 1.0, 1.0);
        let node = NodeStats { grads: vec![2.0], hesses: vec![2.0] };
        assert!(best_split_for_feature(&hist, 0, 2, &node, &params()).is_none());
    }

    #[test]
    fn single_bin_feature_cannot_split() {
        let (hist, node) = two_cluster_hist();
        assert!(best_split_for_feature(&hist, 0, 1, &node, &params()).is_none());
    }

    #[test]
    fn best_split_prefers_highest_gain_feature() {
        // Feature 0 separates weakly, feature 1 perfectly.
        let mut hist = NodeHistogram::new(2, 2, 1);
        hist.add(0, 0, 0, 1.0, 2.0); // mixed
        hist.add(0, 1, 0, -1.0, 2.0);
        hist.add(1, 0, 0, 2.0, 2.0); // pure
        hist.add(1, 1, 0, -2.0, 2.0);
        let node = NodeStats { grads: vec![0.0], hesses: vec![4.0] };
        let s = best_split(&hist, &node, &params(), |_| 2, |f| f + 100).unwrap();
        assert_eq!(s.feature, 101); // remapped global id
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        // Two identical features: the smaller id must win.
        let mut hist = NodeHistogram::new(2, 2, 1);
        for f in 0..2 {
            hist.add(f, 0, 0, 1.0, 1.0);
            hist.add(f, 1, 0, -1.0, 1.0);
        }
        let node = NodeStats { grads: vec![0.0], hesses: vec![2.0] };
        let s = best_split(&hist, &node, &params(), |_| 2, |f| f).unwrap();
        assert_eq!(s.feature, 0);
        let a = Split {
            feature: 1,
            bin: 0,
            default_left: true,
            gain: 1.0,
            left: NodeStats::zero(1),
            right: NodeStats::zero(1),
        };
        let mut b = a.clone();
        b.feature = 2;
        assert!(a.better_than(&b));
        b.feature = 1;
        b.bin = 1;
        assert!(a.better_than(&b));
        b.bin = 0;
        assert!(!a.better_than(&b)); // identical: first wins via map_or(false)
    }

    #[test]
    fn multiclass_gain_sums_classes() {
        let mut hist = NodeHistogram::new(1, 2, 2);
        hist.add_instance(0, 0, &[1.0, -1.0], &[1.0, 1.0]);
        hist.add_instance(0, 1, &[-1.0, 1.0], &[1.0, 1.0]);
        let node = NodeStats { grads: vec![0.0, 0.0], hesses: vec![2.0, 2.0] };
        let s = best_split_for_feature(&hist, 0, 2, &node, &params()).unwrap();
        // Per class: 0.5*(1/2 + 1/2) = 0.5; two classes -> 1.0.
        assert!((s.gain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_split_matches_sequential_exactly() {
        // Enough features to clear MIN_PARALLEL_FEATURES so the fan-out
        // path actually engages.
        let d = crate::parallel::MIN_PARALLEL_FEATURES + 9;
        let q = 6;
        let mut hist = NodeHistogram::new(d, q, 1);
        let mut node = NodeStats::zero(1);
        for f in 0..d as u32 {
            for b in 0..q as u16 {
                let g = ((f as f64 * 31.0 + b as f64 * 7.0).sin()) * 0.5;
                hist.add(f, b, 0, g, 1.0);
            }
        }
        // Node totals = sums over feature 0 (every feature sees all mass).
        let t = hist.feature_totals(0);
        node.grads[0] = t.grads[0];
        node.hesses[0] = t.hesses[0];
        let p = params();
        let seq = best_split(&hist, &node, &p, |_| q, |f| f);
        for threads in [1usize, 2, 4, 8] {
            let par = best_split_parallel(&hist, &node, &p, |_| q, |f| f, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
        // Subrange variant too.
        let lo = 10u32;
        let hi = d as u32 - 3;
        let seq = best_split_in_range(&hist, lo..hi, &node, &p, |_| q, |f| f + 1000);
        let par =
            best_split_in_range_parallel(&hist, lo..hi, &node, &p, |_| q, |f| f + 1000, 4);
        assert_eq!(par, seq);
    }

    #[test]
    fn stats_and_split_wire_roundtrip() {
        let stats = NodeStats { grads: vec![1.5, -2.5], hesses: vec![0.5, 3.0] };
        assert_eq!(NodeStats::decode_bytes(&stats.encode_bytes()).unwrap(), stats);
        assert!(NodeStats::decode_bytes(&stats.encode_bytes()[..7]).is_none());
        let split = Split {
            feature: 12,
            bin: 7,
            default_left: false,
            gain: 3.25,
            left: stats.clone(),
            right: NodeStats::zero(2),
        };
        assert_eq!(Split::decode_bytes(&split.encode_bytes()).unwrap(), split);
        assert!(Split::decode_bytes(&split.encode_bytes()[..20]).is_none());
    }
}
