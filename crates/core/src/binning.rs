//! Candidate splits and value → bin quantization.
//!
//! [`BinCuts`] holds, per feature, the ascending candidate split values
//! proposed from quantile sketches (§2.1.2, Figure 3). A feature value `v`
//! maps to the first bin whose cut is ≥ `v`; values above the last cut
//! clamp into the last bin (the last cut is the feature maximum, so this
//! only happens for unseen validation values). Sparse zeros are *not*
//! binned — they are the "missing values" the split finder routes through
//! the learned default direction (§3.2.3).

use crate::config::Storage;
use crate::sketch::QuantileSketch;
use gbdt_data::binned::BinnedRowsBuilder;
use gbdt_data::dataset::{Dataset, FeatureMatrix};
use gbdt_data::{BinId, BinnedRows, BinnedStore, FeatureId};
use serde::{Deserialize, Serialize};

/// Per-feature candidate split values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinCuts {
    cuts: Vec<Vec<f32>>,
}

impl BinCuts {
    /// Builds cuts from one merged sketch per feature, proposing `q`
    /// candidate splits each.
    pub fn from_sketches(sketches: &[QuantileSketch], q: usize) -> Self {
        BinCuts { cuts: sketches.iter().map(|s| s.candidate_splits(q)).collect() }
    }

    /// Builds per-feature sketches from a dataset's stored values.
    ///
    /// This is the single-node path; the distributed path builds local
    /// sketches per worker and merges them (paper §4.2.1 steps 1–2), which
    /// produces the same cuts because the sketch is mergeable.
    pub fn sketch_dataset(dataset: &Dataset, capacity: usize) -> Vec<QuantileSketch> {
        let mut sketches = vec![QuantileSketch::new(capacity); dataset.n_features()];
        match &dataset.features {
            FeatureMatrix::Sparse(csr) => {
                for (_, feats, vals) in csr.iter_rows() {
                    for (&f, &v) in feats.iter().zip(vals) {
                        sketches[f as usize].insert(v);
                    }
                }
            }
            FeatureMatrix::Dense(dense) => {
                for i in 0..dense.n_rows() {
                    for (j, &v) in dense.row(i).iter().enumerate() {
                        sketches[j].insert(v);
                    }
                }
            }
        }
        sketches
    }

    /// Convenience: sketch a dataset and propose `q` splits per feature.
    pub fn from_dataset(dataset: &Dataset, q: usize) -> Self {
        Self::from_sketches(&Self::sketch_dataset(dataset, QuantileSketch::DEFAULT_CAP), q)
    }

    /// Builds cuts directly from explicit per-feature split values
    /// (ascending); used by tests for exact control.
    pub fn from_cut_values(cuts: Vec<Vec<f32>>) -> Self {
        for (f, c) in cuts.iter().enumerate() {
            for w in c.windows(2) {
                assert!(w[0] < w[1], "feature {f} cuts not strictly ascending");
            }
        }
        BinCuts { cuts }
    }

    /// Number of features covered.
    pub fn n_features(&self) -> usize {
        self.cuts.len()
    }

    /// Number of bins (candidate splits) of a feature; 0 when the feature
    /// never appeared in the training data.
    #[inline]
    pub fn n_bins(&self, feature: FeatureId) -> usize {
        self.cuts[feature as usize].len()
    }

    /// Largest bin count over all features (histogram width).
    pub fn max_bins(&self) -> usize {
        self.cuts.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Bin of `value` for `feature`: the first bin whose cut is ≥ `value`,
    /// clamped into the last bin. `None` for features with no cuts.
    #[inline]
    pub fn bin(&self, feature: FeatureId, value: f32) -> Option<BinId> {
        let cuts = &self.cuts[feature as usize];
        if cuts.is_empty() {
            return None;
        }
        let idx = cuts.partition_point(|&c| c < value);
        Some(idx.min(cuts.len() - 1) as BinId)
    }

    /// Split threshold represented by `bin`: instances with value ≤ the
    /// returned threshold go left.
    #[inline]
    pub fn threshold(&self, feature: FeatureId, bin: BinId) -> f32 {
        self.cuts[feature as usize][bin as usize]
    }

    /// All cuts of one feature.
    pub fn feature_cuts(&self, feature: FeatureId) -> &[f32] {
        &self.cuts[feature as usize]
    }

    /// Quantizes a dataset into binned row-store form.
    pub fn apply(&self, dataset: &Dataset) -> BinnedRows {
        let n = dataset.n_instances();
        let d = dataset.n_features();
        assert_eq!(d, self.n_features(), "cuts built for a different dimensionality");
        let mut builder = BinnedRowsBuilder::with_capacity(d, n, dataset.features.n_stored());
        let mut entries: Vec<(FeatureId, BinId)> = Vec::new();
        match &dataset.features {
            FeatureMatrix::Sparse(csr) => {
                for (_, feats, vals) in csr.iter_rows() {
                    entries.clear();
                    for (&f, &v) in feats.iter().zip(vals) {
                        if let Some(b) = self.bin(f, v) {
                            entries.push((f, b));
                        }
                    }
                    builder.push_row(&entries).expect("binned entries remain sorted");
                }
            }
            FeatureMatrix::Dense(dense) => {
                for i in 0..dense.n_rows() {
                    entries.clear();
                    for (j, &v) in dense.row(i).iter().enumerate() {
                        if let Some(b) = self.bin(j as FeatureId, v) {
                            entries.push((j as FeatureId, b));
                        }
                    }
                    builder.push_row(&entries).expect("binned entries remain sorted");
                }
            }
        }
        builder.build()
    }

    /// Quantizes a dataset and wraps the result in the layout `storage`
    /// selects. The cell width of a dense result is fixed by these cuts'
    /// global [`Self::max_bins`], so every shard packs identically.
    pub fn apply_store(&self, dataset: &Dataset, storage: Storage) -> BinnedStore {
        storage.bin_store(self.apply(dataset), self.max_bins())
    }

    /// Exact wire encoding, for broadcasting candidate splits (§4.2.1 step 2).
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            4 + self.cuts.iter().map(|c| 2 + c.len() * 4).sum::<usize>(),
        );
        out.extend_from_slice(&(self.cuts.len() as u32).to_le_bytes());
        for cuts in &self.cuts {
            out.extend_from_slice(&(cuts.len() as u16).to_le_bytes());
            for v in cuts {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Decodes [`Self::encode_bytes`] output.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Option<&[u8]> {
            let s = bytes.get(pos..pos + n)?;
            pos += n;
            Some(s)
        };
        let d = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let mut cuts = Vec::with_capacity(d);
        for _ in 0..d {
            let len = u16::from_le_bytes(take(2)?.try_into().ok()?) as usize;
            let mut c = Vec::with_capacity(len);
            for _ in 0..len {
                c.push(f32::from_le_bytes(take(4)?.try_into().ok()?));
            }
            cuts.push(c);
        }
        if pos != bytes.len() {
            return None;
        }
        Some(BinCuts { cuts })
    }
}

impl QuantileSketch {
    /// Default per-level capacity used when sketching datasets.
    pub const DEFAULT_CAP: usize = crate::sketch::DEFAULT_CAPACITY;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_data::sparse::CsrBuilder;

    fn cuts_simple() -> BinCuts {
        BinCuts::from_cut_values(vec![vec![1.0, 2.0, 3.0], vec![10.0], vec![]])
    }

    #[test]
    fn bin_maps_values_to_first_covering_cut() {
        let c = cuts_simple();
        assert_eq!(c.bin(0, 0.5), Some(0));
        assert_eq!(c.bin(0, 1.0), Some(0));
        assert_eq!(c.bin(0, 1.5), Some(1));
        assert_eq!(c.bin(0, 3.0), Some(2));
        // Above the max cut: clamps to the last bin.
        assert_eq!(c.bin(0, 99.0), Some(2));
        assert_eq!(c.bin(1, -5.0), Some(0));
        // Feature never seen in training.
        assert_eq!(c.bin(2, 1.0), None);
    }

    #[test]
    fn threshold_inverts_bin() {
        let c = cuts_simple();
        assert_eq!(c.threshold(0, 1), 2.0);
        assert_eq!(c.n_bins(0), 3);
        assert_eq!(c.n_bins(2), 0);
        assert_eq!(c.max_bins(), 3);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn from_cut_values_rejects_unsorted() {
        BinCuts::from_cut_values(vec![vec![2.0, 1.0]]);
    }

    #[test]
    fn dataset_cuts_respect_quantiles() {
        // Feature 0 uniform over 0..100; q = 4 splits near 25/50/75/100.
        let mut b = CsrBuilder::new(1);
        for i in 0..100 {
            b.push_row(&[(0, i as f32)]).unwrap();
        }
        let ds = Dataset::new(
            FeatureMatrix::Sparse(b.build()),
            vec![0.0; 100],
            0,
            "t",
        )
        .unwrap();
        let cuts = BinCuts::from_dataset(&ds, 4);
        let c = cuts.feature_cuts(0);
        assert_eq!(c.len(), 4);
        assert_eq!(*c.last().unwrap(), 99.0);
        assert!((c[0] - 25.0).abs() <= 3.0, "first cut {c:?}");
        assert!((c[1] - 50.0).abs() <= 3.0);
    }

    #[test]
    fn apply_bins_every_stored_value() {
        let mut b = CsrBuilder::new(2);
        b.push_row(&[(0, 1.0), (1, 5.0)]).unwrap();
        b.push_row(&[(0, 9.0)]).unwrap();
        b.push_row(&[]).unwrap();
        let ds =
            Dataset::new(FeatureMatrix::Sparse(b.build()), vec![0.0; 3], 0, "t").unwrap();
        let cuts = BinCuts::from_dataset(&ds, 10);
        let binned = cuts.apply(&ds);
        assert_eq!(binned.n_rows(), 3);
        assert_eq!(binned.nnz(), 3);
        // Feature 0 has values {1, 9}: 1 -> bin 0, 9 -> last bin.
        assert_eq!(binned.get(0, 0), Some(0));
        assert_eq!(binned.get(1, 0).unwrap() as usize, cuts.n_bins(0) - 1);
        assert_eq!(binned.get(2, 0), None);
    }

    #[test]
    fn apply_dense_dataset() {
        let dense = gbdt_data::DenseMatrix::from_rows(&[
            vec![1.0, -1.0],
            vec![2.0, 0.0],
            vec![3.0, 1.0],
        ])
        .unwrap();
        let ds = Dataset::new(FeatureMatrix::Dense(dense), vec![0.0; 3], 0, "t").unwrap();
        let cuts = BinCuts::from_dataset(&ds, 4);
        let binned = cuts.apply(&ds);
        // Dense: every (row, feature) pair is stored, including zeros.
        assert_eq!(binned.nnz(), 6);
        assert!(binned.get(1, 1).is_some());
    }

    #[test]
    fn wire_roundtrip() {
        let c = cuts_simple();
        let bytes = c.encode_bytes();
        assert_eq!(BinCuts::decode_bytes(&bytes).unwrap(), c);
        assert!(BinCuts::decode_bytes(&bytes[..bytes.len() - 2]).is_none());
    }

    #[test]
    fn sketch_then_cuts_matches_single_pass_merge() {
        // Splitting the data into shards, sketching each, and merging gives
        // the same cuts as sketching the whole (deterministic compaction).
        let values: Vec<f32> = (0..2_000).map(|i| ((i * 37) % 500) as f32).collect();
        let mut whole = QuantileSketch::new(128);
        for &v in &values {
            whole.insert(v);
        }
        let mut merged = QuantileSketch::new(128);
        let mut a = QuantileSketch::new(128);
        let mut b = QuantileSketch::new(128);
        for &v in &values[..1_000] {
            a.insert(v);
        }
        for &v in &values[1_000..] {
            b.insert(v);
        }
        merged.merge(&a);
        merged.merge(&b);
        let q = 20;
        let cuts_whole = whole.candidate_splits(q);
        let cuts_merged = merged.candidate_splits(q);
        // Both approximate the same distribution: equal length within 1 and
        // max identical.
        assert_eq!(cuts_whole.last(), cuts_merged.last());
        assert!(
            (cuts_whole.len() as i64 - cuts_merged.len() as i64).abs() <= 2,
            "{} vs {}",
            cuts_whole.len(),
            cuts_merged.len()
        );
    }
}
