//! Intra-worker multi-core execution.
//!
//! Every simulated worker may fan its own computation — histogram
//! construction and split finding, the two dominant Comp costs of §3.1 —
//! across OS threads via [`std::thread::scope`]. The layer is built around
//! one invariant: **results are bit-identical for every thread count**, so
//! the cross-quadrant equivalence guarantees (DESIGN.md §4.1) survive
//! parallel execution unchanged. The rules that buy determinism:
//!
//! * **Row-store histogram builds** partition a node's instance list into
//!   [`INSTANCE_CHUNK`]-sized chunks whose boundaries depend only on the
//!   list length — never on the thread count. Each chunk is accumulated
//!   into a private scratch [`NodeHistogram`] and the chunk partials are
//!   merged into the node histogram **in ascending chunk order**, giving
//!   one fixed f64 summation bracketing `((p₀+p₁)+p₂)+…` regardless of how
//!   many threads computed the partials (including one).
//! * **Column-store histogram builds** split the histogram buffer into
//!   disjoint contiguous per-feature regions; each thread fills whole
//!   features, so the per-column accumulation order is exactly the
//!   sequential one.
//! * **Split finding** stores each feature's best candidate in a
//!   feature-indexed slot and reduces the slots sequentially in ascending
//!   feature order — the same fold, in the same order, as the
//!   single-threaded scan.
//!
//! Thread budget: the default ([`Parallelism::AUTO`]) divides the machine's
//! cores by the simulated worker count, so a W-worker cluster running W
//! worker threads spawns at most `available_parallelism()` busy threads in
//! total and never oversubscribes the host.

use crate::histogram::{HistogramPool, NodeHistogram};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Instances per histogram-build chunk. Fixed (never derived from the
/// thread count) so the chunk structure — and therefore every f64 sum — is
/// identical no matter how many threads execute the build.
pub const INSTANCE_CHUNK: usize = 4096;

/// Feature count below which the parallel split scan falls back to the
/// sequential path (the fan-out overhead would exceed the scan).
pub const MIN_PARALLEL_FEATURES: usize = 64;

/// Intra-worker thread budget configuration.
///
/// `threads == 0` means *auto*: `available_parallelism() / workers`,
/// clamped to ≥ 1, so that `W` simulated workers sharing one host never
/// oversubscribe it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Threads per worker; 0 = auto.
    pub threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::AUTO
    }
}

impl Parallelism {
    /// Resolve the budget from the host's core count at run time.
    pub const AUTO: Parallelism = Parallelism { threads: 0 };

    /// A fixed thread count (1 = sequential).
    pub const fn fixed(threads: usize) -> Parallelism {
        Parallelism { threads }
    }

    /// The concrete thread count for one of `workers` simulated workers.
    pub fn resolve(&self, workers: usize) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        (cores / workers.max(1)).max(1)
    }
}

/// Accumulates wall-clock vs summed per-thread busy time over the parallel
/// sections a worker executes, so reports can state the realized speedup
/// (`busy / wall`) next to the modelled communication times — keeping the
/// honest-simulation boundary explicit.
#[derive(Debug, Default)]
pub struct Meter {
    wall_nanos: AtomicU64,
    busy_nanos: AtomicU64,
    sections: AtomicU64,
}

impl Meter {
    /// Records one parallel section.
    pub fn add(&self, wall: Duration, busy: Duration) {
        self.wall_nanos.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        self.busy_nanos.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        self.sections.fetch_add(1, Ordering::Relaxed);
    }

    /// Total wall-clock seconds spent inside parallel sections.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Total busy seconds summed over all participating threads.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Number of parallel sections recorded.
    pub fn sections(&self) -> u64 {
        self.sections.load(Ordering::Relaxed)
    }

    /// Realized speedup (`busy / wall`); 1.0 when nothing ran in parallel.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_seconds();
        if wall <= 0.0 {
            1.0
        } else {
            self.busy_seconds() / wall
        }
    }
}

/// Builds the histogram of `node` from its instance list with the
/// deterministic chunked map-reduce described in the module docs.
///
/// `fill` accumulates one chunk of instances into a (zeroed or partially
/// filled) histogram; it must be pure over its arguments. Scratch
/// histograms are drawn from — and returned to — the pool's free list, so
/// steady-state training does not allocate.
pub fn build_histogram_chunked(
    pool: &mut HistogramPool,
    node: u32,
    instances: &[u32],
    threads: usize,
    meter: &Meter,
    fill: impl Fn(&mut NodeHistogram, &[u32]) + Sync,
) {
    let n_chunks = instances.len().div_ceil(INSTANCE_CHUNK).max(1);
    if n_chunks == 1 {
        // One chunk accumulated into the zeroed node histogram is exactly
        // the merged single partial — the direct path changes no bits.
        fill(pool.acquire(node), instances);
        return;
    }

    if threads <= 1 {
        // Sequential, but through the same chunk partials merged in the
        // same order as the parallel path, so the result is bit-identical
        // to every other thread count.
        let mut scratch = pool.take_scratch();
        let hist = pool.acquire(node);
        for chunk in instances.chunks(INSTANCE_CHUNK) {
            scratch.zero();
            fill(&mut scratch, chunk);
            hist.merge_from(&scratch);
        }
        pool.return_scratch(scratch);
        return;
    }

    let t = threads.min(n_chunks);
    let mut scratch: Vec<NodeHistogram> = (0..t).map(|_| pool.take_scratch()).collect();
    // lint: allow(wall-clock) — measures computation time for modelled stats only
    let start = Instant::now();
    let busy = AtomicU64::new(0);
    {
        let hist = pool.acquire(node);
        let chunks: Vec<&[u32]> = instances.chunks(INSTANCE_CHUNK).collect();
        let mut next = 0;
        while next < chunks.len() {
            // One wave: up to `t` chunks accumulate concurrently, each into
            // its own scratch buffer…
            let wave = (chunks.len() - next).min(t);
            std::thread::scope(|s| {
                for (j, sc) in scratch[..wave].iter_mut().enumerate() {
                    let chunk = chunks[next + j];
                    let fill = &fill;
                    let busy = &busy;
                    s.spawn(move || {
                        // lint: allow(wall-clock) — measures computation time for modelled stats only
                        let t0 = Instant::now();
                        sc.zero();
                        fill(sc, chunk);
                        busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    });
                }
            });
            // …then the partials merge in ascending chunk order. Across
            // waves this chains `hist += pᵢ` for i = 0, 1, 2, … exactly.
            // lint: allow(wall-clock) — measures computation time for modelled stats only
            let t0 = Instant::now();
            for sc in &scratch[..wave] {
                hist.merge_from(sc);
            }
            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            next += wave;
        }
    }
    for sc in scratch {
        pool.return_scratch(sc);
    }
    meter.add(start.elapsed(), Duration::from_nanos(busy.load(Ordering::Relaxed)));
}

/// Fills a histogram feature-by-feature, fanning whole features across
/// threads. `fill(f, slice)` receives the (local) feature id and that
/// feature's contiguous `[bin][class][g,h]` region; because features are
/// disjoint and each is filled by exactly one thread in the sequential
/// per-column order, the result is bit-identical for every thread count.
pub fn par_feature_fill(
    hist: &mut NodeHistogram,
    threads: usize,
    meter: &Meter,
    fill: impl Fn(usize, &mut [f64]) + Sync,
) {
    let d = hist.n_features();
    let stride = hist.feature_stride();
    if d == 0 || stride == 0 {
        return;
    }
    if threads <= 1 || d < 2 {
        for (f, slice) in hist.as_mut_slice().chunks_mut(stride).enumerate() {
            fill(f, slice);
        }
        return;
    }
    let t = threads.min(d);
    let per = d.div_ceil(t);
    // lint: allow(wall-clock) — measures computation time for modelled stats only
    let start = Instant::now();
    let busy = AtomicU64::new(0);
    std::thread::scope(|s| {
        for (bi, block) in hist.as_mut_slice().chunks_mut(per * stride).enumerate() {
            let fill = &fill;
            let busy = &busy;
            s.spawn(move || {
                // lint: allow(wall-clock) — measures computation time for modelled stats only
                let t0 = Instant::now();
                for (k, slice) in block.chunks_mut(stride).enumerate() {
                    fill(bi * per + k, slice);
                }
                busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });
    meter.add(start.elapsed(), Duration::from_nanos(busy.load(Ordering::Relaxed)));
}

/// Runs `f(i, &mut slots[i])` for every slot, fanning contiguous slot
/// blocks across threads. Each slot is written by exactly one thread, so
/// the outcome is independent of the schedule; callers reduce the slots
/// sequentially afterwards for a deterministic fold.
pub fn par_map_slots<T: Send>(
    slots: &mut [T],
    threads: usize,
    f: impl Fn(usize, &mut T) + Sync,
) {
    let n = slots.len();
    if threads <= 1 || n < 2 {
        for (i, slot) in slots.iter_mut().enumerate() {
            f(i, slot);
        }
        return;
    }
    let t = threads.min(n);
    let per = n.div_ceil(t);
    std::thread::scope(|s| {
        for (bi, block) in slots.chunks_mut(per).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (k, slot) in block.iter_mut().enumerate() {
                    f(bi * per + k, slot);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_budget_divides_cores_by_workers() {
        let cores =
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        assert_eq!(Parallelism::AUTO.resolve(1), cores.max(1));
        assert_eq!(Parallelism::AUTO.resolve(cores * 2), 1);
        assert_eq!(Parallelism::fixed(3).resolve(8), 3);
    }

    #[test]
    fn meter_reports_speedup() {
        let m = Meter::default();
        assert_eq!(m.speedup(), 1.0);
        m.add(Duration::from_millis(10), Duration::from_millis(30));
        assert!((m.speedup() - 3.0).abs() < 0.2, "speedup {}", m.speedup());
        assert_eq!(m.sections(), 1);
    }

    fn reference_build(instances: &[u32], d: usize, q: usize, c: usize) -> NodeHistogram {
        // The canonical chunk-merge result, computed sequentially.
        let mut hist = NodeHistogram::new(d, q, c);
        let mut scratch = NodeHistogram::new(d, q, c);
        if instances.len() <= INSTANCE_CHUNK {
            fill_chunk(&mut hist, instances, d, q, c);
            return hist;
        }
        for chunk in instances.chunks(INSTANCE_CHUNK) {
            scratch.zero();
            fill_chunk(&mut scratch, chunk, d, q, c);
            hist.merge_from(&scratch);
        }
        hist
    }

    fn fill_chunk(hist: &mut NodeHistogram, chunk: &[u32], d: usize, q: usize, c: usize) {
        for &i in chunk {
            // Deterministic pseudo-data derived from the instance id, with
            // irrational-ish magnitudes so reorderings would change bits.
            let f = (i as usize * 7) % d;
            let b = ((i as usize * 13) % q) as u16;
            let g: Vec<f64> = (0..c).map(|k| ((i as f64) + k as f64) * 0.3183098123456789).collect();
            let h: Vec<f64> = (0..c).map(|k| ((i as f64) - k as f64) * 0.6366197987654321).collect();
            hist.add_instance(f as u32, b, &g, &h);
        }
    }

    #[test]
    fn chunked_build_is_bit_identical_across_thread_counts() {
        let d = 13;
        let q = 8;
        let c = 2;
        let instances: Vec<u32> = (0..3 * INSTANCE_CHUNK as u32 + 57).collect();
        let expected = reference_build(&instances, d, q, c);
        for threads in [1usize, 2, 3, 4, 8] {
            let mut pool = HistogramPool::new(d, q, c);
            let meter = Meter::default();
            build_histogram_chunked(&mut pool, 0, &instances, threads, &meter, |h, chunk| {
                fill_chunk(h, chunk, d, q, c)
            });
            assert_eq!(
                pool.get(0).unwrap().as_slice(),
                expected.as_slice(),
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn chunked_build_small_node_takes_direct_path() {
        let instances: Vec<u32> = (0..100).collect();
        let mut pool = HistogramPool::new(5, 4, 1);
        let meter = Meter::default();
        build_histogram_chunked(&mut pool, 0, &instances, 8, &meter, |h, chunk| {
            fill_chunk(h, chunk, 5, 4, 1)
        });
        assert_eq!(meter.sections(), 0, "small nodes must not spawn threads");
        let expected = reference_build(&instances, 5, 4, 1);
        assert_eq!(pool.get(0).unwrap().as_slice(), expected.as_slice());
    }

    #[test]
    fn feature_fill_matches_sequential_for_all_thread_counts() {
        let d = 17;
        let q = 6;
        let c = 3;
        let fill = |f: usize, slice: &mut [f64]| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v += (f * 1000 + k) as f64 * 0.1;
            }
        };
        let mut expected = NodeHistogram::new(d, q, c);
        let meter = Meter::default();
        par_feature_fill(&mut expected, 1, &meter, fill);
        for threads in [2usize, 3, 8, 32] {
            let mut hist = NodeHistogram::new(d, q, c);
            par_feature_fill(&mut hist, threads, &meter, fill);
            assert_eq!(hist.as_slice(), expected.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn map_slots_covers_every_slot_once() {
        for threads in [1usize, 2, 5, 16] {
            let mut slots = vec![0u64; 37];
            par_map_slots(&mut slots, threads, |i, s| *s += i as u64 + 1);
            for (i, s) in slots.iter().enumerate() {
                assert_eq!(*s, i as u64 + 1, "threads={threads} slot {i}");
            }
        }
    }
}
