//! Micro-benchmarks of histogram construction — the dominant GBDT cost
//! (§3.2.4) — across the storage patterns the paper contrasts, plus the
//! element-wise kernels (merge, subtraction) and the intra-worker
//! thread-scaling of the chunked parallel builder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_core::histogram::{HistogramPool, NodeHistogram};
use gbdt_core::indexes::{InstanceToNodeIndex, NodeToInstanceIndex};
use gbdt_core::parallel::{build_histogram_chunked, Meter};
use gbdt_core::GradBuffer;
use gbdt_data::binned::BinnedRowsBuilder;
use gbdt_data::BinnedRows;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 20_000;
const D: usize = 200;
const Q: usize = 20;
const NNZ: usize = 40;

fn make_binned(seed: u64) -> BinnedRows {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = BinnedRowsBuilder::with_capacity(D, N, N * NNZ);
    let mut row: Vec<(u32, u16)> = Vec::with_capacity(NNZ);
    for _ in 0..N {
        row.clear();
        let mut f = rng.gen_range(0..(D / NNZ) as u32);
        for _ in 0..NNZ {
            if f as usize >= D {
                break;
            }
            row.push((f, rng.gen_range(0..Q as u16)));
            f += rng.gen_range(1..=(D / NNZ) as u32);
        }
        b.push_row(&row).unwrap();
    }
    b.build()
}

fn make_grads(n: usize) -> GradBuffer {
    let mut rng = StdRng::seed_from_u64(17);
    let mut g = GradBuffer::new(n, 1);
    for i in 0..n {
        g.set(i, 0, rng.gen_range(-1.0..1.0), rng.gen_range(0.0..1.0));
    }
    g
}

fn bench_build(c: &mut Criterion) {
    let binned = make_binned(1);
    let columns = binned.to_columns();
    let grads = make_grads(N);
    let index = NodeToInstanceIndex::new(N);
    let inst_to_node = InstanceToNodeIndex::new(N);

    let mut group = c.benchmark_group("histogram_build");
    group.bench_function(BenchmarkId::new("row_store_node_index", N), |b| {
        b.iter(|| {
            let mut hist = NodeHistogram::new(D, Q, 1);
            for &i in index.instances(0) {
                let (g, h) = grads.instance(i as usize);
                let (feats, bins) = binned.row(i as usize);
                for (&f, &bin) in feats.iter().zip(bins) {
                    hist.add_instance(f, bin, g, h);
                }
            }
            black_box(hist)
        })
    });
    group.bench_function(BenchmarkId::new("column_store_inst_index", N), |b| {
        b.iter(|| {
            let mut hist = NodeHistogram::new(D, Q, 1);
            for (j, insts, bins) in columns.iter_cols() {
                for (&i, &bin) in insts.iter().zip(bins) {
                    if inst_to_node.node_of(i) == 0 {
                        let (g, h) = grads.instance(i as usize);
                        hist.add_instance(j as u32, bin, g, h);
                    }
                }
            }
            black_box(hist)
        })
    });
    group.bench_function(BenchmarkId::new("column_store_binary_search", N), |b| {
        // The paper's QD3 log(N) path: per node instance, binary search
        // every column.
        let instances: Vec<u32> = (0..(N as u32) / 4).collect(); // a quarter-sized node
        b.iter(|| {
            let mut hist = NodeHistogram::new(D, Q, 1);
            for j in 0..D {
                let (insts, bins) = columns.col(j);
                for &i in &instances {
                    if let Ok(pos) = insts.binary_search(&i) {
                        let (g, h) = grads.instance(i as usize);
                        hist.add_instance(j as u32, bins[pos], g, h);
                    }
                }
            }
            black_box(hist)
        })
    });
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut a = NodeHistogram::new(D, Q, 1);
    let mut bh = NodeHistogram::new(D, Q, 1);
    let mut rng = StdRng::seed_from_u64(3);
    for f in 0..D as u32 {
        for bin in 0..Q as u16 {
            a.add(f, bin, 0, rng.gen(), rng.gen());
            bh.add(f, bin, 0, rng.gen(), rng.gen());
        }
    }
    let mut group = c.benchmark_group("histogram_elementwise");
    group.bench_function("merge", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.merge_from(&bh);
            black_box(x)
        })
    });
    group.bench_function("subtract", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.subtract_from(&bh);
            black_box(x)
        })
    });
    group.bench_function("encode_decode", |b| {
        b.iter(|| {
            let bytes = a.encode_bytes();
            black_box(NodeHistogram::decode_bytes(&bytes).unwrap())
        })
    });
    group.finish();
}

/// Criteo-shaped node build (§5.2): D = 1000, q = 20, C = 2 outputs,
/// N = 100K instances in one node, swept over the intra-worker thread
/// budget. The determinism invariant is asserted outside the timed loop:
/// every thread count produces byte-identical histogram contents.
///
/// On a host with ≥ 4 cores the 4-thread point runs ≥ 2× faster than the
/// 1-thread point (25 chunk partials fan across a 4-wide wave). On a
/// single-core host the sweep only measures spawn + merge overhead, so no
/// speedup threshold is asserted at run time.
fn bench_thread_scaling(c: &mut Criterion) {
    const TN: usize = 100_000;
    const TD: usize = 1000;
    const TC: usize = 2;

    let mut rng = StdRng::seed_from_u64(29);
    let mut b = BinnedRowsBuilder::with_capacity(TD, TN, TN * NNZ);
    let mut row: Vec<(u32, u16)> = Vec::with_capacity(NNZ);
    for _ in 0..TN {
        row.clear();
        let mut f = rng.gen_range(0..(TD / NNZ) as u32);
        for _ in 0..NNZ {
            if f as usize >= TD {
                break;
            }
            row.push((f, rng.gen_range(0..Q as u16)));
            f += rng.gen_range(1..=(TD / NNZ) as u32);
        }
        b.push_row(&row).unwrap();
    }
    let binned = b.build();
    let mut grads = GradBuffer::new(TN, TC);
    for i in 0..TN {
        for k in 0..TC {
            grads.set(i, k, rng.gen_range(-1.0..1.0), rng.gen_range(0.0..1.0));
        }
    }
    let instances: Vec<u32> = (0..TN as u32).collect();

    let build = |threads: usize| -> NodeHistogram {
        let mut pool = HistogramPool::new(TD, Q, TC);
        let meter = Meter::default();
        build_histogram_chunked(&mut pool, 0, &instances, threads, &meter, |hist, chunk| {
            for &i in chunk {
                let (feats, bins) = binned.row(i as usize);
                let (gs, hs) = grads.instance(i as usize);
                for (&f, &bin) in feats.iter().zip(bins) {
                    for k in 0..TC {
                        hist.add(f, bin, k, gs[k], hs[k]);
                    }
                }
            }
        });
        pool.get(0).unwrap().clone()
    };

    // Determinism guard, outside the timed region: contents must be
    // bit-identical at every thread count (see DESIGN.md §4.4).
    let reference = build(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(
            build(threads),
            reference,
            "thread count {threads} changed histogram contents"
        );
    }

    let mut group = c.benchmark_group("histogram_thread_scaling");
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("criteo_shape_node", threads), |b| {
            b.iter(|| black_box(build(threads)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_elementwise, bench_thread_scaling
}
criterion_main!(benches);
