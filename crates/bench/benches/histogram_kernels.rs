//! Micro-benchmarks of histogram construction — the dominant GBDT cost
//! (§3.2.4) — across the storage patterns the paper contrasts, plus the
//! element-wise kernels (merge, subtraction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_core::histogram::NodeHistogram;
use gbdt_core::indexes::{InstanceToNodeIndex, NodeToInstanceIndex};
use gbdt_core::GradBuffer;
use gbdt_data::binned::BinnedRowsBuilder;
use gbdt_data::BinnedRows;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 20_000;
const D: usize = 200;
const Q: usize = 20;
const NNZ: usize = 40;

fn make_binned(seed: u64) -> BinnedRows {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = BinnedRowsBuilder::with_capacity(D, N, N * NNZ);
    let mut row: Vec<(u32, u16)> = Vec::with_capacity(NNZ);
    for _ in 0..N {
        row.clear();
        let mut f = rng.gen_range(0..(D / NNZ) as u32);
        for _ in 0..NNZ {
            if f as usize >= D {
                break;
            }
            row.push((f, rng.gen_range(0..Q as u16)));
            f += rng.gen_range(1..=(D / NNZ) as u32);
        }
        b.push_row(&row).unwrap();
    }
    b.build()
}

fn make_grads(n: usize) -> GradBuffer {
    let mut rng = StdRng::seed_from_u64(17);
    let mut g = GradBuffer::new(n, 1);
    for i in 0..n {
        g.set(i, 0, rng.gen_range(-1.0..1.0), rng.gen_range(0.0..1.0));
    }
    g
}

fn bench_build(c: &mut Criterion) {
    let binned = make_binned(1);
    let columns = binned.to_columns();
    let grads = make_grads(N);
    let index = NodeToInstanceIndex::new(N);
    let inst_to_node = InstanceToNodeIndex::new(N);

    let mut group = c.benchmark_group("histogram_build");
    group.bench_function(BenchmarkId::new("row_store_node_index", N), |b| {
        b.iter(|| {
            let mut hist = NodeHistogram::new(D, Q, 1);
            for &i in index.instances(0) {
                let (g, h) = grads.instance(i as usize);
                let (feats, bins) = binned.row(i as usize);
                for (&f, &bin) in feats.iter().zip(bins) {
                    hist.add_instance(f, bin, g, h);
                }
            }
            black_box(hist)
        })
    });
    group.bench_function(BenchmarkId::new("column_store_inst_index", N), |b| {
        b.iter(|| {
            let mut hist = NodeHistogram::new(D, Q, 1);
            for (j, insts, bins) in columns.iter_cols() {
                for (&i, &bin) in insts.iter().zip(bins) {
                    if inst_to_node.node_of(i) == 0 {
                        let (g, h) = grads.instance(i as usize);
                        hist.add_instance(j as u32, bin, g, h);
                    }
                }
            }
            black_box(hist)
        })
    });
    group.bench_function(BenchmarkId::new("column_store_binary_search", N), |b| {
        // The paper's QD3 log(N) path: per node instance, binary search
        // every column.
        let instances: Vec<u32> = (0..(N as u32) / 4).collect(); // a quarter-sized node
        b.iter(|| {
            let mut hist = NodeHistogram::new(D, Q, 1);
            for j in 0..D {
                let (insts, bins) = columns.col(j);
                for &i in &instances {
                    if let Ok(pos) = insts.binary_search(&i) {
                        let (g, h) = grads.instance(i as usize);
                        hist.add_instance(j as u32, bins[pos], g, h);
                    }
                }
            }
            black_box(hist)
        })
    });
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut a = NodeHistogram::new(D, Q, 1);
    let mut bh = NodeHistogram::new(D, Q, 1);
    let mut rng = StdRng::seed_from_u64(3);
    for f in 0..D as u32 {
        for bin in 0..Q as u16 {
            a.add(f, bin, 0, rng.gen(), rng.gen());
            bh.add(f, bin, 0, rng.gen(), rng.gen());
        }
    }
    let mut group = c.benchmark_group("histogram_elementwise");
    group.bench_function("merge", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.merge_from(&bh);
            black_box(x)
        })
    });
    group.bench_function("subtract", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.subtract_from(&bh);
            black_box(x)
        })
    });
    group.bench_function("encode_decode", |b| {
        b.iter(|| {
            let bytes = a.encode_bytes();
            black_box(NodeHistogram::decode_bytes(&bytes).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_elementwise
}
criterion_main!(benches);
