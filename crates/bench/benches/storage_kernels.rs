//! Micro-benchmarks of the storage-specialized histogram kernels: the
//! sparse pair walk vs the dense row scan (u8 and u16 cells, `C = 1` fast
//! path vs multiclass), plus the dense column scan. The fully dense
//! dataset is the dense layout's best case — the headline claims are that
//! the `C = 1` u8 kernel beats the sparse walk by ≥ 2× there while packing
//! the same values into ≤ ½ the heap bytes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_core::histogram::NodeHistogram;
use gbdt_core::kernels::{fill_column_slice, fill_dense_rows, fill_sparse_rows};
use gbdt_core::{GradBuffer, Kernel};
use gbdt_data::binned::BinnedRowsBuilder;
use gbdt_data::dense_binned::{BinWidth, DenseBinnedRows};
use gbdt_data::{BinnedRows, BinnedStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 20_000;
const D: usize = 100;
const Q: usize = 20;

/// Fully dense binned rows: every `(row, feature)` cell is present — the
/// regime the dense layout exists for.
fn make_dense_data(seed: u64) -> BinnedRows {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = BinnedRowsBuilder::with_capacity(D, N, N * D);
    let mut row: Vec<(u32, u16)> = Vec::with_capacity(D);
    for _ in 0..N {
        row.clear();
        for j in 0..D as u32 {
            row.push((j, rng.gen_range(0..Q as u16)));
        }
        b.push_row(&row).unwrap();
    }
    b.build()
}

fn make_grads(n: usize, c: usize) -> GradBuffer {
    let mut rng = StdRng::seed_from_u64(17);
    let mut g = GradBuffer::new(n, c);
    for i in 0..n {
        for k in 0..c {
            g.set(i, k, rng.gen_range(-1.0..1.0), rng.gen_range(0.0..1.0));
        }
    }
    g
}

fn bench_row_kernels(c: &mut Criterion) {
    let sparse = make_dense_data(1);
    let chunk: Vec<u32> = (0..N as u32).collect();

    let mut group = c.benchmark_group("storage_row_kernels");
    for n_outputs in [1usize, 4] {
        let grads = make_grads(N, n_outputs);
        group.bench_function(BenchmarkId::new("sparse", format!("C{n_outputs}")), |b| {
            b.iter(|| {
                let mut hist = NodeHistogram::new(D, Q, n_outputs);
                fill_sparse_rows(&mut hist, &chunk, &sparse, &grads);
                black_box(hist)
            })
        });
        for width in [BinWidth::U8, BinWidth::U16] {
            let dense = DenseBinnedRows::from_sparse_with_width(&sparse, Q, width);
            for kernel in Kernel::ALL {
                let label = match (width, kernel) {
                    (BinWidth::U8, Kernel::Scalar) => "dense_u8_scalar",
                    (BinWidth::U16, Kernel::Scalar) => "dense_u16_scalar",
                    (BinWidth::U8, Kernel::Simd) => "dense_u8_simd",
                    (BinWidth::U16, Kernel::Simd) => "dense_u16_simd",
                };
                group.bench_function(BenchmarkId::new(label, format!("C{n_outputs}")), |b| {
                    b.iter(|| {
                        let mut hist = NodeHistogram::new(D, Q, n_outputs);
                        fill_dense_rows(&mut hist, &chunk, &dense, &grads, kernel);
                        black_box(hist)
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_column_kernels(c: &mut Criterion) {
    let sparse = make_dense_data(2);
    let grads = make_grads(N, 1);
    let stores = [
        ("sparse", BinnedStore::sparse(sparse.clone()).to_columns()),
        ("dense_u8", BinnedStore::dense(sparse, Q).to_columns()),
    ];

    let mut group = c.benchmark_group("storage_column_kernels");
    for (label, store) in &stores {
        for kernel in Kernel::ALL {
            group.bench_function(BenchmarkId::new(*label, format!("C1_{}", kernel.label())), |b| {
                b.iter(|| {
                    let mut hist = NodeHistogram::new(D, Q, 1);
                    let stride = hist.feature_stride();
                    for (j, slice) in hist.as_mut_slice().chunks_mut(stride).enumerate() {
                        fill_column_slice(slice, 1, store, j, &grads, kernel);
                    }
                    black_box(hist)
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_row_kernels, bench_column_kernels
}
criterion_main!(benches);
