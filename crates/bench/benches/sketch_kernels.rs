//! Micro-benchmarks of the mergeable quantile sketch (§2.1.2, §4.2.1
//! step 1): streaming insertion, merging (the repartition path), and
//! candidate split generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_core::QuantileSketch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn filled(n: usize, seed: u64) -> QuantileSketch {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = QuantileSketch::default();
    for _ in 0..n {
        s.insert(rng.gen_range(-100.0..100.0));
    }
    s
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_insert");
    for n in [10_000usize, 100_000] {
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(filled(n, 23)))
        });
    }
    group.finish();
}

fn bench_merge_and_query(c: &mut Criterion) {
    let parts: Vec<QuantileSketch> = (0..8).map(|w| filled(50_000, w)).collect();
    let mut group = c.benchmark_group("sketch_ops");
    group.bench_function("merge_8_workers", |b| {
        b.iter(|| {
            let mut global = QuantileSketch::default();
            for p in &parts {
                global.merge(p);
            }
            black_box(global)
        })
    });
    let mut global = QuantileSketch::default();
    for p in &parts {
        global.merge(p);
    }
    group.bench_function("candidate_splits_q20", |b| {
        b.iter(|| black_box(global.candidate_splits(20)))
    });
    group.bench_function("wire_roundtrip", |b| {
        b.iter(|| {
            let bytes = global.encode_bytes();
            black_box(QuantileSketch::decode_bytes(&bytes).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_insert, bench_merge_and_query
}
criterion_main!(benches);
