//! Micro-benchmarks of the transformation wire formats (Appendix A): naïve
//! 12-byte pairs vs compressed pairs vs blockified arrays, plus the
//! placement bitmap.

use criterion::{criterion_group, criterion_main, Criterion};
use gbdt_data::block::Block;
use gbdt_data::encoding;
use gbdt_partition::PlacementBitmap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const PAIRS: usize = 100_000;
const P: usize = 5_000; // group features
const Q: usize = 20;

fn bench_pair_encodings(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let naive: Vec<(u32, f64)> =
        (0..PAIRS).map(|_| (rng.gen_range(0..P as u32), rng.gen_range(-1.0..1.0))).collect();
    let compressed: Vec<(u32, u16)> =
        (0..PAIRS).map(|_| (rng.gen_range(0..P as u32), rng.gen_range(0..Q as u16))).collect();

    let mut group = c.benchmark_group("wire_encode");
    group.bench_function("naive_12B", |b| {
        b.iter(|| black_box(encoding::encode_naive(&naive)))
    });
    group.bench_function("compressed", |b| {
        b.iter(|| black_box(encoding::encode_compressed(&compressed, P, Q)))
    });
    // Blockified: the same pairs as flat arrays with a single header.
    let feats: Vec<u32> = compressed.iter().map(|&(f, _)| f).collect();
    let bins: Vec<u16> = compressed.iter().map(|&(_, b)| b).collect();
    let row_ptr: Vec<u32> = (0..=PAIRS as u32).step_by(50).collect();
    let block = Block::new(
        0,
        0,
        feats,
        bins,
        if *row_ptr.last().unwrap() == PAIRS as u32 {
            row_ptr
        } else {
            let mut r = row_ptr;
            r.push(PAIRS as u32);
            r
        },
    )
    .unwrap();
    group.bench_function("blockified", |b| {
        b.iter(|| black_box(encoding::encode_block(&block, P, Q)))
    });
    let wire = encoding::encode_block(&block, P, Q);
    group.bench_function("blockified_decode", |b| {
        b.iter(|| black_box(encoding::decode_block(wire.clone(), P, Q).unwrap()))
    });
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let n = 1_000_000;
    let bm = PlacementBitmap::from_predicate(n, |i| i % 3 == 0);
    let mut group = c.benchmark_group("placement_bitmap");
    group.bench_function("build_1M", |b| {
        b.iter(|| black_box(PlacementBitmap::from_predicate(n, |i| i % 3 == 0)))
    });
    group.bench_function("encode_1M", |b| b.iter(|| black_box(bm.encode_bytes())));
    let bytes = bm.encode_bytes();
    group.bench_function("decode_1M", |b| {
        b.iter(|| black_box(PlacementBitmap::decode_bytes(&bytes).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pair_encodings, bench_bitmap
}
criterion_main!(benches);
