//! Micro-benchmarks of the three index structures' node-split cost
//! (§3.2.1/§3.2.3): node-to-instance and instance-to-node splits are O(node
//! size) / O(N); the column-wise index pays O(D) column repartitions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbdt_core::indexes::{ColumnWiseIndex, InstanceToNodeIndex, NodeToInstanceIndex};
use gbdt_data::binned::BinnedRowsBuilder;
use gbdt_data::BinnedColumns;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 50_000;

fn make_columns(d: usize) -> BinnedColumns {
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = BinnedRowsBuilder::new(d);
    let nnz = (d / 5).max(1);
    let mut row: Vec<(u32, u16)> = Vec::new();
    for _ in 0..N {
        row.clear();
        let mut f = rng.gen_range(0..5u32);
        for _ in 0..nnz {
            if f as usize >= d {
                break;
            }
            row.push((f, rng.gen_range(0..20u16)));
            f += rng.gen_range(1..=5u32);
        }
        b.push_row(&row).unwrap();
    }
    b.build().to_columns()
}

fn bench_splits(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_split");
    group.bench_function(BenchmarkId::new("node_to_instance", N), |b| {
        b.iter(|| {
            let mut idx = NodeToInstanceIndex::new(N);
            idx.split(0, |i| i % 2 == 0);
            black_box(idx.count(1))
        })
    });
    group.bench_function(BenchmarkId::new("instance_to_node", N), |b| {
        b.iter(|| {
            let mut idx = InstanceToNodeIndex::new(N);
            idx.split(0, |i| i % 2 == 0);
            black_box(idx.node_of(7))
        })
    });
    for d in [20usize, 100, 400] {
        let columns = make_columns(d);
        group.bench_function(BenchmarkId::new("column_wise_D", d), |b| {
            // The split cost grows with D — the paper's complaint.
            b.iter(|| {
                let mut idx = ColumnWiseIndex::from_columns(&columns);
                idx.split(0, |i| i % 2 == 0);
                black_box(idx.node_column(1, 0).0.len())
            })
        });
    }
    group.finish();
}

fn bench_two_phase_lookup(c: &mut Criterion) {
    use gbdt_data::block::{Block, BlockedRows};
    // 8 source blocks merged down to 4: the real shape after a transform.
    let rows_per_block = 5_000u32;
    let mut blocks = Vec::new();
    for s in 0..8u32 {
        let mut feats = Vec::new();
        let mut bins = Vec::new();
        let mut row_ptr = vec![0u32];
        let mut rng = StdRng::seed_from_u64(s as u64);
        for _ in 0..rows_per_block {
            for f in 0..10u32 {
                feats.push(f);
                bins.push(rng.gen_range(0..20u16));
            }
            row_ptr.push(feats.len() as u32);
        }
        blocks.push(Block::new(s, s * rows_per_block, feats, bins, row_ptr).unwrap());
    }
    let mut blocked = BlockedRows::assemble(10, blocks).unwrap();
    blocked.merge(4);
    let n = blocked.n_rows() as u32;

    c.bench_function("two_phase_row_lookup", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in (0..n).step_by(7) {
                acc += blocked.row(i).0.len();
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_splits, bench_two_phase_lookup
}
criterion_main!(benches);
