//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5, §6, Appendices A–D).
//!
//! One binary per artifact (`fig10`, `fig11`, `table3`, `fig12`, `table5`,
//! `table6`, `table7`, `table8`) plus Criterion micro-benchmarks of the hot
//! kernels. Shared machinery lives here:
//!
//! * [`args`] — a tiny flag parser (`--scale`, `--workers`, `--trees`, …).
//! * [`datasets`] — scaled synthetic stand-ins for every paper dataset.
//! * [`systems`] — the system registry mapping paper names to quadrant
//!   trainers (XGBoost→QD1, LightGBM→QD2/reduce-scatter,
//!   DimBoost→QD2/parameter-server, Vero→QD4, …).
//! * [`output`] — aligned human tables + machine-readable JSONL rows under
//!   `results/`.
//! * [`gate`] — the shared perf-regression gate behind the `grid`,
//!   `serve`, and `avail` binaries: machine-relative `*_rel` metrics,
//!   baseline comparison, and the common run/compare CLI skeleton.
//!
//! Absolute numbers will differ from the paper (their 8×4-core cluster vs
//! one process; real vs modelled links); the *shape* of each comparison is
//! the reproduction target, recorded in `EXPERIMENTS.md`.

pub mod args;
pub mod availgrid;
pub mod datasets;
pub mod endtoend;
pub mod gate;
pub mod grid;
pub mod output;
pub mod servegrid;
pub mod systems;
