//! Shared perf-regression gate: report indexing, baseline comparison,
//! machine-speed probing, and the common binary plumbing.
//!
//! Three grid binaries (`grid`, `serve`, `avail`) share one contract:
//! run a spec (or load an existing report), optionally write the
//! trajectory, then gate it against a checked-in baseline and exit
//! nonzero on regression. The axes differ per grid but the comparison
//! never does, so the whole pipeline lives here once — [`gate_main`]
//! is the binary skeleton, [`compare_reports`] the gate itself, and
//! [`probe_once`] the calibration burst every runner interleaves with
//! its timing reps to produce the machine-relative `*_rel` twins.
//!
//! Timings are machine-specific: a baseline only gates runs on hardware
//! comparable to the machine that produced it (regenerate the baseline
//! when the fleet changes); the `*_rel` twins absorb *speed* differences
//! but not microarchitectural ones.

use crate::args::Args;
use crate::output::write_trajectory;
use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

/// One burst of the machine-speed probe: wall time of a fixed integer
/// workload (a serial Lehmer-style multiply chain — pure core speed, no
/// memory traffic, and no code shared with anything the grids measure,
/// so a real kernel regression can never hide inside it).
///
/// The grid runners interleave probe bursts with their timing reps and
/// record `min(measured) / min(probe)` as the `*_rel` metric next to
/// the raw seconds. Because the probes sample the same span of machine
/// states the measurement mins are drawn from, a shared-vCPU steal
/// window, turbo drift, or a differently-provisioned CI runner slows
/// both mins by the same factor and cancels out of the ratio, while a
/// genuine code regression moves only the numerator. (Min-of-ratios
/// would be wrong: one stalled probe burst next to a quiet measurement
/// makes a downward outlier the min then locks onto; both mins
/// separately are bounded below by the true quiet-machine times.)
/// [`compare_reports`] gates on the `*_rel` metrics whenever both
/// reports carry them.
pub(crate) fn probe_once() -> f64 {
    let start = Instant::now();
    let mut x = 0x9e37_79b9_7f4a_7c15_u64;
    let mut acc = 0u64;
    for _ in 0..2_000_000 {
        x = x.wrapping_mul(0xd134_2543_de82_ef95).wrapping_add(0x2545_f491_4f6c_dd1d);
        acc = acc.wrapping_add(x >> 33);
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64()
}

/// One indexed metric: the raw value oriented so bigger is better
/// (`trees_per_sec` as-is, timings negated) plus its machine-relative
/// twin (`*_rel`, negated — it's a time in probe units) when the report
/// recorded one.
#[derive(Debug, Clone, Copy)]
struct Metric {
    value: f64,
    rel: Option<f64>,
}

/// One report's comparable numbers, keyed deterministically.
///
/// Serving keys stay byte-stable across axis additions: the `layout`
/// and `score_threads` fields only suffix the key when they differ
/// from their defaults (`flat`, `1`), so a pre-axis baseline keeps
/// matching the default-configuration cells of a post-axis candidate.
fn index_report(report: &Value) -> Result<BTreeMap<String, Metric>, String> {
    let mut out = BTreeMap::new();
    let cells = report
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("report has no 'cells' array")?;
    for cell in cells {
        // Serving cells (gbdt-serve grids) carry a `strategy` axis and
        // gate on `rows_per_sec`; training cells carry a `system` axis
        // and gate on `trees_per_sec`. Both share the `wall_rel` twin.
        let (key, metric_name) = if let Some(strategy) = cell.get("strategy").and_then(Value::as_str)
        {
            let mut key = format!(
                "serve {strategy}/b{}/T{}",
                cell.get("batch").and_then(Value::as_u64).unwrap_or(0),
                cell.get("trees").and_then(Value::as_u64).unwrap_or(0),
            );
            if let Some(layout) = cell.get("layout").and_then(Value::as_str) {
                if layout != "flat" {
                    key.push('/');
                    key.push_str(layout);
                }
            }
            if let Some(s) = cell.get("score_threads").and_then(Value::as_u64) {
                if s > 1 {
                    key.push_str(&format!("/s{s}"));
                }
            }
            (key, "rows_per_sec")
        } else {
            (
                format!(
                    "cell {}/{}/{}/t{}/{}",
                    cell.get("system").and_then(Value::as_str).ok_or("cell missing 'system'")?,
                    cell.get("storage").and_then(Value::as_str).unwrap_or("?"),
                    cell.get("wire").and_then(Value::as_str).unwrap_or("?"),
                    cell.get("threads").and_then(Value::as_u64).unwrap_or(0),
                    cell.get("kernel").and_then(Value::as_str).unwrap_or("?"),
                ),
                "trees_per_sec",
            )
        };
        let throughput = cell
            .get(metric_name)
            .and_then(Value::as_f64)
            .ok_or(format!("{key} missing '{metric_name}'"))?;
        let rel = cell.get("wall_rel").and_then(Value::as_f64).filter(|r| *r > 0.0);
        out.insert(key, Metric { value: throughput, rel: rel.map(|r| -r) });
    }
    if let Some(kernels) = report.get("kernels").and_then(Value::as_object) {
        for (name, v) in kernels.iter() {
            // Only the raw timings gate (lower is better); derived ratios
            // are informational. Negate so "bigger is better" holds for
            // every indexed metric.
            if let Some(stem) = name.strip_suffix("_s") {
                let t = v.as_f64().ok_or(format!("kernel metric '{name}' is not a number"))?;
                let rel = kernels
                    .get(&format!("{stem}_rel"))
                    .and_then(Value::as_f64)
                    .filter(|r| *r > 0.0);
                out.insert(format!("kernel {name}"), Metric { value: -t, rel: rel.map(|r| -r) });
            }
        }
    }
    Ok(out)
}

/// The outcome of a baseline-vs-candidate comparison.
#[derive(Debug)]
pub struct Comparison {
    /// Metrics present in both reports.
    pub compared: usize,
    /// Human-readable description of every metric that regressed by more
    /// than the tolerance. Empty means the gate passes.
    pub regressions: Vec<String>,
}

/// Compares a candidate trajectory against the checked-in baseline.
/// A metric regresses when it is worse than `tolerance` fraction below
/// the baseline (`trees_per_sec` lower / kernel fill time higher). When
/// both sides of a metric carry its machine-relative `*_rel` twin (time
/// in units of the adjacent [`probe_once`] burst), the gate compares
/// those instead of raw seconds, so a slower machine — or a steal window
/// on a shared vCPU — doesn't read as a code regression; a metric probed
/// on only one side falls back to raw seconds rather than being skewed.
/// Errors when the reports share no metric at all — a silent no-op gate
/// is worse than a loud mismatch.
pub fn compare_reports(
    baseline: &Value,
    candidate: &Value,
    tolerance: f64,
) -> Result<Comparison, String> {
    let base = index_report(baseline)?;
    let cand = index_report(candidate)?;
    let mut compared = 0;
    let mut regressions = Vec::new();
    for (key, base_m) in &base {
        let Some(cand_m) = cand.get(key) else { continue };
        compared += 1;
        let (base_v, cand_v) = match (base_m.rel, cand_m.rel) {
            (Some(b), Some(c)) => (b, c),
            _ => (base_m.value, cand_m.value),
        };
        // Values are oriented so bigger is better (timings are negated),
        // so the allowed slack is always `tolerance` of the magnitude
        // *below* the baseline regardless of sign.
        if cand_v < base_v - tolerance * base_v.abs() {
            let (b, c) = (base_v.abs(), cand_v.abs());
            let pct = (c / b - 1.0) * 100.0;
            regressions.push(format!("{key}: {c:.4} vs baseline {b:.4} ({pct:+.1}%)"));
        }
    }
    if compared == 0 {
        return Err("baseline and candidate share no comparable metric".into());
    }
    Ok(Comparison { compared, regressions })
}

/// Reads and parses a JSON file, panicking with the path on failure
/// (these are CLI inputs; a stack trace beats a silent default).
pub fn read_json(path: &str) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
}

/// The shared `main` of every grid binary. `run_spec` is the only
/// per-grid part: it receives the parsed `--grid` JSON plus its path
/// (for error messages), prints its own "running …" banner, and returns
/// the trajectory report. Everything else — flag parsing, the
/// `--grid`/`--candidate` mutual exclusion, `--out` writing, and the
/// baseline gate with its exit code — is identical across grids and
/// lives here.
pub fn gate_main(run_spec: impl FnOnce(&Value, &str) -> Value) -> ExitCode {
    let args = Args::parse(&["grid", "out", "baseline", "candidate", "tolerance"], &[]);
    let tolerance = args.get_or("tolerance", 0.10f64);

    let candidate = match (args.get("grid"), args.get("candidate")) {
        (Some(_), Some(_)) => panic!("--grid and --candidate are mutually exclusive"),
        (None, None) => panic!("need --grid <spec.json> or --candidate <report.json>"),
        (None, Some(path)) => read_json(path),
        (Some(path), None) => {
            let report = run_spec(&read_json(path), path);
            if let Some(out) = args.get("out") {
                write_trajectory(out, &report).unwrap();
                println!("wrote {out}");
            }
            report
        }
    };

    let Some(baseline_path) = args.get("baseline") else {
        return ExitCode::SUCCESS;
    };
    let baseline = read_json(baseline_path);
    let cmp = compare_reports(&baseline, &candidate, tolerance)
        .unwrap_or_else(|e| panic!("comparison failed: {e}"));
    println!(
        "compared {} metrics against {baseline_path} (tolerance {:.0}%)",
        cmp.compared,
        tolerance * 100.0
    );
    if cmp.regressions.is_empty() {
        println!("no regressions");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} regression(s):", cmp.regressions.len());
        for r in &cmp.regressions {
            eprintln!("  REGRESSED {r}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// A hand-built report so comparison semantics are tested without
    /// training anything.
    fn tiny_report(tps: f64, kernel_s: f64) -> Value {
        json!({
            "benchmark": "unit",
            "cells": [{
                "system": "LightGBM", "storage": "dense", "wire": "dense",
                "threads": 1, "kernel": "simd",
                "trees_per_sec": tps, "wall_s": 1.0,
            }],
            "kernels": {"dense_simd_u8_s": kernel_s, "simd_vs_scalar_u8": 2.0},
        })
    }

    /// [`tiny_report`] plus machine-relative twins: `wall_rel` on the one
    /// cell and `dense_simd_u8_rel` next to the kernel timing.
    fn tiny_report_rel(tps: f64, kernel_s: f64, wall_rel: f64, kernel_rel: f64) -> Value {
        json!({
            "benchmark": "unit",
            "cells": [{
                "system": "LightGBM", "storage": "dense", "wire": "dense",
                "threads": 1, "kernel": "simd",
                "trees_per_sec": tps, "wall_s": 1.0, "wall_rel": wall_rel,
            }],
            "kernels": {
                "dense_simd_u8_s": kernel_s,
                "dense_simd_u8_rel": kernel_rel,
                "simd_vs_scalar_u8": 2.0,
            },
        })
    }

    #[test]
    fn compare_fails_on_synthetic_slowdown() {
        let baseline = tiny_report(10.0, 0.010);
        // 20% fewer trees/sec AND a 30% slower kernel: both gate.
        let slower = tiny_report(8.0, 0.013);
        let cmp = compare_reports(&baseline, &slower, 0.10).unwrap();
        assert_eq!(cmp.compared, 2);
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
        assert!(cmp.regressions[0].contains("cell LightGBM/dense/dense/t1/simd"));
        assert!(cmp.regressions[1].contains("kernel dense_simd_u8_s"));
    }

    #[test]
    fn compare_tolerates_small_noise_and_improvements() {
        let baseline = tiny_report(10.0, 0.010);
        let ok = compare_reports(&baseline, &tiny_report(9.5, 0.0104), 0.10).unwrap();
        assert!(ok.regressions.is_empty(), "{:?}", ok.regressions);
        let faster = compare_reports(&baseline, &tiny_report(14.0, 0.006), 0.10).unwrap();
        assert!(faster.regressions.is_empty());
    }

    #[test]
    fn relative_metrics_cancel_machine_slowdown() {
        // Candidate ran on a 2× slower machine: every raw timing doubles
        // (trees/sec halves), but the per-rep probe doubled with them so
        // the machine-relative twins are unchanged — no regression.
        let baseline = tiny_report_rel(10.0, 0.010, 20.0, 2.0);
        let slow_machine = tiny_report_rel(5.0, 0.020, 20.0, 2.0);
        let cmp = compare_reports(&baseline, &slow_machine, 0.10).unwrap();
        assert_eq!(cmp.compared, 2);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    fn relative_metrics_still_catch_code_regressions() {
        // Same machine speed, but the code got slower: the relative twins
        // move with the raw timings (+25% training, +30% kernel) and gate.
        let baseline = tiny_report_rel(10.0, 0.010, 20.0, 2.0);
        let regressed = tiny_report_rel(8.0, 0.013, 25.0, 2.6);
        let cmp = compare_reports(&baseline, &regressed, 0.10).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
    }

    #[test]
    fn relative_metrics_require_both_sides() {
        // Relative twins on one side only: fall back to raw seconds, so a
        // 2× slower candidate regresses rather than being silently
        // "corrected" against nothing.
        let baseline = tiny_report_rel(10.0, 0.010, 20.0, 2.0);
        let slower = tiny_report(5.0, 0.020);
        let cmp = compare_reports(&baseline, &slower, 0.10).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
    }

    #[test]
    fn compare_errors_on_disjoint_reports() {
        let baseline = tiny_report(10.0, 0.010);
        let mut other = tiny_report(10.0, 0.010);
        if let Value::Object(map) = &mut other {
            map.insert("cells".into(), json!([]));
            map.insert("kernels".into(), json!({}));
        }
        assert!(compare_reports(&baseline, &other, 0.10).is_err());
    }

    fn serve_cell(extra: Value) -> Value {
        let mut cell = json!({
            "strategy": "blocked", "batch": 256, "trees": 512,
            "rows_per_sec": 1.0e6, "wall_s": 0.1, "wall_rel": 10.0,
        });
        if let (Value::Object(map), Value::Object(add)) = (&mut cell, extra) {
            for (k, v) in add.iter() {
                map.insert(k.clone(), v.clone());
            }
        }
        json!({"benchmark": "unit", "cells": [cell]})
    }

    #[test]
    fn serve_keys_stay_stable_across_axis_additions() {
        // A pre-PR9 baseline has no layout/score_threads fields; a fresh
        // candidate at the default axes must index to the same key so old
        // baselines keep gating new runs.
        let old = serve_cell(json!({}));
        let new_defaults = serve_cell(json!({"layout": "flat", "score_threads": 1}));
        let cmp = compare_reports(&old, &new_defaults, 0.10).unwrap();
        assert_eq!(cmp.compared, 1);
        assert!(cmp.regressions.is_empty());
        // Non-default axes get their own keys — they never collide with
        // (or silently gate against) the default cell.
        let quant = serve_cell(json!({"layout": "quant", "score_threads": 4}));
        assert!(compare_reports(&old, &quant, 0.10).is_err(), "disjoint keys must be loud");
        let quant_self = compare_reports(&quant, &quant, 0.10).unwrap();
        assert_eq!(quant_self.compared, 1);
    }
}
