//! Minimal flag parser for the experiment binaries (no external CLI crate).
//!
//! Supported forms: `--key value` and `--flag`. Unknown keys are rejected so
//! typos fail loudly.

use gbdt_cluster::FaultPlan;
use gbdt_core::{Kernel, Storage, WireCodec};
use std::collections::HashMap;

/// Value keys every experiment binary accepts without listing them:
/// `--threads N` sets the intra-worker thread budget (0 = auto),
/// `--wire {dense,sparse,auto,f32}` picks the histogram wire codec,
/// `--storage {auto,sparse,dense,dense-u16}` picks the binned storage
/// layout, `--kernel {simd,scalar}` picks the dense histogram fill kernel,
/// and `--faults seed:spec` injects a deterministic fault plan (e.g.
/// `--faults "7:drop=0.05,dup=0.02,crash=1@3"`).
const UNIVERSAL_VALUE_KEYS: [&str; 5] = ["threads", "wire", "storage", "kernel", "faults"];

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    // HashMap is fine here (and outside gbdt-lint's map-iteration scope):
    // it is only ever read by key — nothing iterates it, so hash order
    // cannot reach any result or wire byte.
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`, accepting only the given keys.
    ///
    /// `value_keys` take a following value; `flag_keys` stand alone.
    pub fn parse(value_keys: &[&str], flag_keys: &[&str]) -> Args {
        Self::parse_from(std::env::args().skip(1), value_keys, flag_keys)
    }

    /// Parses an explicit iterator (testable path).
    pub fn parse_from(
        args: impl IntoIterator<Item = String>,
        value_keys: &[&str],
        flag_keys: &[&str],
    ) -> Args {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got '{arg}'"));
            if value_keys.contains(&key) || UNIVERSAL_VALUE_KEYS.contains(&key) {
                let value = iter
                    .next()
                    .unwrap_or_else(|| panic!("flag --{key} requires a value"));
                values.insert(key.to_string(), value);
            } else if flag_keys.contains(&key) {
                flags.push(key.to_string());
            } else {
                panic!(
                    "unknown flag --{key}; known: {:?} {:?} {:?}",
                    value_keys, UNIVERSAL_VALUE_KEYS, flag_keys
                );
            }
        }
        Args { values, flags }
    }

    /// String value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parsed value of `key`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.values.get(key) {
            Some(v) => v.parse().unwrap_or_else(|e| panic!("bad --{key} '{v}': {e:?}")),
            None => default,
        }
    }

    /// Whether a standalone flag was passed.
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The `--threads` budget every binary accepts (0 = auto).
    pub fn threads(&self) -> usize {
        self.get_or("threads", 0)
    }

    /// The `--wire` histogram codec every binary accepts (default: dense,
    /// the legacy bit-exact format).
    pub fn wire(&self) -> WireCodec {
        self.get_or("wire", WireCodec::Dense)
    }

    /// The `--storage` binned layout policy every binary accepts (default:
    /// auto — dense when the shard's stored-value density warrants it).
    /// Every choice trains the identical ensemble.
    pub fn storage(&self) -> Storage {
        self.get_or("storage", Storage::Auto)
    }

    /// The `--kernel` dense histogram fill kernel every binary accepts
    /// (default: simd — the lane-group fast path). Every choice trains
    /// the identical ensemble.
    pub fn kernel(&self) -> Kernel {
        self.get_or("kernel", Kernel::Simd)
    }

    /// The `--faults seed:spec` fault-injection plan every binary accepts
    /// (default: none — fault-free execution).
    pub fn faults(&self) -> Option<FaultPlan> {
        self.get("faults").map(|spec| {
            FaultPlan::parse(spec).unwrap_or_else(|e| panic!("bad --faults '{spec}': {e}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let args = Args::parse_from(
            strs(&["--scale", "100", "--summary"]),
            &["scale"],
            &["summary"],
        );
        assert_eq!(args.get_or("scale", 1.0f64), 100.0);
        assert!(args.has("summary"));
        assert!(!args.has("other"));
        assert_eq!(args.get("missing"), None);
        assert_eq!(args.get_or("missing", 7usize), 7);
    }

    #[test]
    fn threads_key_is_universal() {
        let args = Args::parse_from(strs(&["--threads", "4"]), &[], &[]);
        assert_eq!(args.threads(), 4);
        assert_eq!(Args::parse_from(strs(&[]), &[], &[]).threads(), 0);
    }

    #[test]
    fn wire_key_is_universal() {
        let args = Args::parse_from(strs(&["--wire", "auto"]), &[], &[]);
        assert_eq!(args.wire(), WireCodec::Auto);
        assert_eq!(Args::parse_from(strs(&[]), &[], &[]).wire(), WireCodec::Dense);
    }

    #[test]
    #[should_panic(expected = "bad --wire")]
    fn rejects_unknown_wire_codec() {
        Args::parse_from(strs(&["--wire", "gzip"]), &[], &[]).wire();
    }

    #[test]
    fn storage_key_is_universal() {
        let args = Args::parse_from(strs(&["--storage", "dense"]), &[], &[]);
        assert_eq!(args.storage(), Storage::Dense);
        assert_eq!(Args::parse_from(strs(&[]), &[], &[]).storage(), Storage::Auto);
    }

    #[test]
    #[should_panic(expected = "bad --storage")]
    fn rejects_unknown_storage_layout() {
        Args::parse_from(strs(&["--storage", "columnar"]), &[], &[]).storage();
    }

    #[test]
    fn kernel_key_is_universal() {
        let args = Args::parse_from(strs(&["--kernel", "scalar"]), &[], &[]);
        assert_eq!(args.kernel(), Kernel::Scalar);
        assert_eq!(Args::parse_from(strs(&[]), &[], &[]).kernel(), Kernel::Simd);
    }

    #[test]
    #[should_panic(expected = "bad --kernel")]
    fn rejects_unknown_kernel() {
        Args::parse_from(strs(&["--kernel", "avx512"]), &[], &[]).kernel();
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_keys() {
        Args::parse_from(strs(&["--bogus"]), &["scale"], &[]);
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn rejects_missing_value() {
        Args::parse_from(strs(&["--scale"]), &["scale"], &[]);
    }
}
