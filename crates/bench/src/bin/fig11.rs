//! Figure 11 — end-to-end convergence curves (§5.3).
//!
//! Four systems (XGBoost-like, LightGBM-like, DimBoost-like, Vero) on the
//! eight Table 2 datasets (scaled stand-ins): validation AUC (binary) or
//! accuracy (multi-class) against cumulative training time, one curve per
//! system, plus the per-dataset run-time table feeding Table 3.
//!
//! `--dataset <name>` restricts to one dataset; `--list-datasets` prints the
//! Table 2 inventory.

use gbdt_bench::args::Args;
use gbdt_bench::datasets;
use gbdt_bench::endtoend::{add_fault_columns, config_for, run_system};
use gbdt_bench::output::ExperimentWriter;
use gbdt_bench::systems::END_TO_END;
use gbdt_cluster::NetworkCostModel;
use serde_json::json;

/// The Figure 11 dataset line-up (Table 2 order).
pub const FIG11_DATASETS: &[&str] = &[
    "susy",
    "higgs",
    "criteo",
    "epsilon",
    "rcv1",
    "synthesis",
    "rcv1-multi",
    "synthesis-multi",
];

fn main() {
    let args = Args::parse(&["scale", "trees", "layers", "dataset", "seed"], &["list-datasets"]);
    let scale = args.get_or("scale", 1.0f64);
    let trees = args.get_or("trees", 10usize);
    let layers = args.get_or("layers", 8usize);
    let seed = args.get_or("seed", 20190805u64);
    let only = args.get("dataset").map(str::to_string);

    let mut w = ExperimentWriter::new("fig11");

    if args.has("list-datasets") {
        w.section("Table 2 — datasets (paper shape -> scaled stand-in)");
        for name in FIG11_DATASETS {
            let preset = gbdt_data::synthetic::presets::by_name(name).unwrap();
            let ds = datasets::load(name, scale, seed);
            w.row(json!({
                "dataset": name,
                "paper_N": preset.n_instances,
                "paper_D": preset.n_features,
                "labels": preset.n_classes,
                "scaled_N": ds.n_instances(),
                "scaled_D": ds.n_features(),
                "avg_nnz": ds.avg_nnz_per_row(),
            }));
        }
        return;
    }

    for name in FIG11_DATASETS {
        if let Some(o) = &only {
            if o != name {
                continue;
            }
        }
        let full = datasets::load(name, scale, seed);
        let (train, valid) = full.split_validation(0.2);
        let workers = datasets::default_workers(name);
        let multiclass = full.n_classes > 2;
        let mut cfg = config_for(&train, trees, layers);
        cfg.threads = args.threads();
        cfg.wire = args.wire();
        cfg.storage = args.storage();
        cfg.kernel = args.kernel();

        w.section(&format!(
            "{name}: N={} D={} C={} W={workers} T={trees} L={layers}",
            train.n_instances(),
            train.n_features(),
            full.n_classes
        ));
        for &system in END_TO_END {
            if multiclass && !system.supports_multiclass() {
                continue;
            }
            let run = run_system(
                system,
                &train,
                &valid,
                workers,
                NetworkCostModel::lab_cluster(),
                &cfg,
                args.faults(),
            );
            // Print the curve (downsampled to <= 10 points for the table;
            // the JSONL row carries every point).
            let step = (run.curve.len() / 10).max(1);
            let curve_cells: Vec<serde_json::Value> = run
                .curve
                .iter()
                .enumerate()
                .filter(|(i, _)| i % step == 0 || *i + 1 == run.curve.len())
                .map(|(_, p)| json!({"t": p.seconds, "metric": p.eval.headline()}))
                .collect();
            let mut row = json!({
                "dataset": name,
                "system": run.system,
                "s_per_tree": run.seconds_per_tree,
                "comp_s": run.comp_per_tree,
                "comm_s": run.comm_per_tree,
                "final_metric": run.final_metric,
                "bytes_sent": run.bytes_sent,
            });
            if args.faults().is_some() {
                add_fault_columns(&mut row, &run);
            }
            w.row(row);
            w.row_silent(json!({
                "dataset": name,
                "system": run.system,
                "curve": curve_cells,
            }));
        }
    }
    println!("\nDone. Curves written to results/fig11.jsonl (x = seconds, y = AUC/accuracy)");
}
