//! Table 7 (Appendix C) — Yggdrasil vs our QD3 vs Vero on low-dimensional
//! datasets (Epsilon, SUSY, Higgs stand-ins; W = 5).
//!
//! Expected shape: the hybrid-index QD3 beats the column-wise-index
//! Yggdrasil (whose every node split repartitions all columns), and Vero
//! (row-store) is fastest.

use gbdt_bench::args::Args;
use gbdt_bench::datasets;
use gbdt_bench::output::ExperimentWriter;
use gbdt_bench::systems::System;
use gbdt_cluster::Cluster;
use gbdt_core::TrainConfig;
use serde_json::json;

fn main() {
    let args = Args::parse(&["scale", "trees", "seed"], &[]);
    let scale = args.get_or("scale", 1.0f64);
    let trees = args.get_or("trees", 3usize);
    let seed = args.get_or("seed", 77u64);

    let mut w = ExperimentWriter::new("table7");
    w.section("time per tree (s): Yggdrasil vs QD3 (ours) vs Vero, W=5");

    for name in ["epsilon", "susy", "higgs"] {
        let ds = datasets::load(name, scale, seed);
        let cfg = TrainConfig::builder()
            .n_trees(trees)
            .n_layers(8)
            .threads(args.threads())
            .wire(args.wire())
            .storage(args.storage())
            .kernel(args.kernel())
            .build()
            .unwrap();
        let cluster = Cluster::new(5);
        let mut row = serde_json::Map::new();
        row.insert("dataset".into(), json!(name));
        row.insert("N".into(), json!(ds.n_instances()));
        row.insert("D".into(), json!(ds.n_features()));
        for system in [System::Yggdrasil, System::Qd3, System::Vero] {
            let result = system.run(&cluster, &ds, &cfg);
            row.insert(system.name().to_string(), json!(result.mean_tree_seconds()));
        }
        w.row(serde_json::Value::Object(row));
    }
    println!("\nDone. Rows written to results/table7.jsonl");
}
