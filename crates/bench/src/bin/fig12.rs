//! Figure 12 + Table 4 — the industrial workloads (§6).
//!
//! Gender (122M × 330K, binary), Age (48M × 330K, 9 classes), Taste
//! (10M × 15K, 100 classes) as scaled synthetic stand-ins, on the §6
//! production link model (10 Gbps). Systems follow the paper: Gender runs
//! XGBoost-like, DimBoost-like, and Vero; Age and Taste run XGBoost-like
//! and Vero (DimBoost does not support multi-class). Reports per-tree run
//! time (Table 4) and the convergence curves (Figure 12).

use gbdt_bench::args::Args;
use gbdt_bench::datasets;
use gbdt_bench::endtoend::{add_fault_columns, config_for, run_system};
use gbdt_bench::output::ExperimentWriter;
use gbdt_bench::systems::System;
use gbdt_cluster::NetworkCostModel;
use serde_json::json;

fn main() {
    let args = Args::parse(&["scale", "trees", "layers", "seed", "dataset"], &[]);
    let scale = args.get_or("scale", 1.0f64);
    let trees = args.get_or("trees", 3usize);
    let layers = args.get_or("layers", 8usize);
    let seed = args.get_or("seed", 60_2019u64);
    let only = args.get("dataset").map(str::to_string);

    let mut w = ExperimentWriter::new("fig12");

    let lineups: &[(&str, &[System])] = &[
        ("gender", &[System::XgboostLike, System::DimBoostLike, System::Vero]),
        ("age", &[System::XgboostLike, System::Vero]),
        ("taste", &[System::XgboostLike, System::Vero]),
    ];

    for (name, systems) in lineups {
        if let Some(o) = &only {
            if o != name {
                continue;
            }
        }
        let full = datasets::load(name, scale, seed);
        let (train, valid) = full.split_validation(0.2);
        let workers = datasets::default_workers(name);
        let mut cfg = config_for(&train, trees, layers);
        cfg.threads = args.threads();
        cfg.wire = args.wire();
        cfg.storage = args.storage();
        cfg.kernel = args.kernel();

        w.section(&format!(
            "{name}: N={} D={} C={} W={workers} (10 Gbps links, paper §6)",
            train.n_instances(),
            train.n_features(),
            full.n_classes
        ));
        for &system in *systems {
            let run = run_system(
                system,
                &train,
                &valid,
                workers,
                NetworkCostModel::production_cluster(),
                &cfg,
                args.faults(),
            );
            let last = run.curve.last().cloned();
            let mut row = json!({
                "dataset": name,
                "system": run.system,
                "s_per_tree": run.seconds_per_tree,
                "comp_s": run.comp_per_tree,
                "comm_s": run.comm_per_tree,
                "final_metric": run.final_metric,
                "total_s": last.map(|p| p.seconds).unwrap_or(0.0),
            });
            if args.faults().is_some() {
                add_fault_columns(&mut row, &run);
            }
            w.row(row);
            w.row_silent(json!({
                "dataset": name,
                "system": run.system,
                "curve": run
                    .curve
                    .iter()
                    .map(|p| json!({"t": p.seconds, "metric": p.eval.headline()}))
                    .collect::<Vec<_>>(),
            }));
        }
    }
    println!("\nDone. Table 4 = the s_per_tree column; curves in results/fig12.jsonl");
}
