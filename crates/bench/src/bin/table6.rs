//! Table 6 (Appendix B) — scalability of Vero.
//!
//! Two Synthesis subsets (the paper's Synthesis-N10M: first 10M instances;
//! Synthesis-D25K: first 25K features) trained with W ∈ {2, 4, 6, 8},
//! reporting run time per tree and speedup over W = 2. The paper's
//! observation to reproduce: sub-linear speedup, better on the
//! instance-heavy subset's sibling (N10M scales better than D25K because
//! node splitting touches every instance on every worker).

use gbdt_bench::args::Args;
use gbdt_bench::output::ExperimentWriter;
use gbdt_bench::systems::System;
use gbdt_cluster::Cluster;
use gbdt_core::TrainConfig;
use gbdt_data::synthetic::SyntheticConfig;
use serde_json::json;

fn main() {
    let args = Args::parse(&["scale", "trees", "seed"], &[]);
    let scale = args.get_or("scale", 1.0f64);
    let trees = args.get_or("trees", 3usize);
    let seed = args.get_or("seed", 66u64);

    let mut w = ExperimentWriter::new("table6");
    let cfg = TrainConfig::builder()
        .n_trees(trees)
        .n_layers(8)
        .threads(args.threads())
        .wire(args.wire())
        .storage(args.storage())
        .kernel(args.kernel())
        .build()
        .unwrap();

    // Paper subsets, scaled like the synthesis preset (N/2000, D/40),
    // keeping ~100 nonzeros per row.
    let subsets = [
        ("synthesis-n10m", (10_000_000.0 / (2_000.0 * scale)) as usize, 2_500usize, 0.04),
        ("synthesis-d25k", (50_000_000.0 / (2_000.0 * scale)) as usize, 625usize, 0.16),
    ];

    for (name, n, d, density) in subsets {
        let ds = SyntheticConfig {
            n_instances: n.max(2_000),
            n_features: d,
            n_classes: 2,
            density,
            seed,
            ..Default::default()
        }
        .generate();
        w.section(&format!("{name}: N={} D={}", ds.n_instances(), ds.n_features()));
        let mut base = None;
        for workers in [2usize, 4, 6, 8] {
            let result = System::Vero.run(&Cluster::new(workers), &ds, &cfg);
            let per_tree = result.mean_tree_seconds();
            let base_time = *base.get_or_insert(per_tree);
            w.row(json!({
                "dataset": name,
                "workers": workers,
                "s_per_tree": per_tree,
                "comp_s": result.mean_tree_comp_seconds(),
                "comm_s": result.mean_tree_comm_seconds(),
                "speedup_vs_2": base_time / per_tree,
            }));
        }
    }
    println!("\nDone. Rows written to results/table6.jsonl");
    println!("note: workers are threads on this machine; with more workers than");
    println!("cores, comp seconds reflect oversubscription — speedup shape, not");
    println!("absolute wall time, is the reproduction target.");
}
