//! Availability-grid benchmark runner with a goodput-regression gate.
//!
//! Modes (mirroring the `serve` binary):
//!
//! * **Run**: `avail --grid benchgrids/avail.json --out BENCH_PR8.json`
//!   runs every scenario of the spec through the replicated serving mesh
//!   (router + replica group + open-loop clients, optionally under a
//!   seeded fault plan), asserts zero incorrect responses and the spec's
//!   `min_availability` floor in every scenario, and writes the
//!   trajectory report with clean-vs-chaos goodput and latency
//!   percentiles.
//! * **Run + gate**: add `--baseline BENCH_PR8.json` to compare the
//!   fresh run's verified-rows goodput against a checked-in baseline;
//!   exits `1` when any scenario regresses by more than `--tolerance`
//!   (default `0.10`).
//! * **Pure compare**: `avail --baseline old.json --candidate new.json`
//!   gates two existing reports without running anything.
//!
//! Correctness and availability are gated at generation time (the run
//! panics rather than writing a trajectory that broke the contract);
//! the baseline comparison only watches goodput.

use gbdt_bench::args::Args;
use gbdt_bench::availgrid::{run_avail_grid, AvailGridSpec};
use gbdt_bench::grid::compare_reports;
use gbdt_bench::output::write_trajectory;
use serde_json::Value;
use std::process::ExitCode;

fn read_json(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let args = Args::parse(&["grid", "out", "baseline", "candidate", "tolerance"], &[]);
    let tolerance = args.get_or("tolerance", 0.10f64);

    let candidate = match (args.get("grid"), args.get("candidate")) {
        (Some(_), Some(_)) => panic!("--grid and --candidate are mutually exclusive"),
        (None, None) => panic!("need --grid <spec.json> or --candidate <report.json>"),
        (None, Some(path)) => read_json(path),
        (Some(path), None) => {
            let spec = AvailGridSpec::from_value(&read_json(path))
                .unwrap_or_else(|e| panic!("bad avail grid spec {path}: {e}"));
            println!(
                "running avail grid '{}': {} scenario(s), {} replica(s)",
                spec.name,
                spec.scenarios.len(),
                spec.n_replicas
            );
            let report = run_avail_grid(&spec);
            if let Some(out) = args.get("out") {
                write_trajectory(out, &report).unwrap();
                println!("wrote {out}");
            }
            report
        }
    };

    let Some(baseline_path) = args.get("baseline") else {
        return ExitCode::SUCCESS;
    };
    let baseline = read_json(baseline_path);
    let cmp = compare_reports(&baseline, &candidate, tolerance)
        .unwrap_or_else(|e| panic!("comparison failed: {e}"));
    println!(
        "compared {} metrics against {baseline_path} (tolerance {:.0}%)",
        cmp.compared,
        tolerance * 100.0
    );
    if cmp.regressions.is_empty() {
        println!("no regressions");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} regression(s):", cmp.regressions.len());
        for r in &cmp.regressions {
            eprintln!("  REGRESSED {r}");
        }
        ExitCode::FAILURE
    }
}
