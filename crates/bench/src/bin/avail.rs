//! Availability-grid benchmark runner with a goodput-regression gate.
//!
//! Modes (mirroring the `serve` binary):
//!
//! * **Run**: `avail --grid benchgrids/avail.json --out BENCH_PR8.json`
//!   runs every scenario of the spec through the replicated serving mesh
//!   (router + replica group + open-loop clients, optionally under a
//!   seeded fault plan), asserts zero incorrect responses and the spec's
//!   `min_availability` floor in every scenario, and writes the
//!   trajectory report with clean-vs-chaos goodput and latency
//!   percentiles.
//! * **Run + gate**: add `--baseline BENCH_PR8.json` to compare the
//!   fresh run's verified-rows goodput against a checked-in baseline;
//!   exits `1` when any scenario regresses by more than `--tolerance`
//!   (default `0.10`).
//! * **Pure compare**: `avail --baseline old.json --candidate new.json`
//!   gates two existing reports without running anything.
//!
//! Correctness and availability are gated at generation time (the run
//! panics rather than writing a trajectory that broke the contract);
//! the baseline comparison only watches goodput.

use gbdt_bench::availgrid::{run_avail_grid, AvailGridSpec};
use gbdt_bench::gate::gate_main;
use std::process::ExitCode;

fn main() -> ExitCode {
    gate_main(|spec_json, path| {
        let spec = AvailGridSpec::from_value(spec_json)
            .unwrap_or_else(|e| panic!("bad avail grid spec {path}: {e}"));
        println!(
            "running avail grid '{}': {} scenario(s), {} replica(s)",
            spec.name,
            spec.scenarios.len(),
            spec.n_replicas
        );
        run_avail_grid(&spec)
    })
}
