//! Table 3 — average run time per tree **scaled by Vero** (§5.3).
//!
//! Reruns the Figure 11 line-up and reports every system's mean
//! seconds-per-tree divided by Vero's on the same dataset (Vero ≡ 1.0),
//! which is exactly how the paper tabulates it. The expected shape:
//! LightGBM fastest on the low-dimensional dense datasets (ratios < 1),
//! Vero fastest on the high-dimensional sparse and multi-class datasets
//! (ratios > 1).

use gbdt_bench::args::Args;
use gbdt_bench::datasets;
use gbdt_bench::endtoend::{config_for, run_system};
use gbdt_bench::output::ExperimentWriter;
use gbdt_bench::systems::{System, END_TO_END};
use gbdt_cluster::NetworkCostModel;
use serde_json::json;

const DATASETS: &[&str] = &[
    "susy",
    "higgs",
    "criteo",
    "epsilon",
    "rcv1",
    "synthesis",
    "rcv1-multi",
    "synthesis-multi",
];

fn main() {
    let args = Args::parse(&["scale", "trees", "layers", "seed"], &[]);
    let scale = args.get_or("scale", 1.0f64);
    let trees = args.get_or("trees", 5usize);
    let layers = args.get_or("layers", 8usize);
    let seed = args.get_or("seed", 20190805u64);

    let mut w = ExperimentWriter::new("table3");
    w.section("run time per tree scaled by Vero (Vero = 1.0; lower = faster)");

    for name in DATASETS {
        let full = datasets::load(name, scale, seed);
        let (train, valid) = full.split_validation(0.2);
        let workers = datasets::default_workers(name);
        let mut cfg = config_for(&train, trees, layers);
        cfg.threads = args.threads();
        cfg.wire = args.wire();
        cfg.storage = args.storage();
        cfg.kernel = args.kernel();
        let multiclass = full.n_classes > 2;

        let mut seconds: Vec<(System, f64)> = Vec::new();
        let (mut retries, mut recoveries) = (0u64, 0u64);
        for &system in END_TO_END {
            if multiclass && !system.supports_multiclass() {
                continue;
            }
            let run = run_system(
                system,
                &train,
                &valid,
                workers,
                NetworkCostModel::lab_cluster(),
                &cfg,
                args.faults(),
            );
            retries += run.retries;
            recoveries += run.recoveries;
            seconds.push((system, run.seconds_per_tree));
        }
        let vero = seconds
            .iter()
            .find(|(s, _)| *s == System::Vero)
            .map(|(_, t)| *t)
            .expect("Vero always runs");
        let ratio = |sys: System| -> serde_json::Value {
            seconds
                .iter()
                .find(|(s, _)| *s == sys)
                .map(|(_, t)| json!(t / vero))
                .unwrap_or(json!("-"))
        };
        let mut row = json!({
            "dataset": name,
            "XGBoost": ratio(System::XgboostLike),
            "LightGBM": ratio(System::LightGbmLike),
            "DimBoost": ratio(System::DimBoostLike),
            "Vero": 1.0,
            "vero_s_per_tree": vero,
        });
        if args.faults().is_some() {
            // Per-tree ratios aggregate across systems, so the recovery
            // counters do too (summed over the dataset's line-up).
            if let serde_json::Value::Object(m) = &mut row {
                m.insert("retries".into(), json!(retries));
                m.insert("recoveries".into(), json!(recoveries));
            }
        }
        w.row(row);
    }
    println!("\nDone. Rows written to results/table3.jsonl");
}
