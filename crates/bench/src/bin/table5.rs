//! Table 5 (Appendix A) — efficiency of the horizontal-to-vertical
//! transformation.
//!
//! For RCV1, RCV1-multi, and Synthesis stand-ins: time for data "loading"
//! (here: synthesis + binning of shards), candidate split generation
//! (sketch build/merge), the step-4 repartition under the three wire
//! formats (naïve 12-byte pairs / compressed pairs / Vero's blockified
//! arrays), and the label broadcast — plus the bytes each format moved.

use gbdt_bench::args::Args;
use gbdt_bench::datasets;
use gbdt_bench::output::ExperimentWriter;
use gbdt_cluster::Cluster;
use gbdt_data::dataset::Dataset;
use gbdt_partition::transform::{horizontal_to_vertical, TransformConfig, WireEncoding};
use gbdt_partition::HorizontalPartition;
use gbdt_quadrants::common::shard_dataset;
use serde_json::json;
use std::time::Instant;

fn run_encoding(
    full: &Dataset,
    workers: usize,
    encoding: WireEncoding,
) -> (f64, f64, f64, f64, u64) {
    let partition = HorizontalPartition::new(full.n_instances(), workers);
    let cfg = TransformConfig { encoding, ..Default::default() };
    let cluster = Cluster::new(workers);
    let (outputs, _) = cluster.run(|ctx| {
        let shard = shard_dataset(full, partition, ctx.rank());
        let out =
            horizontal_to_vertical(ctx, &shard, partition, &cfg).expect("fault-free transform");
        out.report
    });
    let sketch = outputs.iter().map(|r| r.sketch_seconds).fold(0.0, f64::max);
    let repart_comp = outputs.iter().map(|r| r.repartition_seconds).fold(0.0, f64::max);
    let comm = outputs.iter().map(|r| r.comm_seconds).fold(0.0, f64::max);
    let labels = outputs.iter().map(|r| r.label_seconds).fold(0.0, f64::max);
    let bytes: u64 = outputs.iter().map(|r| r.repartition_bytes_sent).sum();
    (sketch, repart_comp, comm, labels, bytes)
}

fn main() {
    let args = Args::parse(&["scale", "seed"], &[]);
    let scale = args.get_or("scale", 1.0f64);
    let seed = args.get_or("seed", 55u64);

    let mut w = ExperimentWriter::new("table5");
    w.section("transformation cost: naive vs compressed vs blockified (Vero)");

    for name in ["rcv1", "rcv1-multi", "synthesis"] {
        let t_load = Instant::now();
        let full = datasets::load(name, scale, seed);
        let load_s = t_load.elapsed().as_secs_f64();
        let workers = datasets::default_workers(name);

        let mut repart = Vec::new();
        let mut sketch_s = 0.0;
        let mut label_s = 0.0;
        for encoding in [WireEncoding::Naive, WireEncoding::Compressed, WireEncoding::Blockified] {
            let (sk, rc, comm, lb, bytes) = run_encoding(&full, workers, encoding);
            sketch_s = sk;
            label_s = lb;
            repart.push((encoding, rc + comm, bytes));
        }
        w.row(json!({
            "dataset": name,
            "load_s": load_s,
            "get_splits_s": sketch_s,
            "repartition_naive_s": repart[0].1,
            "repartition_compress_s": repart[1].1,
            "repartition_vero_s": repart[2].1,
            "broadcast_label_s": label_s,
            "naive_bytes": repart[0].2,
            "compress_bytes": repart[1].2,
            "vero_bytes": repart[2].2,
        }));
    }
    println!("\nDone. Rows written to results/table5.jsonl");
}
