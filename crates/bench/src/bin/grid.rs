//! Params-grid benchmark runner with a perf-regression gate.
//!
//! Modes:
//!
//! * **Run**: `grid --grid benchgrids/pr6.json --out BENCH_PR6.json`
//!   sweeps every cell of the spec (system × storage × wire × threads ×
//!   kernel), asserts bit-identity across lossless cells, and writes the
//!   trajectory report.
//! * **Run + gate**: add `--baseline BENCH_PR6.json` to compare the fresh
//!   run against a checked-in baseline; exits `1` when any cell regresses
//!   by more than `--tolerance` (default `0.10`, i.e. 10%).
//! * **Pure compare**: `grid --baseline old.json --candidate new.json`
//!   gates two existing reports without running anything.
//!
//! The gate compares machine-relative `*_rel` metrics (timing divided by
//! an interleaved calibration probe — see `gbdt_bench::gate`) whenever
//! both reports carry them, so a slower or steal-prone machine doesn't
//! read as a code regression. The raw seconds in a baseline are still
//! machine-specific; regenerate with `--out` after intentional perf
//! changes.

use gbdt_bench::gate::gate_main;
use gbdt_bench::grid::{run_grid, GridSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    gate_main(|spec_json, path| {
        let spec = GridSpec::from_value(spec_json)
            .unwrap_or_else(|e| panic!("bad grid spec {path}: {e}"));
        println!("running grid '{}': {} cells", spec.name, spec.n_cells());
        run_grid(&spec)
    })
}
