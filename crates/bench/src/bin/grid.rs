//! Params-grid benchmark runner with a perf-regression gate.
//!
//! Modes:
//!
//! * **Run**: `grid --grid benchgrids/pr6.json --out BENCH_PR6.json`
//!   sweeps every cell of the spec (system × storage × wire × threads ×
//!   kernel), asserts bit-identity across lossless cells, and writes the
//!   trajectory report.
//! * **Run + gate**: add `--baseline BENCH_PR6.json` to compare the fresh
//!   run against a checked-in baseline; exits `1` when any cell regresses
//!   by more than `--tolerance` (default `0.10`, i.e. 10%).
//! * **Pure compare**: `grid --baseline old.json --candidate new.json`
//!   gates two existing reports without running anything.
//!
//! The gate compares machine-relative `*_rel` metrics (timing divided by
//! an interleaved calibration probe — see `gbdt_bench::grid`) whenever
//! both reports carry them, so a slower or steal-prone machine doesn't
//! read as a code regression. The raw seconds in a baseline are still
//! machine-specific; regenerate with `--out` after intentional perf
//! changes.

use gbdt_bench::args::Args;
use gbdt_bench::grid::{compare_reports, run_grid, GridSpec};
use gbdt_bench::output::write_trajectory;
use serde_json::Value;
use std::process::ExitCode;

fn read_json(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let args = Args::parse(&["grid", "out", "baseline", "candidate", "tolerance"], &[]);
    let tolerance = args.get_or("tolerance", 0.10f64);

    let candidate = match (args.get("grid"), args.get("candidate")) {
        (Some(_), Some(_)) => panic!("--grid and --candidate are mutually exclusive"),
        (None, None) => panic!("need --grid <spec.json> or --candidate <report.json>"),
        (None, Some(path)) => read_json(path),
        (Some(path), None) => {
            let spec = GridSpec::from_value(&read_json(path))
                .unwrap_or_else(|e| panic!("bad grid spec {path}: {e}"));
            println!("running grid '{}': {} cells", spec.name, spec.n_cells());
            let report = run_grid(&spec);
            if let Some(out) = args.get("out") {
                write_trajectory(out, &report).unwrap();
                println!("wrote {out}");
            }
            report
        }
    };

    let Some(baseline_path) = args.get("baseline") else {
        return ExitCode::SUCCESS;
    };
    let baseline = read_json(baseline_path);
    let cmp = compare_reports(&baseline, &candidate, tolerance)
        .unwrap_or_else(|e| panic!("comparison failed: {e}"));
    println!(
        "compared {} metrics against {baseline_path} (tolerance {:.0}%)",
        cmp.compared,
        tolerance * 100.0
    );
    if cmp.regressions.is_empty() {
        println!("no regressions");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} regression(s):", cmp.regressions.len());
        for r in &cmp.regressions {
            eprintln!("  REGRESSED {r}");
        }
        ExitCode::FAILURE
    }
}
