//! Serving-grid benchmark runner with a perf-regression gate.
//!
//! Modes (mirroring the `grid` binary):
//!
//! * **Run**: `serve --grid benchgrids/serve.json --out BENCH_PR7.json`
//!   sweeps every cell of the spec (strategy × layout × score_threads ×
//!   batch × trees), asserts bit-identity of every compiled cell against
//!   the tree-walk reference, enforces the spec's `min_blocked_speedup`
//!   gate, runs the fixed-seed traffic pass, and writes the trajectory
//!   report.
//! * **Run + gate**: add `--baseline BENCH_PR7.json` to compare the fresh
//!   run against a checked-in baseline; exits `1` when any cell regresses
//!   by more than `--tolerance` (default `0.10`).
//! * **Pure compare**: `serve --baseline old.json --candidate new.json`
//!   gates two existing reports without running anything.
//!
//! The gate compares machine-relative `*_rel` metrics whenever both
//! reports carry them (see `gbdt_bench::gate`), so a slower machine
//! doesn't read as a code regression.

use gbdt_bench::gate::gate_main;
use gbdt_bench::servegrid::{run_serve_grid, ServeGridSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    gate_main(|spec_json, path| {
        let spec = ServeGridSpec::from_value(spec_json)
            .unwrap_or_else(|e| panic!("bad serve grid spec {path}: {e}"));
        println!("running serve grid '{}': {} cells", spec.name, spec.n_cells());
        run_serve_grid(&spec)
    })
}
