//! Serving-grid benchmark runner with a perf-regression gate.
//!
//! Modes (mirroring the `grid` binary):
//!
//! * **Run**: `serve --grid benchgrids/serve.json --out BENCH_PR7.json`
//!   sweeps every cell of the spec (strategy × batch × trees), asserts
//!   bit-identity of every compiled cell against the tree-walk reference,
//!   enforces the spec's `min_blocked_speedup` gate, runs the fixed-seed
//!   traffic pass, and writes the trajectory report.
//! * **Run + gate**: add `--baseline BENCH_PR7.json` to compare the fresh
//!   run against a checked-in baseline; exits `1` when any cell regresses
//!   by more than `--tolerance` (default `0.10`).
//! * **Pure compare**: `serve --baseline old.json --candidate new.json`
//!   gates two existing reports without running anything.
//!
//! The gate compares machine-relative `*_rel` metrics whenever both
//! reports carry them (see `gbdt_bench::grid`), so a slower machine
//! doesn't read as a code regression.

use gbdt_bench::args::Args;
use gbdt_bench::grid::compare_reports;
use gbdt_bench::output::write_trajectory;
use gbdt_bench::servegrid::{run_serve_grid, ServeGridSpec};
use serde_json::Value;
use std::process::ExitCode;

fn read_json(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let args = Args::parse(&["grid", "out", "baseline", "candidate", "tolerance"], &[]);
    let tolerance = args.get_or("tolerance", 0.10f64);

    let candidate = match (args.get("grid"), args.get("candidate")) {
        (Some(_), Some(_)) => panic!("--grid and --candidate are mutually exclusive"),
        (None, None) => panic!("need --grid <spec.json> or --candidate <report.json>"),
        (None, Some(path)) => read_json(path),
        (Some(path), None) => {
            let spec = ServeGridSpec::from_value(&read_json(path))
                .unwrap_or_else(|e| panic!("bad serve grid spec {path}: {e}"));
            println!("running serve grid '{}': {} cells", spec.name, spec.n_cells());
            let report = run_serve_grid(&spec);
            if let Some(out) = args.get("out") {
                write_trajectory(out, &report).unwrap();
                println!("wrote {out}");
            }
            report
        }
    };

    let Some(baseline_path) = args.get("baseline") else {
        return ExitCode::SUCCESS;
    };
    let baseline = read_json(baseline_path);
    let cmp = compare_reports(&baseline, &candidate, tolerance)
        .unwrap_or_else(|e| panic!("comparison failed: {e}"));
    println!(
        "compared {} metrics against {baseline_path} (tolerance {:.0}%)",
        cmp.compared,
        tolerance * 100.0
    );
    if cmp.regressions.is_empty() {
        println!("no regressions");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} regression(s):", cmp.regressions.len());
        for r in &cmp.regressions {
            eprintln!("  REGRESSED {r}");
        }
        ExitCode::FAILURE
    }
}
