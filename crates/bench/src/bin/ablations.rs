//! Ablations of Vero's design choices (beyond the paper's own Table 5
//! wire-format ablation):
//!
//! * **histogram subtraction** on/off (§2.1.2: "such subtraction technique
//!   can speed up the training process considerably");
//! * **column grouping strategy** — greedy-balanced vs round-robin / hash /
//!   range on a skew-heavy dataset (§4.2.3's straggler concern);
//! * **network bandwidth sensitivity** — QD2 vs Vero across 0.1 / 1 / 10
//!   Gbps links (the §6 observation that 10 Gbps lets horizontal systems
//!   close the gap on low-dimensional data);
//! * **histogram wire codec** — dense vs sparse vs adaptive vs lossy-f32
//!   aggregation payloads on sparse high-dimensional data (DESIGN.md §4.7),
//!   reporting logical vs wire bytes, compression ratio, and wall-time;
//! * **fault recovery** — overhead of the retry/ack protocol and per-tree
//!   checkpoint replay under a seeded chaos plan (drops + duplicates +
//!   one mid-tree crash) vs the fault-free baseline on the lab-cluster
//!   link model, asserting the recovered ensemble is bit-identical.

use gbdt_bench::args::Args;
use gbdt_bench::output::ExperimentWriter;
use gbdt_bench::systems::System;
use gbdt_cluster::{Cluster, NetworkCostModel};
use gbdt_core::{TrainConfig, WireCodec};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_partition::transform::TransformConfig;
use rand::prelude::*;
use gbdt_partition::GroupingStrategy;
use gbdt_quadrants::qd4::{self, Qd4Options};
use serde_json::json;

fn main() {
    let args = Args::parse(&["scale", "trees", "workers"], &[]);
    let scale = args.get_or("scale", 1.0f64);
    let trees = args.get_or("trees", 3usize);
    let workers = args.get_or("workers", 8usize);
    let n = ((20_000.0 / scale) as usize).max(2_000);

    let mut w = ExperimentWriter::new("ablations");
    let cfg = TrainConfig::builder()
        .n_trees(trees)
        .n_layers(8)
        .threads(args.threads())
        .wire(args.wire())
        .storage(args.storage())
        .kernel(args.kernel())
        .build()
        .unwrap();

    // --- 1. Histogram subtraction ---
    w.section("histogram subtraction on/off (QD4)");
    let ds = SyntheticConfig {
        n_instances: n,
        n_features: 1_000,
        density: 0.1,
        seed: 5,
        ..Default::default()
    }
    .generate();
    for use_subtraction in [true, false] {
        let result = qd4::train_with_options(
            &Cluster::new(workers),
            &ds,
            &cfg,
            &TransformConfig::default(),
            Qd4Options { use_subtraction },
        );
        w.row(json!({
            "subtraction": use_subtraction,
            "comp_s_per_tree": result.mean_tree_comp_seconds(),
            "comm_s_per_tree": result.mean_tree_comm_seconds(),
            "hist_mb": result.stats.max_histogram_bytes() as f64 / 1e6,
        }));
    }

    // --- 2. Column grouping strategy on skewed features ---
    // A dataset where a few features are far denser than the rest: greedy
    // balancing should equalize per-worker pair counts.
    w.section("column grouping strategy (skewed feature density)");
    let skewed = {
        // Concatenate a dense block (features 0..20 on every row) with a
        // sparse tail. Build via CSR directly for exact control.
        use gbdt_data::sparse::CsrBuilder;
        let d = 800usize;
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = CsrBuilder::new(d);
        let mut labels = Vec::new();
        for _ in 0..n {
            let mut entries: Vec<(u32, f32)> = (0..20u32)
                .map(|f| (f, rng.gen_range(-1.0f32..1.0)))
                .collect();
            for f in 20..d as u32 {
                if rng.gen_bool(0.02) {
                    entries.push((f, rng.gen_range(-1.0f32..1.0)));
                }
            }
            let label = f32::from(entries[0].1 + entries[1].1 > 0.0);
            b.push_row(&entries).unwrap();
            labels.push(label);
        }
        gbdt_data::Dataset::new(gbdt_data::FeatureMatrix::Sparse(b.build()), labels, 2, "skewed")
            .unwrap()
    };
    for strategy in [
        GroupingStrategy::RoundRobin,
        GroupingStrategy::Hash,
        GroupingStrategy::Range,
        GroupingStrategy::GreedyBalanced,
    ] {
        let tcfg = TransformConfig { strategy, ..Default::default() };
        let result = qd4::train_with_transform(&Cluster::new(workers), &skewed, &cfg, &tcfg);
        // Straggler effect: max vs mean per-worker histogram-build time.
        let max_build = result
            .stats
            .workers
            .iter()
            .map(|s| s.comp(gbdt_cluster::Phase::HistogramBuild))
            .fold(0.0, f64::max);
        let mean_build = result
            .stats
            .workers
            .iter()
            .map(|s| s.comp(gbdt_cluster::Phase::HistogramBuild))
            .sum::<f64>()
            / result.stats.workers.len() as f64;
        w.row(json!({
            "strategy": format!("{strategy:?}"),
            "s_per_tree": result.mean_tree_seconds(),
            "hist_build_max_s": max_build,
            "hist_build_mean_s": mean_build,
            "straggler_ratio": max_build / mean_build.max(1e-12),
        }));
    }

    // --- 3. Bandwidth sensitivity ---
    w.section("link bandwidth sensitivity: QD2 vs Vero (s/tree, D=2500)");
    let hs = SyntheticConfig {
        n_instances: n,
        n_features: 2_500,
        density: 0.04,
        seed: 13,
        ..Default::default()
    }
    .generate();
    for gbps in [0.1f64, 1.0, 10.0] {
        let cluster = Cluster::with_cost(workers, NetworkCostModel::gbps(gbps));
        let qd2 = System::Qd2AllReduce.run(&cluster, &hs, &cfg);
        let vero = System::Vero.run(&cluster, &hs, &cfg);
        w.row(json!({
            "gbps": gbps,
            "qd2_s_per_tree": qd2.mean_tree_seconds(),
            "qd2_comm_s": qd2.mean_tree_comm_seconds(),
            "vero_s_per_tree": vero.mean_tree_seconds(),
            "vero_comm_s": vero.mean_tree_comm_seconds(),
            "speedup": qd2.mean_tree_seconds() / vero.mean_tree_seconds(),
        }));
    }
    // --- 4. Histogram wire codec ---
    // Sparse high-dimensional data keeps most bins empty below the root, so
    // the adaptive codec should cut aggregation bytes hard while staying
    // bit-identical to dense; f32 halves the residual dense payloads at the
    // cost of a (slightly) different ensemble.
    w.section("histogram wire codec (QD2 all-reduce, sparse D=2000)");
    let sparse_ds = SyntheticConfig {
        n_instances: n,
        n_features: 2_000,
        density: 0.05,
        seed: 21,
        ..Default::default()
    }
    .generate();
    let mut dense_model = None;
    for codec in WireCodec::ALL {
        let wcfg = TrainConfig::builder()
            .n_trees(trees)
            .n_layers(8)
            .threads(args.threads())
            .wire(codec)
            .build()
            .unwrap();
        let result = System::Qd2AllReduce.run(&Cluster::new(workers), &sparse_ds, &wcfg);
        let identical = match &dense_model {
            None => {
                dense_model = Some(result.model.clone());
                true
            }
            Some(m) => *m == result.model,
        };
        w.row(json!({
            "wire": codec.label(),
            "logical_mb": result.stats.total_logical_f64_bytes() as f64 / 1e6,
            "wire_mb": result.stats.total_wire_f64_bytes() as f64 / 1e6,
            "compression": result.stats.wire_compression(),
            "s_per_tree": result.mean_tree_seconds(),
            "comm_s_per_tree": result.mean_tree_comm_seconds(),
            "identical_to_dense": identical,
        }));
    }
    // --- 5. Fault recovery overhead ---
    // Same trainer, same data, same lab-cluster links — once fault-free,
    // once under a seeded chaos plan. The headline guarantee: the faulted
    // run recovers to the *bit-identical* ensemble; the rows quantify what
    // that recovery costs in modelled time and extra bytes.
    w.section("fault recovery: retry + per-tree checkpoint vs fault-free (QD2, lab cluster)");
    let chaos = gbdt_cluster::FaultPlan::parse("1031:drop=0.02,dup=0.02,crash=1@1.2")
        .expect("valid chaos spec");
    let mut baseline: Option<(f64, u64, gbdt_core::GbdtModel)> = None;
    for (label, faults) in [("fault-free", None), ("chaos", Some(chaos))] {
        let cluster = Cluster::with_cost(workers, NetworkCostModel::lab_cluster())
            .with_faults(faults);
        let result = System::Qd2AllReduce.run(&cluster, &ds, &cfg);
        let bytes = result.stats.total_bytes_sent();
        let wall = result.total_seconds();
        let identical = match &baseline {
            None => {
                baseline = Some((wall, bytes, result.model.clone()));
                true
            }
            Some((_, _, m)) => *m == result.model,
        };
        let (base_wall, base_bytes, _) = baseline.as_ref().expect("baseline recorded");
        w.row(json!({
            "mode": label,
            "s_per_tree": result.mean_tree_seconds(),
            "total_s": wall,
            "time_overhead": wall / base_wall.max(1e-12),
            "bytes_mb": bytes as f64 / 1e6,
            "byte_overhead": bytes as f64 / (*base_bytes).max(1) as f64,
            "retries": result.stats.total_retries(),
            "duplicates_dropped": result.stats.total_duplicates_dropped(),
            "recoveries": result.stats.recoveries,
            "recovery_s": result.stats.recovery_seconds,
            "identical_to_fault_free": identical,
        }));
        assert!(identical, "chaos run must recover the fault-free ensemble");
    }
    println!("\nDone. Rows written to results/ablations.jsonl");
}
