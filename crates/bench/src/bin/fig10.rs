//! Figure 10 — breakdown comparison of the quadrants (§5.2).
//!
//! Subplots (a)–(d): QD2 (horizontal+row) vs QD4 (vertical+row) per-tree
//! computation and communication time against N, D, L, C. Subplots (e)–(f):
//! per-worker memory (data vs histograms). Subplots (g)–(h): QD3
//! (vertical+column) vs QD4 against D (tiny N) and N.
//!
//! With `--summary` prints the Table 1 advantageous-scenario matrix derived
//! from the measurements.
//!
//! Shapes follow the paper with a documented down-scaling: N divided by
//! `500 × --scale`, D divided by 20; low-D sweeps keep the paper's φ = 20%
//! while high-D sweeps keep ~100 nonzeros/row (the Synthesis shape).
//! Defaults: W = 8, T = 3 trees per point, q = 20.

use gbdt_bench::args::Args;
use gbdt_bench::output::ExperimentWriter;
use gbdt_bench::systems::System;
use gbdt_cluster::Cluster;
use gbdt_core::{Objective, Storage, TrainConfig, WireCodec};
use gbdt_data::synthetic::SyntheticConfig;
use serde_json::json;

/// Sweep-invariant run settings shared by every fig10 point.
#[derive(Clone, Copy)]
struct Knobs {
    trees: usize,
    threads: usize,
    wire: WireCodec,
    storage: Storage,
    kernel: gbdt_core::Kernel,
}

struct Point {
    n: usize,
    d: usize,
    c: usize,
    l: usize,
}

fn dataset(p: &Point, seed: u64) -> gbdt_data::Dataset {
    // Low-D sweeps keep the paper's phi = 20%; high-D sweeps keep the
    // Synthesis shape of ~100 nonzeros per row (a 60 GB / 5e9-pair dataset
    // at paper scale implies ~0.1% density, not 20%).
    let density = (100.0 / p.d as f64).min(0.2);
    SyntheticConfig {
        n_instances: p.n,
        n_features: p.d,
        n_classes: p.c,
        density,
        informative_ratio: 0.2,
        label_noise: 0.05,
        dense: false,
        seed,
        ..Default::default()
    }
    .generate()
}

fn config(p: &Point, knobs: Knobs) -> TrainConfig {
    let objective = if p.c > 2 {
        Objective::Softmax { n_classes: p.c }
    } else {
        Objective::Logistic
    };
    TrainConfig::builder()
        .n_trees(knobs.trees)
        .n_layers(p.l)
        .objective(objective)
        .threads(knobs.threads)
        .wire(knobs.wire)
        .storage(knobs.storage)
        .kernel(knobs.kernel)
        .build()
        .expect("valid fig10 config")
}

fn run_point(
    w: &mut ExperimentWriter,
    system: System,
    p: &Point,
    workers: usize,
    knobs: Knobs,
    label: (&str, usize),
) {
    let ds = dataset(p, 100 + label.1 as u64);
    let cluster = Cluster::new(workers);
    let result = system.run(&cluster, &ds, &config(p, knobs));
    w.row(json!({
        "system": system.name(),
        label.0: label.1,
        "comp_s": result.mean_tree_comp_seconds(),
        "comm_s": result.mean_tree_comm_seconds(),
        "std_s": result.std_tree_seconds(),
        "bytes_sent": result.stats.total_bytes_sent(),
        "data_mb": result.stats.max_data_bytes() as f64 / 1e6,
        "hist_mb": result.stats.max_histogram_bytes() as f64 / 1e6,
        "par_speedup": result.stats.parallel_speedup(),
    }));
}

fn main() {
    let args = Args::parse(&["scale", "workers", "trees", "plot"], &["summary"]);
    let scale = args.get_or("scale", 1.0f64);
    let workers = args.get_or("workers", 8usize);
    let trees = args.get_or("trees", 3usize);
    let knobs = Knobs {
        trees,
        threads: args.threads(),
        wire: args.wire(),
        storage: args.storage(),
        kernel: args.kernel(),
    };
    let which = args.get("plot").map(str::to_string);
    let want = |p: &str| which.as_deref().is_none_or(|w| w == p);
    let sc = |n: usize| ((n as f64 / (500.0 * scale)) as usize).max(1000);

    let mut w = ExperimentWriter::new("fig10");
    let horizontal = System::Qd2AllReduce;
    let vertical = System::Vero;
    let vertical_col = System::Qd3;

    if want("a") {
        w.section("(a) impact of instance number: D=100, C=2, L=8");
        for n in [5_000_000usize, 10_000_000, 15_000_000, 20_000_000] {
            let p = Point { n: sc(n), d: 100, c: 2, l: 8 };
            run_point(&mut w, horizontal, &p, workers, knobs, ("N", p.n));
            run_point(&mut w, vertical, &p, workers, knobs, ("N", p.n));
        }
    }
    if want("b") {
        w.section("(b) impact of dimensionality: N=50M/scale, C=2, L=8");
        for d in [1_250usize, 2_500, 3_750, 5_000] {
            let p = Point { n: sc(50_000_000) / 2, d, c: 2, l: 8 };
            run_point(&mut w, horizontal, &p, workers, knobs, ("D", d));
            run_point(&mut w, vertical, &p, workers, knobs, ("D", d));
        }
    }
    if want("c") {
        w.section("(c) impact of tree depth: N=50M/scale, D=5000, C=2");
        for l in [8usize, 9, 10] {
            let p = Point { n: sc(50_000_000) / 2, d: 5_000, c: 2, l };
            run_point(&mut w, horizontal, &p, workers, Knobs { trees: trees.min(2), ..knobs }, ("L", l));
            run_point(&mut w, vertical, &p, workers, Knobs { trees: trees.min(2), ..knobs }, ("L", l));
        }
    }
    if want("d") {
        w.section("(d) impact of multi-classes: N=50M/scale, D=1250, L=8");
        for c in [3usize, 5, 10] {
            let p = Point { n: sc(50_000_000) / 2, d: 1_250, c, l: 8 };
            run_point(&mut w, horizontal, &p, workers, knobs, ("C", c));
            run_point(&mut w, vertical, &p, workers, knobs, ("C", c));
        }
    }
    if want("e") {
        w.section("(e) memory breakdown vs D: N=50M/scale, C=2, L=8");
        for d in [1_250usize, 2_500, 3_750, 5_000] {
            let p = Point { n: sc(50_000_000) / 2, d, c: 2, l: 8 };
            run_point(&mut w, horizontal, &p, workers, Knobs { trees: 2, ..knobs }, ("D", d));
            run_point(&mut w, vertical, &p, workers, Knobs { trees: 2, ..knobs }, ("D", d));
        }
    }
    if want("f") {
        w.section("(f) memory breakdown vs C: N=50M/scale, D=1250, L=8");
        for c in [3usize, 5, 10] {
            let p = Point { n: sc(50_000_000) / 2, d: 1_250, c, l: 8 };
            run_point(&mut w, horizontal, &p, workers, Knobs { trees: 2, ..knobs }, ("C", c));
            run_point(&mut w, vertical, &p, workers, Knobs { trees: 2, ..knobs }, ("C", c));
        }
    }
    if want("g") {
        w.section("(g) QD3 vs QD4, few instances: N=10K, C=2, L=8");
        for d in [1_250usize, 2_500, 3_750, 5_000] {
            let p = Point { n: 10_000, d, c: 2, l: 8 };
            run_point(&mut w, vertical_col, &p, workers, knobs, ("D", d));
            run_point(&mut w, vertical, &p, workers, knobs, ("D", d));
        }
    }
    if want("h") {
        w.section("(h) QD3 vs QD4 vs instance number: D=5000, C=2, L=8");
        for n in [10_000_000usize, 20_000_000, 30_000_000, 40_000_000] {
            let p = Point { n: sc(n), d: 5_000, c: 2, l: 8 };
            run_point(&mut w, vertical_col, &p, workers, knobs, ("N", p.n));
            run_point(&mut w, vertical, &p, workers, knobs, ("N", p.n));
        }
    }

    if args.has("summary") {
        // Table 1: the advantageous-scenario matrix, stated as measured
        // one-line verdicts over small probe workloads.
        w.section("Table 1 — advantageous scenarios (measured verdicts)");
        // The low-dimensional probe needs genuinely many instances: the
        // horizontal scheme only wins once the N-proportional costs of
        // vertical partitioning (bitmap broadcasts, full-N gradient and
        // node-split work on EVERY worker) outgrow the small histograms.
        let probes = [
            ("high_dim", Point { n: 10_000, d: 5_000, c: 2, l: 8 }),
            ("low_dim_many_inst", Point { n: ((2_000_000.0 / scale) as usize).max(100_000), d: 20, c: 2, l: 8 }),
            ("multi_class", Point { n: 10_000, d: 1_250, c: 10, l: 8 }),
            ("deep_tree", Point { n: 20_000, d: 2_500, c: 2, l: 10 }),
        ];
        for (tag, p) in probes {
            let ds = dataset(&p, 7);
            let cluster = Cluster::new(workers);
            let qd2 = System::Qd2AllReduce.run(&cluster, &ds, &config(&p, Knobs { trees: 2, ..knobs }));
            let qd4 = System::Vero.run(&cluster, &ds, &config(&p, Knobs { trees: 2, ..knobs }));
            let winner = if qd4.mean_tree_seconds() < qd2.mean_tree_seconds() {
                "QD4 (vertical+row)"
            } else {
                "QD2 (horizontal+row)"
            };
            w.row(json!({
                "scenario": tag,
                "qd2_s_per_tree": qd2.mean_tree_seconds(),
                "qd4_s_per_tree": qd4.mean_tree_seconds(),
                "winner": winner,
            }));
        }
    }
    println!("\nDone. Rows written to results/fig10.jsonl");
}
