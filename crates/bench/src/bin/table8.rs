//! Table 8 (Appendix D) — LightGBM data-parallel vs feature-parallel vs
//! Vero on the small RCV1 / RCV1-multi stand-ins.
//!
//! Expected shape: feature-parallel beats data-parallel (no histogram
//! aggregation), and Vero still wins on these small datasets because the
//! bitmap traffic does not dominate at small N.

use gbdt_bench::args::Args;
use gbdt_bench::datasets;
use gbdt_bench::output::ExperimentWriter;
use gbdt_bench::systems::System;
use gbdt_cluster::Cluster;
use gbdt_core::{Objective, TrainConfig};
use serde_json::json;

fn main() {
    let args = Args::parse(&["scale", "trees", "seed", "workers"], &[]);
    let scale = args.get_or("scale", 1.0f64);
    let trees = args.get_or("trees", 3usize);
    let seed = args.get_or("seed", 88u64);
    let workers = args.get_or("workers", 5usize);

    let mut w = ExperimentWriter::new("table8");
    w.section("time per tree (s): LightGBM-DP vs LightGBM-FP vs Vero");

    for name in ["rcv1", "rcv1-multi"] {
        let ds = datasets::load(name, scale, seed);
        let objective = if ds.n_classes > 2 {
            Objective::Softmax { n_classes: ds.n_classes }
        } else {
            Objective::Logistic
        };
        let cfg = TrainConfig::builder()
            .n_trees(trees)
            .n_layers(8)
            .objective(objective)
            .threads(args.threads())
            .wire(args.wire())
            .storage(args.storage())
            .kernel(args.kernel())
            .build()
            .unwrap();
        let cluster = Cluster::new(workers);
        let mut row = serde_json::Map::new();
        row.insert("dataset".into(), json!(name));
        for system in [System::LightGbmLike, System::LightGbmFeatureParallel, System::Vero] {
            let result = system.run(&cluster, &ds, &cfg);
            let label = match system {
                System::LightGbmLike => "LightGBM-DP",
                other => other.name(),
            };
            row.insert(label.to_string(), json!(result.mean_tree_seconds()));
            row.insert(
                format!("{label}_bytes"),
                json!(result.stats.total_bytes_sent()),
            );
        }
        w.row(serde_json::Value::Object(row));
    }
    println!("\nDone. Rows written to results/table8.jsonl");
}
