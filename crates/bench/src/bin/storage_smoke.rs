//! Perf smoke for the dense binned storage fast path (PR 4).
//!
//! Trains a small ensemble on a fully dense synthetic dataset under each
//! `--storage` layout with a row-scan quadrant (QD2) and a vertical
//! row-store quadrant (QD4/Vero), recording trees/sec, peak histogram
//! bytes, and binned-storage bytes per mode, plus a microbenchmark of the
//! raw row kernels (sparse pair walk vs dense `u8` scan under both the
//! scalar and SIMD fill kernels, `C = 1`). The report lands in
//! `BENCH_PR4.json` (override with `--out`); ensembles are asserted
//! bit-identical across every layout before anything is written.
//!
//! For the full system × storage × codec × threads × kernel sweep this
//! binary grew into, see the `grid` binary and `benchgrids/`.
//!
//! ```text
//! cargo run --release --bin storage_smoke -- --trees 10
//! ```

use gbdt_bench::args::Args;
use gbdt_bench::output::write_trajectory;
use gbdt_bench::systems::System;
use gbdt_cluster::Cluster;
use gbdt_core::binning::BinCuts;
use gbdt_core::histogram::NodeHistogram;
use gbdt_core::kernels::{fill_dense_rows, fill_sparse_rows};
use gbdt_core::{GradBuffer, Kernel, Storage, TrainConfig};
use gbdt_data::dense_binned::DenseBinnedRows;
use gbdt_data::synthetic::SyntheticConfig;
use serde_json::json;
use std::time::Instant;

fn main() {
    let args = Args::parse(&["trees", "seed", "scale", "out"], &[]);
    let trees = args.get_or("trees", 8usize);
    let seed = args.get_or("seed", 44u64);
    let scale = args.get_or("scale", 1.0f64);
    let out = args.get("out").unwrap_or("BENCH_PR4.json").to_string();

    let ds = SyntheticConfig {
        n_instances: ((6_000.0 * scale) as usize).max(500),
        n_features: 60,
        n_classes: 2,
        density: 1.0,
        seed,
        ..Default::default()
    }
    .generate();
    let cluster = Cluster::new(4);

    // End-to-end: one horizontal row-scan quadrant and one vertical
    // row-store quadrant under each layout policy.
    let mut runs = Vec::new();
    for system in [System::LightGbmLike, System::Vero] {
        let mut reference = None;
        for storage in Storage::ALL {
            let cfg = TrainConfig::builder()
                .n_trees(trees)
                .n_layers(6)
                .threads(args.threads())
                .storage(storage)
                .kernel(args.kernel())
                .build()
                .unwrap();
            let start = Instant::now();
            let result = system.run(&cluster, &ds, &cfg);
            let wall = start.elapsed().as_secs_f64();
            let model = reference.get_or_insert_with(|| result.model.clone());
            assert_eq!(
                *model,
                result.model,
                "{} trained a different ensemble under --storage {}",
                system.name(),
                storage.label()
            );
            runs.push(json!({
                "system": system.name(),
                "storage": storage.label(),
                "trees_per_sec": trees as f64 / wall,
                "wall_s": wall,
                "peak_histogram_bytes": result.stats.max_histogram_bytes(),
                "storage_bytes": result.stats.max_data_bytes(),
            }));
        }
    }

    // Kernel microbenchmark: the headline dense-vs-sparse claim on fully
    // dense data, C = 1, u8 cells, under both dense fill kernels.
    let sparse = BinCuts::from_dataset(&ds, 20).apply(&ds);
    let dense = DenseBinnedRows::from_sparse(&sparse, 20);
    let (n, d) = (sparse.n_rows(), sparse.n_features());
    let mut grads = GradBuffer::new(n, 1);
    for i in 0..n {
        grads.set(i, 0, (i % 97) as f64 * 0.01 - 0.5, 1.0);
    }
    let chunk: Vec<u32> = (0..n as u32).collect();
    let reps = 30usize.max((300.0 * scale) as usize / 10);
    let time = |mut fill: Box<dyn FnMut(&mut NodeHistogram) + '_>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut hist = NodeHistogram::new(d, 20, 1);
            let start = Instant::now();
            fill(&mut hist);
            best = best.min(start.elapsed().as_secs_f64());
            std::hint::black_box(&hist);
        }
        best
    };
    let t_sparse = time(Box::new(|h| fill_sparse_rows(h, &chunk, &sparse, &grads)));
    let t_scalar =
        time(Box::new(|h| fill_dense_rows(h, &chunk, &dense, &grads, Kernel::Scalar)));
    let t_simd = time(Box::new(|h| fill_dense_rows(h, &chunk, &dense, &grads, Kernel::Simd)));

    let report = json!({
        "benchmark": "PR4 dense binned storage fast path",
        "dataset": {
            "n_instances": ds.n_instances(),
            "n_features": ds.n_features(),
            "density": 1.0,
            "n_bins": 20,
            "trees": trees,
            "workers": 4,
        },
        "end_to_end": runs,
        "kernel_c1_u8": {
            "sparse_fill_s": t_sparse,
            "dense_fill_s": t_scalar,
            "dense_simd_fill_s": t_simd,
            "dense_speedup": t_sparse / t_scalar,
            "simd_speedup_vs_scalar": t_scalar / t_simd,
            "simd_speedup_vs_sparse": t_sparse / t_simd,
            "sparse_heap_bytes": sparse.heap_bytes(),
            "dense_heap_bytes": dense.heap_bytes(),
            "dense_bytes_ratio": dense.heap_bytes() as f64 / sparse.heap_bytes() as f64,
        },
    });
    write_trajectory(&out, &report).unwrap();
    println!(
        "kernel C=1 u8: dense scalar {:.2}x vs sparse, SIMD {:.2}x vs scalar ({:.2}x vs sparse)",
        t_sparse / t_scalar,
        t_scalar / t_simd,
        t_sparse / t_simd
    );
    println!("wrote {out}");
}
