//! Serving-grid benchmark: compiled-inference throughput sweep + traffic
//! harness.
//!
//! The serving analogue of [`crate::grid`]: a spec (JSON, see
//! `benchgrids/serve.json`) names a synthetic ensemble shape and the axes
//! to sweep — execution strategy × request batch size × tree count. Every
//! cell scores the same deterministic row set, asserts bit-identity
//! against the naive tree-walk reference (`GbdtModel::predict_row_into`),
//! and records `rows_per_sec` plus the machine-relative `wall_rel` twin
//! (same interleaved [`probe_once`] protocol as the training grid), so
//! [`crate::grid::compare_reports`] gates serving cells exactly like
//! training cells.
//!
//! The `walk` strategy is the baseline the compiled paths are measured
//! against: the model's own per-row `Option`-boxed tree walk. `per-row`
//! and `blocked` are the two `gbdt-serve` executors; the `speedups`
//! section of the report records blocked-vs-walk at every large batch so
//! the crossover is visible in the checked-in trajectory, and
//! `min_blocked_speedup` in the spec turns that into a loud gate.
//!
//! When the spec carries a `traffic` object the run closes with one
//! fixed-seed pass of the QPS harness ([`gbdt_serve::traffic`]): open-loop
//! clients, a mid-run hot-swap publish, p50/p99/p999 latency. Latency
//! percentiles are informational (no `*_rel` twin — queueing is not a
//! core-speed effect), so the regression gate ignores them.

use crate::grid::probe_once;
use gbdt_core::model::GbdtModel;
use gbdt_core::tree::Tree;
use gbdt_core::Objective;
use gbdt_serve::compile::{compile, CompiledEnsemble};
use gbdt_serve::exec::Strategy;
use gbdt_serve::traffic::{run_traffic, TrafficConfig};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// One axis entry: the naive tree-walk baseline or a compiled executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// `GbdtModel::predict_row_into` on the sparse row form — the
    /// reference every compiled strategy must match bit-for-bit, and the
    /// baseline the speedup gate divides by.
    Walk,
    /// A `gbdt-serve` execution strategy over the flattened ensemble.
    Compiled(Strategy),
}

impl Engine {
    /// Parses an axis entry (`"walk"`, `"per-row"`, `"blocked"`,
    /// `"blocked:N"`).
    pub fn parse(s: &str) -> Result<Engine, String> {
        if s == "walk" {
            Ok(Engine::Walk)
        } else {
            s.parse::<Strategy>().map(Engine::Compiled)
        }
    }

    /// Cell label (the serving strategy axis key).
    pub fn label(&self) -> String {
        match self {
            Engine::Walk => "walk".to_string(),
            Engine::Compiled(s) => s.label(),
        }
    }
}

/// Optional fixed-seed traffic pass appended to the grid report.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Client threads.
    pub n_clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Rows per request.
    pub batch: usize,
    /// Offered load, requests/s across all clients (0 = open throttle).
    pub qps: f64,
}

/// A parsed serving grid: ensemble shape plus the axes to sweep.
#[derive(Debug, Clone)]
pub struct ServeGridSpec {
    /// Report name (`"benchmark"` field of the trajectory).
    pub name: String,
    /// Row width of the synthetic ensemble and row set.
    pub n_features: usize,
    /// L — layers per tree (complete trees, so 2^(L−1) leaves).
    pub layers: usize,
    /// Rows in the scored eval set (every cell scores all of them).
    pub rows: usize,
    /// Seed for the deterministic ensemble + row generators.
    pub seed: u64,
    /// Tree-count axis.
    pub trees: Vec<usize>,
    /// Request-batch-size axis.
    pub batches: Vec<usize>,
    /// Strategy axis.
    pub strategies: Vec<Engine>,
    /// Scoring passes per cell; reported wall time is the best of them.
    pub reps: usize,
    /// When > 0: the largest-ensemble blocked-vs-walk speedup at some
    /// batch ≥ 256 must reach this factor or the run panics — the PR's
    /// acceptance criterion, enforced at report-generation time.
    pub min_blocked_speedup: f64,
    /// Optional traffic pass.
    pub traffic: Option<TrafficSpec>,
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or(format!("serve grid spec needs integer '{key}'"))
}

fn usize_axis(v: &Value, key: &str) -> Result<Vec<usize>, String> {
    match v.get(key) {
        Some(Value::Array(items)) if !items.is_empty() => items
            .iter()
            .map(|it| {
                it.as_u64()
                    .map(|t| t as usize)
                    .ok_or(format!("'{key}' entries must be integers"))
            })
            .collect(),
        _ => Err(format!("serve grid spec needs non-empty array '{key}'")),
    }
}

impl ServeGridSpec {
    /// Parses a spec from its JSON value, rejecting unknown axis entries.
    pub fn from_value(v: &Value) -> Result<ServeGridSpec, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("serve grid spec needs string 'name'")?
            .to_string();
        let strategies = match v.get("strategies") {
            Some(Value::Array(items)) if !items.is_empty() => items
                .iter()
                .map(|it| {
                    Engine::parse(
                        it.as_str().ok_or("'strategies' entries must be strings")?,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => vec![Engine::Walk, Engine::Compiled(Strategy::PerRow), Engine::Compiled(Strategy::Blocked(0))],
        };
        let traffic = match v.get("traffic") {
            None => None,
            Some(t) => Some(TrafficSpec {
                n_clients: req_u64(t, "n_clients")? as usize,
                requests_per_client: req_u64(t, "requests_per_client")? as usize,
                batch: req_u64(t, "batch")? as usize,
                qps: t.get("qps").and_then(Value::as_f64).unwrap_or(0.0),
            }),
        };
        let spec = ServeGridSpec {
            name,
            n_features: req_u64(v, "n_features")? as usize,
            layers: req_u64(v, "layers")? as usize,
            rows: req_u64(v, "rows")? as usize,
            seed: req_u64(v, "seed")?,
            trees: usize_axis(v, "trees")?,
            batches: usize_axis(v, "batches")?,
            strategies,
            reps: v.get("reps").and_then(Value::as_u64).unwrap_or(3) as usize,
            min_blocked_speedup: v
                .get("min_blocked_speedup")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            traffic,
        };
        if spec.reps == 0 {
            return Err("'reps' must be at least 1".into());
        }
        if spec.rows == 0 || spec.n_features == 0 {
            return Err("'rows' and 'n_features' must be positive".into());
        }
        if spec.batches.contains(&0) {
            return Err("'batches' entries must be positive".into());
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<ServeGridSpec, String> {
        ServeGridSpec::from_value(
            &serde_json::from_str::<Value>(text).map_err(|e| format!("{e:?}"))?,
        )
    }

    /// Number of cells the sweep will run.
    pub fn n_cells(&self) -> usize {
        self.strategies.len() * self.batches.len() * self.trees.len()
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic complete-tree ensemble: every non-bottom layer splits,
/// the bottom layer is leaves — the densest node layout per tree, which
/// is what makes the blocked executor's cache story measurable.
pub fn synthetic_model(seed: u64, n_trees: usize, n_layers: usize, n_features: usize) -> GbdtModel {
    let mut state = seed ^ 0x5e7e_ca57_0000_0001;
    let mut model = GbdtModel::new(Objective::SquaredError, 0.1, n_features);
    let internal = if n_layers > 1 { (1usize << (n_layers - 1)) - 1 } else { 0 };
    let total = (1usize << n_layers) - 1;
    for _ in 0..n_trees {
        let mut tree = Tree::new(n_layers, 1);
        for id in 0..internal {
            let feature = (splitmix(&mut state) % n_features as u64) as u32;
            let threshold = (unit(&mut state) * 4.0 - 2.0) as f32;
            let default_left = splitmix(&mut state) & 1 == 0;
            tree.set_internal(id as u32, feature, 0, threshold, default_left);
        }
        for id in internal..total {
            tree.set_leaf(id as u32, vec![unit(&mut state) * 0.2 - 0.1]);
        }
        model.trees.push(tree);
    }
    model
}

/// Deterministic NaN-bearing dense rows (~10% missing) in the thresholds'
/// value range, so traversal exercises both children and the default
/// direction.
pub fn synthetic_rows(seed: u64, n_rows: usize, n_features: usize) -> Vec<f32> {
    let mut state = seed ^ 0x0b5e_55ed_7075;
    (0..n_rows * n_features)
        .map(|_| {
            if splitmix(&mut state).is_multiple_of(10) {
                f32::NAN
            } else {
                (unit(&mut state) * 5.0 - 2.5) as f32
            }
        })
        .collect()
}

/// Sparse (feats, vals) form of the dense rows — NaN cells dropped — for
/// the tree-walk baseline, precomputed outside the timed region.
fn sparse_rows(rows: &[f32], n_features: usize) -> Vec<(Vec<u32>, Vec<f32>)> {
    rows.chunks_exact(n_features)
        .map(|row| {
            let mut feats = Vec::new();
            let mut vals = Vec::new();
            for (j, &v) in row.iter().enumerate() {
                if !v.is_nan() {
                    feats.push(j as u32);
                    vals.push(v);
                }
            }
            (feats, vals)
        })
        .collect()
}

fn walk_pass(model: &GbdtModel, sparse: &[(Vec<u32>, Vec<f32>)], out: &mut [f64]) {
    for ((feats, vals), slot) in sparse.iter().zip(out.chunks_exact_mut(1)) {
        model.predict_row_into(feats, vals, slot);
    }
}

fn compiled_pass(
    strategy: Strategy,
    ens: &CompiledEnsemble,
    rows: &[f32],
    n_features: usize,
    batch: usize,
    out: &mut [f64],
) {
    let executor = strategy.executor();
    for (row_chunk, out_chunk) in
        rows.chunks(batch * n_features).zip(out.chunks_mut(batch))
    {
        executor.predict_into(ens, row_chunk, out_chunk);
    }
}

/// Runs every cell of the serving grid and returns the trajectory report.
///
/// Panics when any compiled cell's scores differ bit-for-bit from the
/// tree-walk reference, or when `min_blocked_speedup` is set and the
/// largest ensemble's blocked-vs-walk speedup misses it at every
/// batch ≥ 256 — a perf trajectory must never be written from a run that
/// broke the PR's own contract.
pub fn run_serve_grid(spec: &ServeGridSpec) -> Value {
    let dense = synthetic_rows(spec.seed, spec.rows, spec.n_features);
    let sparse = sparse_rows(&dense, spec.n_features);
    let mut cells: Vec<Value> = Vec::new();
    // (strategy label, batch, trees) → rows/sec, for the speedup section.
    let mut throughput: BTreeMap<(String, usize, usize), f64> = BTreeMap::new();
    for &n_trees in &spec.trees {
        let model = synthetic_model(spec.seed, n_trees, spec.layers, spec.n_features);
        let ens = compile(&model, 1).unwrap_or_else(|e| panic!("compile failed: {e}"));
        let mut reference = vec![0.0f64; spec.rows];
        walk_pass(&model, &sparse, &mut reference);
        for &engine in &spec.strategies {
            for &batch in &spec.batches {
                let mut out = vec![0.0f64; spec.rows];
                let mut wall = f64::INFINITY;
                let mut best_cal = f64::INFINITY;
                for _ in 0..spec.reps {
                    best_cal = best_cal.min(probe_once());
                    let start = Instant::now();
                    match engine {
                        Engine::Walk => walk_pass(&model, &sparse, &mut out),
                        Engine::Compiled(strategy) => compiled_pass(
                            strategy,
                            &ens,
                            &dense,
                            spec.n_features,
                            batch,
                            &mut out,
                        ),
                    }
                    wall = wall.min(start.elapsed().as_secs_f64());
                    std::hint::black_box(&out);
                }
                let bits =
                    |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&out),
                    bits(&reference),
                    "{} diverged from the tree walk at T={n_trees} batch={batch}",
                    engine.label(),
                );
                let label = engine.label();
                let rows_per_sec = spec.rows as f64 / wall;
                throughput.insert((label.clone(), batch, n_trees), rows_per_sec);
                cells.push(json!({
                    "strategy": label,
                    "batch": batch,
                    "trees": n_trees,
                    "layers": spec.layers,
                    "rows": spec.rows,
                    "rows_per_sec": rows_per_sec,
                    "wall_s": wall,
                    "wall_rel": wall / best_cal,
                }));
            }
        }
    }

    // Blocked-vs-walk (and per-row-vs-walk) at every batch, per ensemble
    // size: the crossover record. The gate reads the largest ensemble at
    // batch ≥ 256.
    let mut speedups: Vec<Value> = Vec::new();
    let mut gate_best = 0.0f64;
    let max_trees = spec.trees.iter().copied().max().unwrap_or(0);
    for &n_trees in &spec.trees {
        for &batch in &spec.batches {
            let walk = throughput.get(&("walk".to_string(), batch, n_trees)).copied();
            let Some(walk) = walk.filter(|w| *w > 0.0) else { continue };
            let mut entry = serde_json::Map::new();
            entry.insert("trees".into(), json!(n_trees));
            entry.insert("batch".into(), json!(batch));
            for ((label, b, t), rps) in &throughput {
                if *b == batch && *t == n_trees && label != "walk" {
                    let factor = rps / walk;
                    entry.insert(format!("{label}_vs_walk"), json!(factor));
                    if label.starts_with("blocked") && n_trees == max_trees && batch >= 256 {
                        gate_best = gate_best.max(factor);
                    }
                }
            }
            speedups.push(Value::Object(entry));
        }
    }
    if spec.min_blocked_speedup > 0.0 {
        assert!(
            gate_best >= spec.min_blocked_speedup,
            "blocked inference is only {gate_best:.2}x the tree walk at T={max_trees}, \
             batch >= 256 — the spec demands {:.2}x",
            spec.min_blocked_speedup,
        );
    }

    let mut report = json!({
        "benchmark": spec.name,
        "serve": {
            "n_features": spec.n_features,
            "layers": spec.layers,
            "rows": spec.rows,
            "seed": spec.seed,
            "reps": spec.reps,
            "trees": spec.trees,
        },
        "cells": cells,
        "speedups": speedups,
    });
    if let Some(traffic) = &spec.traffic {
        let run = traffic_pass(spec, traffic);
        if let Value::Object(map) = &mut report {
            map.insert("traffic".to_string(), run);
        }
    }
    report
}

/// One fixed-seed pass of the QPS harness: open-loop clients against the
/// blocked executor, with a second model published mid-run so every
/// trajectory also witnesses a verified hot-swap.
fn traffic_pass(spec: &ServeGridSpec, traffic: &TrafficSpec) -> Value {
    let n_trees = spec.trees.iter().copied().min().unwrap_or(1);
    let models = [
        synthetic_model(spec.seed, n_trees, spec.layers, spec.n_features),
        synthetic_model(spec.seed ^ 0x00de_ad00, n_trees, spec.layers, spec.n_features),
    ];
    let cfg = TrafficConfig {
        n_clients: traffic.n_clients,
        requests_per_client: traffic.requests_per_client,
        batch: traffic.batch,
        qps: traffic.qps,
        strategy: Strategy::Blocked(0),
        seed: spec.seed,
    };
    let run = run_traffic(&models, &cfg).unwrap_or_else(|e| panic!("traffic pass failed: {e}"));
    json!({
        "strategy": run.strategy,
        "batch": run.batch,
        "n_trees": run.n_trees,
        "n_clients": run.n_clients,
        "target_qps": run.target_qps,
        "requests": run.requests,
        "dropped": run.dropped,
        "rows": run.rows,
        "publishes": run.publishes,
        "versions_seen": run.versions_seen,
        "wall_s": run.wall_s,
        "throughput_rps": run.throughput_rps,
        "rows_per_sec": run.rows_per_sec,
        "p50_ms": run.p50_ms,
        "p99_ms": run.p99_ms,
        "p999_ms": run.p999_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::compare_reports;

    const SPEC: &str = r#"{
        "name": "serve-unit",
        "n_features": 8,
        "layers": 4,
        "rows": 256,
        "seed": 11,
        "trees": [3, 17],
        "batches": [1, 64],
        "strategies": ["walk", "per-row", "blocked", "blocked:2"],
        "reps": 2,
        "traffic": {"n_clients": 2, "requests_per_client": 20, "batch": 4, "qps": 0}
    }"#;

    #[test]
    fn spec_parses() {
        let spec = ServeGridSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.name, "serve-unit");
        assert_eq!(spec.trees, vec![3, 17]);
        assert_eq!(spec.batches, vec![1, 64]);
        assert_eq!(spec.strategies.len(), 4);
        assert_eq!(spec.strategies[0], Engine::Walk);
        assert_eq!(spec.strategies[3], Engine::Compiled(Strategy::Blocked(2)));
        assert_eq!(spec.n_cells(), 16);
        assert_eq!(spec.reps, 2);
        assert_eq!(spec.min_blocked_speedup, 0.0);
        let t = spec.traffic.unwrap();
        assert_eq!((t.n_clients, t.requests_per_client, t.batch), (2, 20, 4));
        assert_eq!(t.qps, 0.0);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(ServeGridSpec::from_json("{").is_err());
        assert!(ServeGridSpec::from_json(r#"{"name": "x"}"#).is_err());
        let bad = SPEC.replace("\"walk\"", "\"simd\"");
        assert!(ServeGridSpec::from_json(&bad).is_err());
        let zero_batch = SPEC.replace("[1, 64]", "[0]");
        assert!(ServeGridSpec::from_json(&zero_batch).unwrap_err().contains("batches"));
        let zero_reps = SPEC.replace("\"reps\": 2", "\"reps\": 0");
        assert!(ServeGridSpec::from_json(&zero_reps).unwrap_err().contains("reps"));
    }

    #[test]
    fn serve_grid_runs_bit_identical_and_self_compares() {
        let spec = ServeGridSpec::from_json(SPEC).unwrap();
        let report = run_serve_grid(&spec);
        let cells = report.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), spec.n_cells());
        for cell in cells {
            assert!(cell.get("rows_per_sec").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(cell.get("wall_rel").and_then(Value::as_f64).unwrap() > 0.0);
        }
        // Speedup entries exist for every (trees, batch) pair and carry
        // the compiled-vs-walk factors.
        let speedups = report.get("speedups").and_then(Value::as_array).unwrap();
        assert_eq!(speedups.len(), 4);
        for s in speedups {
            assert!(s.get("per-row_vs_walk").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(s.get("blocked_vs_walk").and_then(Value::as_f64).unwrap() > 0.0);
        }
        // The traffic pass completed with a verified hot-swap and no drops.
        let traffic = report.get("traffic").and_then(Value::as_object).unwrap();
        assert_eq!(traffic.get("dropped").and_then(Value::as_u64), Some(0));
        assert_eq!(traffic.get("requests").and_then(Value::as_u64), Some(40));
        assert_eq!(traffic.get("versions_seen").unwrap(), &json!([1, 2]));
        assert!(traffic.get("throughput_rps").and_then(Value::as_f64).unwrap() > 0.0);
        // The regression gate indexes serving cells and passes against
        // itself.
        let cmp = compare_reports(&report, &report, 0.10).unwrap();
        assert!(cmp.compared >= spec.n_cells());
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    #[should_panic(expected = "the spec demands")]
    fn impossible_speedup_gate_fires() {
        let mut spec = ServeGridSpec::from_json(SPEC).unwrap();
        spec.traffic = None;
        spec.batches = vec![256];
        spec.min_blocked_speedup = 1e9;
        run_serve_grid(&spec);
    }

    #[test]
    fn synthetic_generators_are_deterministic() {
        let a = synthetic_model(7, 3, 4, 8);
        let b = synthetic_model(7, 3, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_model(8, 3, 4, 8));
        let r1 = synthetic_rows(7, 16, 8);
        let r2 = synthetic_rows(7, 16, 8);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&r1), bits(&r2));
        assert!(r1.iter().any(|v| v.is_nan()), "rows must exercise missing values");
    }
}
