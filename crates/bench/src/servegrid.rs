//! Serving-grid benchmark: compiled-inference throughput sweep + traffic
//! harness.
//!
//! The serving analogue of [`crate::grid`]: a spec (JSON, see
//! `benchgrids/serve.json`) names a synthetic ensemble shape and the axes
//! to sweep — execution strategy × node layout × score threads × request
//! batch size × tree count. Every cell scores the same deterministic row
//! set, asserts bit-identity against the naive tree-walk reference
//! (`GbdtModel::predict_row_into`), and records `rows_per_sec` plus the
//! machine-relative `wall_rel` twin (same interleaved
//! [`probe_once`] protocol as the training grid), so
//! [`crate::gate::compare_reports`] gates serving cells exactly like
//! training cells.
//!
//! The `walk` strategy is the baseline the compiled paths are measured
//! against: the model's own per-row `Option`-boxed tree walk. `per-row`
//! and `blocked` are the two `gbdt-serve` executors, each runnable over
//! the 16-byte flat or 8-byte quantized node layout (`layouts` axis) and
//! under a parallel scoring pool (`score_threads` axis); walk cells only
//! run at the default `(flat, 1)` point since neither axis applies to
//! the reference. The `speedups` section of the report records
//! every-engine-vs-walk and blocked-vs-per-row at every (trees, batch)
//! so the crossover — and how the quantized layout moves it — is visible
//! in the checked-in trajectory. Three spec gates turn trajectory claims
//! into loud failures at generation time:
//!
//! * `min_blocked_speedup` — blocked(flat, 1 thread) vs walk at the
//!   largest ensemble, batch ≥ 256.
//! * `require_blocked_crossover` — blocked must beat per-row (flat, 1
//!   thread) at the largest ensemble + largest batch: the L2-overflow
//!   regime where tiling pays for itself.
//! * `min_parallel_speedup` — best threads>1 vs threads=1 speedup of the
//!   same engine/layout at the largest ensemble. Only enforced when the
//!   machine actually has at least `max(score_threads)` cores
//!   ([`parallel_gate_enforced`]) — on a 1-core box the cells still run
//!   (bit-identity and overhead are still checked) but a wall-clock
//!   speedup is physically impossible, so the gate logs and skips
//!   instead of failing on machine shape.
//!
//! When the spec carries a `traffic` object the run closes with one
//! fixed-seed pass of the QPS harness ([`gbdt_serve::traffic`]): open-loop
//! clients, a mid-run hot-swap publish, p50/p99/p999 latency. Latency
//! percentiles are informational (no `*_rel` twin — queueing is not a
//! core-speed effect), so the regression gate ignores them.
//!
//! [`probe_once`]: crate::gate

use crate::gate::probe_once;
use gbdt_core::model::GbdtModel;
use gbdt_core::tree::Tree;
use gbdt_core::Objective;
use gbdt_serve::compile::{compile, CompiledEnsemble};
use gbdt_serve::exec::{ExecStrategy, Layout, Strategy};
use gbdt_serve::pool;
use gbdt_serve::traffic::{run_traffic, TrafficConfig};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// One axis entry: the naive tree-walk baseline or a compiled executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// `GbdtModel::predict_row_into` on the sparse row form — the
    /// reference every compiled strategy must match bit-for-bit, and the
    /// baseline the speedup gate divides by.
    Walk,
    /// A `gbdt-serve` execution strategy over the flattened ensemble.
    Compiled(Strategy),
}

impl Engine {
    /// Parses an axis entry (`"walk"`, `"per-row"`, `"blocked"`,
    /// `"blocked:N"`).
    pub fn parse(s: &str) -> Result<Engine, String> {
        if s == "walk" {
            Ok(Engine::Walk)
        } else {
            s.parse::<Strategy>().map(Engine::Compiled)
        }
    }

    /// Cell label (the serving strategy axis key).
    pub fn label(&self) -> String {
        match self {
            Engine::Walk => "walk".to_string(),
            Engine::Compiled(s) => s.label(),
        }
    }
}

/// Optional fixed-seed traffic pass appended to the grid report.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Client threads.
    pub n_clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Rows per request.
    pub batch: usize,
    /// Offered load, requests/s across all clients (0 = open throttle).
    pub qps: f64,
    /// Scoring threads inside the serving rank (1 = serial).
    pub score_threads: usize,
}

/// A parsed serving grid: ensemble shape plus the axes to sweep.
#[derive(Debug, Clone)]
pub struct ServeGridSpec {
    /// Report name (`"benchmark"` field of the trajectory).
    pub name: String,
    /// Row width of the synthetic ensemble and row set.
    pub n_features: usize,
    /// L — layers per tree (complete trees, so 2^(L−1) leaves).
    pub layers: usize,
    /// Rows in the scored eval set (every cell scores all of them).
    pub rows: usize,
    /// Seed for the deterministic ensemble + row generators.
    pub seed: u64,
    /// Tree-count axis.
    pub trees: Vec<usize>,
    /// Request-batch-size axis.
    pub batches: Vec<usize>,
    /// Strategy axis.
    pub strategies: Vec<Engine>,
    /// Node-layout axis (compiled engines only; walk ignores it).
    pub layouts: Vec<Layout>,
    /// Scoring-thread axis (compiled engines only; walk ignores it).
    pub score_threads: Vec<usize>,
    /// Scoring passes per cell; reported wall time is the best of them.
    pub reps: usize,
    /// When > 0: the largest-ensemble blocked-vs-walk speedup (flat
    /// layout, 1 thread) at some batch ≥ 256 must reach this factor or
    /// the run panics — enforced at report-generation time.
    pub min_blocked_speedup: f64,
    /// When > 0: the best threads>1 vs threads=1 speedup of any
    /// engine/layout at the largest ensemble must reach this factor —
    /// enforced only on machines with enough cores (see
    /// [`parallel_gate_enforced`]).
    pub min_parallel_speedup: f64,
    /// When set: blocked must out-score per-row (flat, 1 thread) at the
    /// largest ensemble and largest batch — the L2-overflow crossover
    /// the PR claims.
    pub require_blocked_crossover: bool,
    /// Optional traffic pass.
    pub traffic: Option<TrafficSpec>,
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or(format!("serve grid spec needs integer '{key}'"))
}

fn usize_axis(v: &Value, key: &str) -> Result<Vec<usize>, String> {
    match v.get(key) {
        Some(Value::Array(items)) if !items.is_empty() => items
            .iter()
            .map(|it| {
                it.as_u64()
                    .map(|t| t as usize)
                    .ok_or(format!("'{key}' entries must be integers"))
            })
            .collect(),
        _ => Err(format!("serve grid spec needs non-empty array '{key}'")),
    }
}

impl ServeGridSpec {
    /// Parses a spec from its JSON value, rejecting unknown axis entries.
    pub fn from_value(v: &Value) -> Result<ServeGridSpec, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("serve grid spec needs string 'name'")?
            .to_string();
        let strategies = match v.get("strategies") {
            Some(Value::Array(items)) if !items.is_empty() => items
                .iter()
                .map(|it| {
                    Engine::parse(
                        it.as_str().ok_or("'strategies' entries must be strings")?,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => vec![Engine::Walk, Engine::Compiled(Strategy::PerRow), Engine::Compiled(Strategy::Blocked(0))],
        };
        let layouts = match v.get("layouts") {
            None => vec![Layout::Flat],
            Some(Value::Array(items)) if !items.is_empty() => items
                .iter()
                .map(|it| {
                    it.as_str()
                        .ok_or("'layouts' entries must be strings".to_string())?
                        .parse::<Layout>()
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("'layouts' must be a non-empty array".into()),
        };
        let score_threads = match v.get("score_threads") {
            None => vec![1],
            Some(_) => usize_axis(v, "score_threads")?,
        };
        let traffic = match v.get("traffic") {
            None => None,
            Some(t) => Some(TrafficSpec {
                n_clients: req_u64(t, "n_clients")? as usize,
                requests_per_client: req_u64(t, "requests_per_client")? as usize,
                batch: req_u64(t, "batch")? as usize,
                qps: t.get("qps").and_then(Value::as_f64).unwrap_or(0.0),
                score_threads: t.get("score_threads").and_then(Value::as_u64).unwrap_or(1)
                    as usize,
            }),
        };
        let spec = ServeGridSpec {
            name,
            n_features: req_u64(v, "n_features")? as usize,
            layers: req_u64(v, "layers")? as usize,
            rows: req_u64(v, "rows")? as usize,
            seed: req_u64(v, "seed")?,
            trees: usize_axis(v, "trees")?,
            batches: usize_axis(v, "batches")?,
            strategies,
            layouts,
            score_threads,
            reps: v.get("reps").and_then(Value::as_u64).unwrap_or(3) as usize,
            min_blocked_speedup: v
                .get("min_blocked_speedup")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            min_parallel_speedup: v
                .get("min_parallel_speedup")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            require_blocked_crossover: v
                .get("require_blocked_crossover")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            traffic,
        };
        if spec.reps == 0 {
            return Err("'reps' must be at least 1".into());
        }
        if spec.rows == 0 || spec.n_features == 0 {
            return Err("'rows' and 'n_features' must be positive".into());
        }
        if spec.batches.contains(&0) {
            return Err("'batches' entries must be positive".into());
        }
        if spec.min_parallel_speedup > 0.0 && !spec.score_threads.iter().any(|&t| t != 1) {
            return Err(
                "'min_parallel_speedup' needs a 'score_threads' entry other than 1".into()
            );
        }
        if spec.require_blocked_crossover {
            let has = |want: fn(&Strategy) -> bool| {
                spec.strategies
                    .iter()
                    .any(|e| matches!(e, Engine::Compiled(s) if want(s)))
            };
            if !has(|s| matches!(s, Strategy::PerRow))
                || !has(|s| matches!(s, Strategy::Blocked(_)))
            {
                return Err(
                    "'require_blocked_crossover' needs both 'per-row' and a blocked strategy"
                        .into(),
                );
            }
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<ServeGridSpec, String> {
        ServeGridSpec::from_value(
            &serde_json::from_str::<Value>(text).map_err(|e| format!("{e:?}"))?,
        )
    }

    /// Number of cells the sweep will run: compiled engines span the
    /// layout × score_threads axes, walk runs only at `(flat, 1)`.
    pub fn n_cells(&self) -> usize {
        let walk = self.strategies.iter().filter(|e| **e == Engine::Walk).count();
        let compiled = self.strategies.len() - walk;
        let per_pair = walk + compiled * self.layouts.len() * self.score_threads.len();
        per_pair * self.batches.len() * self.trees.len()
    }
}

/// Whether the parallel-speedup gate is meaningful on this machine: a
/// box with fewer cores than the widest `score_threads` cell cannot
/// show a wall-clock speedup no matter how correct the code is, so the
/// gate (like the `*_rel` metrics) separates machine shape from code
/// quality and only enforces where the hardware can express the win.
pub fn parallel_gate_enforced(available_cores: usize, max_threads: usize) -> bool {
    available_cores >= max_threads
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic complete-tree ensemble: every non-bottom layer splits,
/// the bottom layer is leaves — the densest node layout per tree, which
/// is what makes the blocked executor's cache story measurable.
pub fn synthetic_model(seed: u64, n_trees: usize, n_layers: usize, n_features: usize) -> GbdtModel {
    let mut state = seed ^ 0x5e7e_ca57_0000_0001;
    let mut model = GbdtModel::new(Objective::SquaredError, 0.1, n_features);
    let internal = if n_layers > 1 { (1usize << (n_layers - 1)) - 1 } else { 0 };
    let total = (1usize << n_layers) - 1;
    for _ in 0..n_trees {
        let mut tree = Tree::new(n_layers, 1);
        for id in 0..internal {
            let feature = (splitmix(&mut state) % n_features as u64) as u32;
            let threshold = (unit(&mut state) * 4.0 - 2.0) as f32;
            let default_left = splitmix(&mut state) & 1 == 0;
            tree.set_internal(id as u32, feature, 0, threshold, default_left);
        }
        for id in internal..total {
            tree.set_leaf(id as u32, vec![unit(&mut state) * 0.2 - 0.1]);
        }
        model.trees.push(tree);
    }
    model
}

/// Deterministic NaN-bearing dense rows (~10% missing) in the thresholds'
/// value range, so traversal exercises both children and the default
/// direction.
pub fn synthetic_rows(seed: u64, n_rows: usize, n_features: usize) -> Vec<f32> {
    let mut state = seed ^ 0x0b5e_55ed_7075;
    (0..n_rows * n_features)
        .map(|_| {
            if splitmix(&mut state).is_multiple_of(10) {
                f32::NAN
            } else {
                (unit(&mut state) * 5.0 - 2.5) as f32
            }
        })
        .collect()
}

/// Sparse (feats, vals) form of the dense rows — NaN cells dropped — for
/// the tree-walk baseline, precomputed outside the timed region.
fn sparse_rows(rows: &[f32], n_features: usize) -> Vec<(Vec<u32>, Vec<f32>)> {
    rows.chunks_exact(n_features)
        .map(|row| {
            let mut feats = Vec::new();
            let mut vals = Vec::new();
            for (j, &v) in row.iter().enumerate() {
                if !v.is_nan() {
                    feats.push(j as u32);
                    vals.push(v);
                }
            }
            (feats, vals)
        })
        .collect()
}

fn walk_pass(model: &GbdtModel, sparse: &[(Vec<u32>, Vec<f32>)], out: &mut [f64]) {
    for ((feats, vals), slot) in sparse.iter().zip(out.chunks_exact_mut(1)) {
        model.predict_row_into(feats, vals, slot);
    }
}

fn compiled_pass(
    executor: &dyn ExecStrategy,
    ens: &CompiledEnsemble,
    rows: &[f32],
    n_features: usize,
    batch: usize,
    out: &mut [f64],
) {
    for (row_chunk, out_chunk) in
        rows.chunks(batch * n_features).zip(out.chunks_mut(batch))
    {
        executor.predict_into(ens, row_chunk, out_chunk);
    }
}

/// One cell's identity within a report: engine label + layout label +
/// score threads + batch + trees.
type CellKey = (String, String, usize, usize, usize);

/// Display name for a cell in the `speedups` section: the engine label,
/// suffixed like the executor labels themselves when off the default
/// axes (`blocked@quant`, `per-row+t8`, `blocked@quant+t8`).
fn display(label: &str, layout: Layout, threads: usize) -> String {
    let mut s = label.to_string();
    if layout == Layout::Quant {
        s.push_str("@quant");
    }
    if threads != 1 {
        s.push_str(&format!("+t{threads}"));
    }
    s
}

/// Runs every cell of the serving grid and returns the trajectory report.
///
/// Panics when any compiled cell's scores differ bit-for-bit from the
/// tree-walk reference, when a `quant`-layout cell compiled without a
/// quantized layout (the cell would silently measure the flat fallback),
/// or when any of the spec's gates fail — a perf trajectory must never
/// be written from a run that broke the PR's own contract.
pub fn run_serve_grid(spec: &ServeGridSpec) -> Value {
    let dense = synthetic_rows(spec.seed, spec.rows, spec.n_features);
    let sparse = sparse_rows(&dense, spec.n_features);
    let mut cells: Vec<Value> = Vec::new();
    let mut throughput: BTreeMap<CellKey, f64> = BTreeMap::new();
    for &n_trees in &spec.trees {
        let model = synthetic_model(spec.seed, n_trees, spec.layers, spec.n_features);
        let ens = compile(&model, 1).unwrap_or_else(|e| panic!("compile failed: {e}"));
        let mut reference = vec![0.0f64; spec.rows];
        walk_pass(&model, &sparse, &mut reference);
        for &engine in &spec.strategies {
            // Walk has no layout or thread pool: one cell at the default
            // point. Compiled engines sweep both axes.
            let combos: Vec<(Layout, usize)> = match engine {
                Engine::Walk => vec![(Layout::Flat, 1)],
                Engine::Compiled(_) => spec
                    .layouts
                    .iter()
                    .flat_map(|&l| spec.score_threads.iter().map(move |&t| (l, t)))
                    .collect(),
            };
            for (layout, threads) in combos {
                let executor = match engine {
                    Engine::Walk => None,
                    Engine::Compiled(strategy) => {
                        if layout == Layout::Quant {
                            assert!(
                                ens.quant.is_some(),
                                "quant cell at T={n_trees} has no quantized layout — the \
                                 cell would silently measure the flat fallback",
                            );
                        }
                        Some(pool::parallel(strategy.executor_for(layout), threads))
                    }
                };
                for &batch in &spec.batches {
                    let mut out = vec![0.0f64; spec.rows];
                    let mut wall = f64::INFINITY;
                    let mut best_cal = f64::INFINITY;
                    for _ in 0..spec.reps {
                        best_cal = best_cal.min(probe_once());
                        let start = Instant::now();
                        match &executor {
                            None => walk_pass(&model, &sparse, &mut out),
                            Some(executor) => compiled_pass(
                                executor.as_ref(),
                                &ens,
                                &dense,
                                spec.n_features,
                                batch,
                                &mut out,
                            ),
                        }
                        wall = wall.min(start.elapsed().as_secs_f64());
                        std::hint::black_box(&out);
                    }
                    let bits =
                        |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(
                        bits(&out),
                        bits(&reference),
                        "{} diverged from the tree walk at T={n_trees} batch={batch}",
                        display(&engine.label(), layout, threads),
                    );
                    let label = engine.label();
                    let rows_per_sec = spec.rows as f64 / wall;
                    throughput.insert(
                        (label.clone(), layout.label().to_string(), threads, batch, n_trees),
                        rows_per_sec,
                    );
                    cells.push(json!({
                        "strategy": label,
                        "layout": layout.label(),
                        "score_threads": threads,
                        "batch": batch,
                        "trees": n_trees,
                        "layers": spec.layers,
                        "rows": spec.rows,
                        "rows_per_sec": rows_per_sec,
                        "wall_s": wall,
                        "wall_rel": wall / best_cal,
                    }));
                }
            }
        }
    }

    // Speedup records per (trees, batch): every engine/layout/threads
    // combination vs walk, plus blocked-vs-per-row (the strategy
    // crossover) at matching layout/threads. The gates read the largest
    // ensemble.
    let mut speedups: Vec<Value> = Vec::new();
    let mut blocked_gate_best = 0.0f64;
    let mut parallel_gate_best = 0.0f64;
    let max_trees = spec.trees.iter().copied().max().unwrap_or(0);
    let max_batch = spec.batches.iter().copied().max().unwrap_or(0);
    let mut crossover_ok = false;
    for &n_trees in &spec.trees {
        for &batch in &spec.batches {
            let walk = throughput
                .get(&("walk".to_string(), Layout::Flat.label().to_string(), 1, batch, n_trees))
                .copied();
            let mut entry = serde_json::Map::new();
            entry.insert("trees".into(), json!(n_trees));
            entry.insert("batch".into(), json!(batch));
            for ((label, layout_label, threads, b, t), rps) in &throughput {
                if *b != batch || *t != n_trees || label == "walk" {
                    continue;
                }
                let layout =
                    if layout_label == "quant" { Layout::Quant } else { Layout::Flat };
                let name = display(label, layout, *threads);
                if let Some(walk) = walk.filter(|w| *w > 0.0) {
                    entry.insert(format!("{name}_vs_walk"), json!(rps / walk));
                }
                if label.starts_with("blocked") {
                    // Blocked-vs-walk gate: flat layout, serial scoring.
                    if layout == Layout::Flat
                        && *threads == 1
                        && n_trees == max_trees
                        && batch >= 256
                    {
                        if let Some(walk) = walk.filter(|w| *w > 0.0) {
                            blocked_gate_best = blocked_gate_best.max(rps / walk);
                        }
                    }
                    // Strategy crossover: blocked vs per-row at the same
                    // layout/threads/batch/trees.
                    if let Some(pr) = throughput.get(&(
                        "per-row".to_string(),
                        layout_label.clone(),
                        *threads,
                        batch,
                        n_trees,
                    )) {
                        let factor = rps / pr;
                        entry.insert(
                            format!("{name}_vs_{}", display("per-row", layout, *threads)),
                            json!(factor),
                        );
                        if layout == Layout::Flat
                            && *threads == 1
                            && n_trees == max_trees
                            && batch == max_batch
                            && factor > 1.0
                        {
                            crossover_ok = true;
                        }
                    }
                }
                // Parallel speedup: this cell vs the serial cell of the
                // same engine/layout/batch/trees.
                if *threads != 1 && n_trees == max_trees {
                    if let Some(serial) = throughput.get(&(
                        label.clone(),
                        layout_label.clone(),
                        1,
                        batch,
                        n_trees,
                    )) {
                        if *serial > 0.0 {
                            parallel_gate_best = parallel_gate_best.max(rps / serial);
                        }
                    }
                }
            }
            if entry.len() > 2 {
                speedups.push(Value::Object(entry));
            }
        }
    }
    if spec.min_blocked_speedup > 0.0 {
        assert!(
            blocked_gate_best >= spec.min_blocked_speedup,
            "blocked inference is only {blocked_gate_best:.2}x the tree walk at T={max_trees}, \
             batch >= 256 — the spec demands {:.2}x",
            spec.min_blocked_speedup,
        );
    }
    if spec.require_blocked_crossover {
        assert!(
            crossover_ok,
            "blocked did not overtake per-row (flat, 1 thread) at T={max_trees} \
             batch={max_batch} — the L2-overflow crossover the spec demands",
        );
    }
    if spec.min_parallel_speedup > 0.0 {
        let max_threads = spec.score_threads.iter().copied().max().unwrap_or(1);
        let cores =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if parallel_gate_enforced(cores, max_threads) {
            assert!(
                parallel_gate_best >= spec.min_parallel_speedup,
                "parallel scoring is only {parallel_gate_best:.2}x serial at T={max_trees} \
                 — the spec demands {:.2}x",
                spec.min_parallel_speedup,
            );
        } else {
            println!(
                "parallel-speedup gate skipped: {cores} core(s) < {max_threads} score \
                 threads (best observed {parallel_gate_best:.2}x)",
            );
        }
    }

    let mut report = json!({
        "benchmark": spec.name,
        "serve": {
            "n_features": spec.n_features,
            "layers": spec.layers,
            "rows": spec.rows,
            "seed": spec.seed,
            "reps": spec.reps,
            "trees": spec.trees,
            "layouts": spec.layouts.iter().map(|l| l.label()).collect::<Vec<_>>(),
            "score_threads": spec.score_threads,
        },
        "cells": cells,
        "speedups": speedups,
    });
    if let Some(traffic) = &spec.traffic {
        let run = traffic_pass(spec, traffic);
        if let Value::Object(map) = &mut report {
            map.insert("traffic".to_string(), run);
        }
    }
    report
}

/// One fixed-seed pass of the QPS harness: open-loop clients against the
/// blocked executor, with a second model published mid-run so every
/// trajectory also witnesses a verified hot-swap.
fn traffic_pass(spec: &ServeGridSpec, traffic: &TrafficSpec) -> Value {
    let n_trees = spec.trees.iter().copied().min().unwrap_or(1);
    let models = [
        synthetic_model(spec.seed, n_trees, spec.layers, spec.n_features),
        synthetic_model(spec.seed ^ 0x00de_ad00, n_trees, spec.layers, spec.n_features),
    ];
    let cfg = TrafficConfig {
        n_clients: traffic.n_clients,
        requests_per_client: traffic.requests_per_client,
        batch: traffic.batch,
        qps: traffic.qps,
        strategy: Strategy::Blocked(0),
        score_threads: traffic.score_threads,
        seed: spec.seed,
        ..TrafficConfig::default()
    };
    let run = run_traffic(&models, &cfg).unwrap_or_else(|e| panic!("traffic pass failed: {e}"));
    json!({
        "strategy": run.strategy,
        "batch": run.batch,
        "n_trees": run.n_trees,
        "n_clients": run.n_clients,
        "target_qps": run.target_qps,
        "requests": run.requests,
        "dropped": run.dropped,
        "rows": run.rows,
        "publishes": run.publishes,
        "versions_seen": run.versions_seen,
        "wall_s": run.wall_s,
        "throughput_rps": run.throughput_rps,
        "rows_per_sec": run.rows_per_sec,
        "p50_ms": run.p50_ms,
        "p99_ms": run.p99_ms,
        "p999_ms": run.p999_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::compare_reports;

    const SPEC: &str = r#"{
        "name": "serve-unit",
        "n_features": 8,
        "layers": 4,
        "rows": 256,
        "seed": 11,
        "trees": [3, 17],
        "batches": [1, 64],
        "strategies": ["walk", "per-row", "blocked", "blocked:2"],
        "reps": 2,
        "traffic": {"n_clients": 2, "requests_per_client": 20, "batch": 4, "qps": 0}
    }"#;

    /// SPEC plus the PR 9 axes: both layouts, serial + 3-thread scoring.
    const AXES_SPEC: &str = r#"{
        "name": "serve-axes",
        "n_features": 8,
        "layers": 4,
        "rows": 256,
        "seed": 11,
        "trees": [3, 17],
        "batches": [64, 256],
        "strategies": ["walk", "per-row", "blocked"],
        "layouts": ["flat", "quant"],
        "score_threads": [1, 3],
        "reps": 1
    }"#;

    #[test]
    fn spec_parses() {
        let spec = ServeGridSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.name, "serve-unit");
        assert_eq!(spec.trees, vec![3, 17]);
        assert_eq!(spec.batches, vec![1, 64]);
        assert_eq!(spec.strategies.len(), 4);
        assert_eq!(spec.strategies[0], Engine::Walk);
        assert_eq!(spec.strategies[3], Engine::Compiled(Strategy::Blocked(2)));
        assert_eq!(spec.layouts, vec![Layout::Flat]); // defaulted axis
        assert_eq!(spec.score_threads, vec![1]); // defaulted axis
        assert_eq!(spec.n_cells(), 16);
        assert_eq!(spec.reps, 2);
        assert_eq!(spec.min_blocked_speedup, 0.0);
        assert_eq!(spec.min_parallel_speedup, 0.0);
        assert!(!spec.require_blocked_crossover);
        let t = spec.traffic.unwrap();
        assert_eq!((t.n_clients, t.requests_per_client, t.batch), (2, 20, 4));
        assert_eq!(t.qps, 0.0);
        assert_eq!(t.score_threads, 1);
    }

    #[test]
    fn axes_spec_parses_and_counts_cells() {
        let spec = ServeGridSpec::from_json(AXES_SPEC).unwrap();
        assert_eq!(spec.layouts, vec![Layout::Flat, Layout::Quant]);
        assert_eq!(spec.score_threads, vec![1, 3]);
        // Walk runs once per (trees, batch); per-row/blocked each span
        // 2 layouts × 2 thread budgets: (1 + 2*4) * 2 batches * 2 trees.
        assert_eq!(spec.n_cells(), (1 + 2 * 4) * 2 * 2);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(ServeGridSpec::from_json("{").is_err());
        assert!(ServeGridSpec::from_json(r#"{"name": "x"}"#).is_err());
        let bad = SPEC.replace("\"walk\"", "\"simd\"");
        assert!(ServeGridSpec::from_json(&bad).is_err());
        let zero_batch = SPEC.replace("[1, 64]", "[0]");
        assert!(ServeGridSpec::from_json(&zero_batch).unwrap_err().contains("batches"));
        let zero_reps = SPEC.replace("\"reps\": 2", "\"reps\": 0");
        assert!(ServeGridSpec::from_json(&zero_reps).unwrap_err().contains("reps"));
        let bad_layout = AXES_SPEC.replace("\"quant\"", "\"packed\"");
        assert!(ServeGridSpec::from_json(&bad_layout).is_err());
        // A parallel gate without a parallel cell can never pass: loud at
        // parse time, not silently green at run time.
        let no_threads = SPEC.replace(
            "\"reps\": 2",
            "\"reps\": 2, \"min_parallel_speedup\": 1.5",
        );
        assert!(ServeGridSpec::from_json(&no_threads)
            .unwrap_err()
            .contains("min_parallel_speedup"));
        // Crossover gate needs both strategies present.
        let no_perrow = AXES_SPEC.replace(
            "\"per-row\", ",
            "",
        );
        let crossover = no_perrow.replace(
            "\"reps\": 1",
            "\"reps\": 1, \"require_blocked_crossover\": true",
        );
        assert!(ServeGridSpec::from_json(&crossover)
            .unwrap_err()
            .contains("require_blocked_crossover"));
    }

    #[test]
    fn serve_grid_runs_bit_identical_and_self_compares() {
        let spec = ServeGridSpec::from_json(SPEC).unwrap();
        let report = run_serve_grid(&spec);
        let cells = report.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), spec.n_cells());
        for cell in cells {
            assert!(cell.get("rows_per_sec").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(cell.get("wall_rel").and_then(Value::as_f64).unwrap() > 0.0);
            assert_eq!(cell.get("layout").and_then(Value::as_str), Some("flat"));
            assert_eq!(cell.get("score_threads").and_then(Value::as_u64), Some(1));
        }
        // Speedup entries exist for every (trees, batch) pair and carry
        // the compiled-vs-walk factors.
        let speedups = report.get("speedups").and_then(Value::as_array).unwrap();
        assert_eq!(speedups.len(), 4);
        for s in speedups {
            assert!(s.get("per-row_vs_walk").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(s.get("blocked_vs_walk").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(s.get("blocked_vs_per-row").and_then(Value::as_f64).unwrap() > 0.0);
        }
        // The traffic pass completed with a verified hot-swap and no drops.
        let traffic = report.get("traffic").and_then(Value::as_object).unwrap();
        assert_eq!(traffic.get("dropped").and_then(Value::as_u64), Some(0));
        assert_eq!(traffic.get("requests").and_then(Value::as_u64), Some(40));
        assert_eq!(traffic.get("versions_seen").unwrap(), &json!([1, 2]));
        assert!(traffic.get("throughput_rps").and_then(Value::as_f64).unwrap() > 0.0);
        // The regression gate indexes serving cells and passes against
        // itself.
        let cmp = compare_reports(&report, &report, 0.10).unwrap();
        assert!(cmp.compared >= spec.n_cells());
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    fn axes_grid_runs_quant_and_parallel_cells_bit_identical() {
        let spec = ServeGridSpec::from_json(AXES_SPEC).unwrap();
        let report = run_serve_grid(&spec);
        let cells = report.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), spec.n_cells());
        // Every (layout, threads) combination produced compiled cells —
        // run_serve_grid already asserted each one bit-matches the walk.
        for (layout, threads) in
            [("flat", 1), ("flat", 3), ("quant", 1), ("quant", 3)]
        {
            let n = cells
                .iter()
                .filter(|c| {
                    c.get("layout").and_then(Value::as_str) == Some(layout)
                        && c.get("score_threads").and_then(Value::as_u64)
                            == Some(threads)
                        && c.get("strategy").and_then(Value::as_str) != Some("walk")
                })
                .count();
            assert_eq!(n, 2 * 2 * 2, "strategies x batches x trees at {layout}/t{threads}");
        }
        // The speedup section names off-default combos like the executor
        // labels do.
        let speedups = report.get("speedups").and_then(Value::as_array).unwrap();
        assert!(speedups.iter().any(|s| s.get("blocked@quant_vs_walk").is_some()));
        assert!(speedups.iter().any(|s| s.get("blocked+t3_vs_walk").is_some()));
        assert!(speedups
            .iter()
            .any(|s| s.get("blocked@quant+t3_vs_per-row@quant+t3").is_some()));
        // Self-comparison covers the suffixed keys too.
        let cmp = compare_reports(&report, &report, 0.10).unwrap();
        assert!(cmp.compared >= spec.n_cells());
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    #[should_panic(expected = "the spec demands")]
    fn impossible_speedup_gate_fires() {
        let mut spec = ServeGridSpec::from_json(SPEC).unwrap();
        spec.traffic = None;
        spec.batches = vec![256];
        spec.min_blocked_speedup = 1e9;
        run_serve_grid(&spec);
    }

    #[test]
    fn parallel_gate_is_machine_aware() {
        // The gate only binds when the box can physically show a speedup.
        assert!(parallel_gate_enforced(8, 4));
        assert!(parallel_gate_enforced(4, 4));
        assert!(!parallel_gate_enforced(1, 4));
        assert!(!parallel_gate_enforced(2, 8));
    }

    #[test]
    fn synthetic_generators_are_deterministic() {
        let a = synthetic_model(7, 3, 4, 8);
        let b = synthetic_model(7, 3, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_model(8, 3, 4, 8));
        let r1 = synthetic_rows(7, 16, 8);
        let r2 = synthetic_rows(7, 16, 8);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&r1), bits(&r2));
        assert!(r1.iter().any(|v| v.is_nan()), "rows must exercise missing values");
    }
}
