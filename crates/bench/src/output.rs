//! Experiment output: aligned human-readable tables on stdout plus
//! machine-readable JSONL rows under `results/`.

use serde_json::Value;
use std::fs::{create_dir_all, File};
use std::io::Write;
use std::path::PathBuf;

/// Writes one experiment's rows to `results/<name>.jsonl` while echoing an
/// aligned table to stdout.
pub struct ExperimentWriter {
    name: String,
    file: Option<File>,
    columns: Vec<String>,
}

impl ExperimentWriter {
    /// Opens (truncates) `results/<name>.jsonl`.
    pub fn new(name: &str) -> ExperimentWriter {
        let dir = PathBuf::from("results");
        let file = create_dir_all(&dir)
            .and_then(|_| File::create(dir.join(format!("{name}.jsonl"))))
            .ok();
        if file.is_none() {
            eprintln!("warning: cannot write results/{name}.jsonl; printing only");
        }
        ExperimentWriter { name: name.to_string(), file, columns: Vec::new() }
    }

    /// Prints a section heading.
    pub fn section(&mut self, title: &str) {
        println!("\n=== {} — {title} ===", self.name);
        self.columns.clear();
    }

    /// Writes a row to the JSONL file only (no table output) — for bulky
    /// payloads like full convergence curves.
    pub fn row_silent(&mut self, row: Value) {
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{row}");
        }
    }

    /// Emits one row (a JSON object). The first row of a section prints the
    /// header; values print right-aligned in 14-char cells.
    pub fn row(&mut self, row: Value) {
        let obj = row.as_object().expect("rows are JSON objects");
        if self.columns.is_empty() {
            self.columns = obj.keys().cloned().collect();
            println!("{}", self.columns.iter().map(|c| format!("{c:>16}")).collect::<String>());
        }
        let line: String = self
            .columns
            .iter()
            .map(|c| format!("{:>16}", render(obj.get(c).unwrap_or(&Value::Null))))
            .collect();
        println!("{line}");
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{row}");
        }
    }
}

fn render(v: &Value) -> String {
    match v {
        Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{f}")
                } else if f.abs() >= 100.0 {
                    format!("{f:.1}")
                } else {
                    format!("{f:.4}")
                }
            } else {
                n.to_string()
            }
        }
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Pretty-prints a JSON value: 2-space indentation, one key or element per
/// line. The serde_json shim's `to_string_pretty` prints compactly, so
/// everything that lands in a checked-in trajectory file routes through
/// this printer instead.
pub fn to_pretty_string(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, v, 0);
    out
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (k, item) in items.iter().enumerate() {
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
                if k + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            let n = map.len();
            for (k, (key, val)) in map.iter().enumerate() {
                push_indent(out, indent + 1);
                // Reuse the compact writer's string escaping for the key.
                out.push_str(&Value::String(key.clone()).to_string());
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
                if k + 1 < n {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
        scalar => out.push_str(&scalar.to_string()),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes a benchmark trajectory file (`BENCH_*.json`): pretty-printed,
/// newline-terminated JSON — the format every checked-in trajectory uses.
pub fn write_trajectory(path: &str, report: &Value) -> std::io::Result<()> {
    let mut text = to_pretty_string(report);
    text.push('\n');
    std::fs::write(path, text)
}

/// Formats bytes as a human-readable string.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{v:.2}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn human_bytes_scales() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.00KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00MB");
    }

    #[test]
    fn render_formats_numbers() {
        assert_eq!(render(&json!(3)), "3");
        assert_eq!(render(&json!(1.23456)), "1.2346");
        assert_eq!(render(&json!(12345.6)), "12345.6");
        assert_eq!(render(&json!("x")), "x");
    }

    #[test]
    fn pretty_round_trips_and_indents() {
        let v = json!({
            "name": "demo",
            "cells": [{"a": 1, "b": "x\"y"}, {"a": 2.5, "b": null}],
            "empty_list": [],
            "empty_obj": {},
            "flag": true,
        });
        let text = to_pretty_string(&v);
        assert_eq!(serde_json::from_str::<Value>(&text).unwrap(), v, "round trip");
        assert!(text.starts_with("{\n  \"name\": \"demo\""), "got:\n{text}");
        assert!(text.contains("\n  \"cells\": [\n    {\n      \"a\": 1"), "got:\n{text}");
        assert!(text.contains("\"empty_list\": []"));
        assert!(text.ends_with('}') && !text.ends_with('\n'));
    }

    #[test]
    fn trajectory_files_are_pretty_and_newline_terminated() {
        let path = "results/unit-test-trajectory.json";
        std::fs::create_dir_all("results").unwrap();
        let v = json!({"k": [1, 2]});
        write_trajectory(path, &v).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.ends_with("]\n}\n"), "got: {text:?}");
        assert_eq!(serde_json::from_str::<Value>(&text).unwrap(), v);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn writer_accepts_rows() {
        // Uses the current dir; tolerate readonly environments.
        let mut w = ExperimentWriter::new("unit-test");
        w.section("demo");
        w.row(json!({"a": 1, "b": "x"}));
        w.row(json!({"a": 2, "b": "y"}));
        std::fs::remove_file("results/unit-test.jsonl").ok();
    }
}
