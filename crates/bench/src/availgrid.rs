//! Availability-grid benchmark: replicated serving under scripted chaos.
//!
//! The robustness analogue of [`crate::servegrid`]: a spec (JSON, see
//! `benchgrids/avail.json`) names a synthetic ensemble shape, a replica
//! group, and a list of **scenarios** — each a label plus an optional
//! seeded fault spec in the `FaultPlan::parse` grammar (`seed:drop=…,
//! tag=serve_route,…`). Every scenario runs the full replicated mesh
//! ([`gbdt_serve::avail::run_avail`]): router, replicas, open-loop
//! clients, bit-exact verification of every response against its stamped
//! `(version, trees_scored)`.
//!
//! Two invariants are enforced at report-generation time, so a
//! trajectory can never be written from a run that broke the PR's own
//! contract:
//!
//! * `incorrect == 0` in **every** scenario — chaos may cost
//!   availability, never correctness;
//! * `availability ≥ min_availability` (spec-wide, overridable per
//!   scenario) — the ISSUE's 99% floor for the chaos acceptance run.
//!
//! Each scenario also contributes a `cells` entry keyed
//! `avail-<label>` with its verified-rows throughput, so
//! [`crate::grid::compare_reports`] gates availability goodput exactly
//! like serving and training cells. Latency percentiles and the
//! clean-vs-chaos deltas are recorded informationally (queueing and
//! recovery sleeps are not a core-speed effect).

use crate::servegrid::synthetic_model;
use gbdt_cluster::FaultPlan;
use gbdt_serve::avail::{run_avail, AvailConfig, AvailOutcome};
use gbdt_serve::exec::{Layout, Strategy};
use serde_json::{json, Value};

/// One chaos scenario: a label, an optional fault spec, and optional
/// overload knobs layered over the grid-wide defaults.
#[derive(Debug, Clone)]
pub struct AvailScenario {
    /// Scenario label (cell key `avail-<label>`; `clean` is the baseline
    /// the chaos deltas are computed against).
    pub label: String,
    /// Fault spec in the [`FaultPlan::parse`] grammar, or `None` for a
    /// fault-free run. Validated at spec-parse time — an unknown tag
    /// name or malformed clause rejects the whole grid before anything
    /// runs.
    pub faults: Option<String>,
    /// Override of the grid-wide client count (overload scenarios).
    pub n_clients: Option<usize>,
    /// Router queue-cap override.
    pub queue_cap: Option<usize>,
    /// Router high-water override.
    pub high_water: Option<usize>,
    /// Degraded-mode tree budget override (0 = never degrade).
    pub degrade_trees: Option<u32>,
    /// Scoring-thread override for this scenario's replicas; falls back
    /// to the grid-wide `score_threads`.
    pub score_threads: Option<usize>,
    /// Availability floor for this scenario; falls back to the
    /// grid-wide `min_availability`.
    pub min_availability: Option<f64>,
}

/// A parsed availability grid: ensemble + mesh shape plus the scenarios.
#[derive(Debug, Clone)]
pub struct AvailGridSpec {
    /// Report name (`"benchmark"` field of the trajectory).
    pub name: String,
    /// Row width of the synthetic ensemble and client batches.
    pub n_features: usize,
    /// L — layers per tree of the synthetic models.
    pub layers: usize,
    /// Trees per synthetic model.
    pub trees: usize,
    /// Models in the publish sequence (`≥ 1`; models beyond the first
    /// are hot-swapped mid-run through the router).
    pub n_models: usize,
    /// Seed for the synthetic models and client rows.
    pub seed: u64,
    /// Serving replicas behind the router.
    pub n_replicas: usize,
    /// Client ranks driving load (per scenario unless overridden).
    pub n_clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Rows per request.
    pub batch: usize,
    /// Aggregate offered load, requests/second; 0 = open throttle.
    pub qps: f64,
    /// Execution strategy every replica runs.
    pub strategy: Strategy,
    /// Node layout every replica scores over.
    pub layout: Layout,
    /// Scoring threads inside each replica (per scenario unless
    /// overridden; 1 = serial).
    pub score_threads: usize,
    /// The scenario axis.
    pub scenarios: Vec<AvailScenario>,
    /// Grid-wide availability floor (0 disables the gate).
    pub min_availability: f64,
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or(format!("avail grid spec needs integer '{key}'"))
}

fn opt_usize(v: &Value, key: &str) -> Option<usize> {
    v.get(key).and_then(Value::as_u64).map(|n| n as usize)
}

impl AvailGridSpec {
    /// Parses a spec from its JSON value. Every scenario's fault spec is
    /// parsed through [`FaultPlan::parse`] here — the `tag=` grammar's
    /// parse-time rejection means a typo'd tag name fails the whole grid
    /// load, not a half-finished run.
    pub fn from_value(v: &Value) -> Result<AvailGridSpec, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("avail grid spec needs string 'name'")?
            .to_string();
        let strategy = match v.get("strategy") {
            None => Strategy::PerRow,
            Some(s) => s
                .as_str()
                .ok_or("'strategy' must be a string")?
                .parse::<Strategy>()?,
        };
        let layout = match v.get("layout") {
            None => Layout::Flat,
            Some(l) => l
                .as_str()
                .ok_or("'layout' must be a string")?
                .parse::<Layout>()?,
        };
        let scenarios = match v.get("scenarios") {
            Some(Value::Array(items)) if !items.is_empty() => items
                .iter()
                .map(|s| {
                    let label = s
                        .get("label")
                        .and_then(Value::as_str)
                        .ok_or("every scenario needs string 'label'")?
                        .to_string();
                    let faults = match s.get("faults") {
                        None | Some(Value::Null) => None,
                        Some(f) => {
                            let text = f.as_str().ok_or(format!(
                                "scenario '{label}': 'faults' must be a spec string"
                            ))?;
                            FaultPlan::parse(text)
                                .map_err(|e| format!("scenario '{label}': {e}"))?;
                            Some(text.to_string())
                        }
                    };
                    Ok(AvailScenario {
                        label,
                        faults,
                        n_clients: opt_usize(s, "n_clients"),
                        queue_cap: opt_usize(s, "queue_cap"),
                        high_water: opt_usize(s, "high_water"),
                        degrade_trees: s
                            .get("degrade_trees")
                            .and_then(Value::as_u64)
                            .map(|n| n as u32),
                        score_threads: opt_usize(s, "score_threads"),
                        min_availability: s.get("min_availability").and_then(Value::as_f64),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("avail grid spec needs non-empty array 'scenarios'".into()),
        };
        let spec = AvailGridSpec {
            name,
            n_features: req_u64(v, "n_features")? as usize,
            layers: req_u64(v, "layers")? as usize,
            trees: req_u64(v, "trees")? as usize,
            n_models: v.get("n_models").and_then(Value::as_u64).unwrap_or(1) as usize,
            seed: req_u64(v, "seed")?,
            n_replicas: req_u64(v, "replicas")? as usize,
            n_clients: req_u64(v, "clients")? as usize,
            requests_per_client: req_u64(v, "requests_per_client")? as usize,
            batch: req_u64(v, "batch")? as usize,
            qps: v.get("qps").and_then(Value::as_f64).unwrap_or(0.0),
            strategy,
            layout,
            score_threads: v.get("score_threads").and_then(Value::as_u64).unwrap_or(1)
                as usize,
            scenarios,
            min_availability: v
                .get("min_availability")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        };
        if spec.n_models == 0 || spec.trees == 0 {
            return Err("'n_models' and 'trees' must be positive".into());
        }
        if spec.n_replicas == 0 || spec.n_clients == 0 {
            return Err("'replicas' and 'clients' must be positive".into());
        }
        if spec.batch == 0 || spec.requests_per_client == 0 {
            return Err("'batch' and 'requests_per_client' must be positive".into());
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<AvailGridSpec, String> {
        AvailGridSpec::from_value(
            &serde_json::from_str::<Value>(text).map_err(|e| format!("{e:?}"))?,
        )
    }
}

fn scenario_config(spec: &AvailGridSpec, sc: &AvailScenario) -> AvailConfig {
    let mut cfg = AvailConfig {
        label: sc.label.clone(),
        n_replicas: spec.n_replicas,
        n_clients: sc.n_clients.unwrap_or(spec.n_clients),
        requests_per_client: spec.requests_per_client,
        batch: spec.batch,
        qps: spec.qps,
        strategy: spec.strategy,
        layout: spec.layout,
        score_threads: sc.score_threads.unwrap_or(spec.score_threads),
        seed: spec.seed,
        ..AvailConfig::default()
    };
    if let Some(cap) = sc.queue_cap {
        cfg.router.queue_cap = cap;
    }
    if let Some(hw) = sc.high_water {
        cfg.router.high_water = hw;
    }
    if let Some(dt) = sc.degrade_trees {
        cfg.router.degrade_trees = dt;
    }
    cfg
}

fn scenario_value(sc: &AvailScenario, outcome: &AvailOutcome) -> Value {
    let run = &outcome.run;
    json!({
        "label": run.label,
        "faults": sc.faults,
        "n_replicas": run.n_replicas,
        "n_clients": run.n_clients,
        "target_qps": run.target_qps,
        "requests": run.requests,
        "served": run.served,
        "degraded": run.degraded,
        "shed": run.shed,
        "failed": run.failed,
        "failed_over": run.failed_over,
        "hedges": run.hedges,
        "retries": run.retries,
        "recoveries": run.recoveries,
        "duplicates_suppressed": run.duplicates_suppressed,
        "incorrect": run.incorrect,
        "availability": run.availability,
        "goodput_rps": run.goodput_rps,
        "versions_seen": run.versions_seen,
        "wall_s": run.wall_s,
        "p50_ms": run.p50_ms,
        "p99_ms": run.p99_ms,
        "p999_ms": run.p999_ms,
        "replica_crashes": outcome.replicas.iter().map(|r| r.crashes).sum::<u64>(),
        "replica_requests": outcome.replicas.iter().map(|r| r.requests).collect::<Vec<_>>(),
    })
}

/// Runs every scenario of the availability grid and returns the
/// trajectory report.
///
/// Panics when any scenario records an incorrect response or misses its
/// availability floor — the same never-write-a-broken-trajectory policy
/// as the serving grid's bit-identity assert.
pub fn run_avail_grid(spec: &AvailGridSpec) -> Value {
    let models: Vec<_> = (0..spec.n_models)
        .map(|k| {
            synthetic_model(
                spec.seed ^ (k as u64) << 8,
                spec.trees,
                spec.layers,
                spec.n_features,
            )
        })
        .collect();
    let mut cells: Vec<Value> = Vec::new();
    let mut scenarios: Vec<Value> = Vec::new();
    let mut clean_goodput = None;
    let mut deltas: Vec<Value> = Vec::new();
    for sc in &spec.scenarios {
        let cfg = scenario_config(spec, sc);
        let faults = sc
            .faults
            .as_deref()
            .map(|text| FaultPlan::parse(text).unwrap_or_else(|e| panic!("{e}")));
        let outcome = run_avail(&models, &cfg, faults)
            .unwrap_or_else(|e| panic!("scenario '{}' failed: {e}", sc.label));
        let run = &outcome.run;
        assert_eq!(
            run.incorrect, 0,
            "scenario '{}' produced bit-inexact responses: {run:?}",
            sc.label,
        );
        let floor = sc.min_availability.unwrap_or(spec.min_availability);
        assert!(
            run.availability >= floor,
            "scenario '{}' availability {:.4} below the {floor:.4} floor: {run:?}",
            sc.label,
            run.availability,
        );
        // Verified rows per second: the goodput the regression gate
        // tracks, in the same unit as the serving grid's cells.
        cells.push(json!({
            "strategy": format!("avail-{}", sc.label),
            "batch": spec.batch,
            "trees": spec.trees,
            "rows_per_sec": run.goodput_rps * spec.batch as f64,
        }));
        if sc.faults.is_none() && clean_goodput.is_none() {
            clean_goodput = Some((run.goodput_rps, run.p99_ms));
        } else if let Some((clean_rps, clean_p99)) = clean_goodput {
            if sc.faults.is_some() && clean_rps > 0.0 {
                deltas.push(json!({
                    "label": sc.label,
                    "goodput_vs_clean": run.goodput_rps / clean_rps,
                    "p99_ms_clean": clean_p99,
                    "p99_ms_chaos": run.p99_ms,
                    "availability": run.availability,
                }));
            }
        }
        scenarios.push(scenario_value(sc, &outcome));
    }
    json!({
        "benchmark": spec.name,
        "avail": {
            "n_features": spec.n_features,
            "layers": spec.layers,
            "trees": spec.trees,
            "n_models": spec.n_models,
            "seed": spec.seed,
            "replicas": spec.n_replicas,
            "clients": spec.n_clients,
            "requests_per_client": spec.requests_per_client,
            "batch": spec.batch,
            "strategy": spec.strategy.label(),
            "layout": spec.layout.label(),
            "score_threads": spec.score_threads,
            "min_availability": spec.min_availability,
        },
        "cells": cells,
        "scenarios": scenarios,
        "chaos_vs_clean": deltas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::compare_reports;

    const SPEC: &str = r#"{
        "name": "avail-unit",
        "n_features": 6,
        "layers": 3,
        "trees": 8,
        "n_models": 2,
        "seed": 17,
        "replicas": 2,
        "clients": 2,
        "requests_per_client": 30,
        "batch": 4,
        "strategy": "blocked",
        "min_availability": 0.99,
        "scenarios": [
            {"label": "clean"},
            {"label": "lossy", "faults": "9:drop=0.04,dup=0.04,tag=serve_route,tag=serve_reply"}
        ]
    }"#;

    /// SPEC re-pointed at the quantized layout with parallel replica
    /// scoring, plus a per-scenario thread override.
    fn quant_spec() -> String {
        SPEC.replace(
            "\"strategy\": \"blocked\",",
            "\"strategy\": \"blocked\", \"layout\": \"quant\", \"score_threads\": 2,",
        )
        .replace(
            "{\"label\": \"clean\"}",
            "{\"label\": \"clean\", \"score_threads\": 1}",
        )
    }

    #[test]
    fn spec_parses() {
        let spec = AvailGridSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.name, "avail-unit");
        assert_eq!(spec.n_models, 2);
        assert_eq!(spec.strategy, Strategy::Blocked(0));
        assert_eq!(spec.scenarios.len(), 2);
        assert_eq!(spec.scenarios[0].label, "clean");
        assert!(spec.scenarios[0].faults.is_none());
        assert!(spec.scenarios[1].faults.as_deref().unwrap().contains("drop"));
        assert_eq!(spec.min_availability, 0.99);
        // Layout/threads default to serial flat scoring.
        assert_eq!(spec.layout, Layout::Flat);
        assert_eq!(spec.score_threads, 1);
        assert_eq!(spec.scenarios[0].score_threads, None);
    }

    #[test]
    fn spec_parses_layout_and_thread_overrides() {
        let spec = AvailGridSpec::from_json(&quant_spec()).unwrap();
        assert_eq!(spec.layout, Layout::Quant);
        assert_eq!(spec.score_threads, 2);
        assert_eq!(spec.scenarios[0].score_threads, Some(1));
        assert_eq!(spec.scenarios[1].score_threads, None);
        let cfg0 = scenario_config(&spec, &spec.scenarios[0]);
        assert_eq!((cfg0.layout, cfg0.score_threads), (Layout::Quant, 1));
        let cfg1 = scenario_config(&spec, &spec.scenarios[1]);
        assert_eq!((cfg1.layout, cfg1.score_threads), (Layout::Quant, 2));
        let bad = quant_spec().replace("\"quant\"", "\"packed\"");
        assert!(AvailGridSpec::from_json(&bad).is_err());
    }

    #[test]
    fn spec_rejects_garbage_and_bad_fault_grammar() {
        assert!(AvailGridSpec::from_json("{").is_err());
        assert!(AvailGridSpec::from_json(r#"{"name": "x"}"#).is_err());
        // A typo'd tag name is rejected at parse time, before anything runs.
        let bad_tag = SPEC.replace("tag=serve_reply", "tag=serve_replyy");
        let err = AvailGridSpec::from_json(&bad_tag).unwrap_err();
        assert!(err.contains("lossy") && err.contains("serve_replyy"), "{err}");
        let bad_clause = SPEC.replace("drop=0.04", "drop=oops");
        assert!(AvailGridSpec::from_json(&bad_clause).is_err());
        let no_scenarios = SPEC.replace("\"scenarios\"", "\"scenes\"");
        assert!(AvailGridSpec::from_json(&no_scenarios).unwrap_err().contains("scenarios"));
    }

    #[test]
    fn avail_grid_runs_gates_and_self_compares() {
        let spec = AvailGridSpec::from_json(SPEC).unwrap();
        let report = run_avail_grid(&spec);
        let cells = report.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), 2);
        for cell in cells {
            assert!(cell.get("rows_per_sec").and_then(Value::as_f64).unwrap() > 0.0);
        }
        let scenarios = report.get("scenarios").and_then(Value::as_array).unwrap();
        assert_eq!(scenarios.len(), 2);
        for s in scenarios {
            assert_eq!(s.get("incorrect").and_then(Value::as_u64), Some(0));
            assert!(s.get("availability").and_then(Value::as_f64).unwrap() >= 0.99);
            // Both versions of the publish sequence were served.
            assert_eq!(s.get("versions_seen").unwrap(), &json!([1, 2]));
        }
        // The chaos delta section pairs the lossy scenario with clean.
        let deltas = report.get("chaos_vs_clean").and_then(Value::as_array).unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].get("goodput_vs_clean").and_then(Value::as_f64).unwrap() > 0.0);
        // The regression gate indexes availability cells and passes
        // against itself.
        let cmp = compare_reports(&report, &report, 0.10).unwrap();
        assert!(cmp.compared >= 2);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    #[should_panic(expected = "below the")]
    fn impossible_availability_floor_fires() {
        let mut spec = AvailGridSpec::from_json(SPEC).unwrap();
        spec.scenarios.truncate(1);
        spec.scenarios[0].min_availability = Some(2.0);
        run_avail_grid(&spec);
    }
}
