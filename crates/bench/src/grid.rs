//! Params-grid benchmark runner + perf-regression comparison.
//!
//! A grid spec (JSON, see `benchgrids/`) names a synthetic dataset and the
//! axes to sweep — system × storage × wire codec × threads × kernel. The
//! runner trains every cell, asserts bit-identity across all
//! lossless-codec cells of one system (the determinism contract every PR
//! leans on), optionally times the raw fill kernels on the same data, and
//! emits a trajectory report ([`crate::output::write_trajectory`] format)
//! that gets checked in as `BENCH_PRn.json`.
//!
//! [`compare_reports`] is the regression gate: given the last checked-in
//! baseline and a fresh candidate it matches cells by their full axis key
//! and reports every cell whose `trees_per_sec` dropped — or kernel whose
//! fill time rose — by more than the tolerance. The `grid` binary exits
//! nonzero on any regression, which is what CI's `perf` job enforces.
//! Timings are machine-specific: a baseline only gates runs on hardware
//! comparable to the machine that produced it (regenerate the baseline
//! when the fleet changes).

use crate::systems::System;
use gbdt_cluster::Cluster;
use gbdt_core::binning::BinCuts;
use gbdt_core::histogram::NodeHistogram;
use gbdt_core::kernels::{fill_dense_rows, fill_sparse_rows};
use gbdt_core::{GradBuffer, Kernel, Storage, TrainConfig, WireCodec};
use gbdt_data::dense_binned::{BinWidth, DenseBinnedRows};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// A parsed params grid: dataset shape plus the axes to sweep.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Report name (`"benchmark"` field of the trajectory).
    pub name: String,
    /// Synthetic dataset: instances, features, classes, density, seed.
    pub dataset: SyntheticConfig,
    /// T — trees per cell.
    pub trees: usize,
    /// L — layers per tree.
    pub layers: usize,
    /// W — cluster size.
    pub workers: usize,
    /// q — histogram bins (also the kernel-microbench pack width driver).
    pub n_bins: usize,
    /// Systems axis (paper names, e.g. `"LightGBM"`, `"Vero"`).
    pub systems: Vec<System>,
    /// Storage-layout axis.
    pub storage: Vec<Storage>,
    /// Wire-codec axis.
    pub wire: Vec<WireCodec>,
    /// Thread-budget axis (0 = auto).
    pub threads: Vec<usize>,
    /// Dense fill-kernel axis.
    pub kernels: Vec<Kernel>,
    /// Whether to also time the raw fill kernels (sparse, dense scalar,
    /// dense SIMD × u8/u16) on the grid dataset.
    pub kernel_microbench: bool,
    /// Training runs per cell; the reported wall time is the best of them.
    /// Cells run ~0.1 s, short enough that a co-tenant burst can distort a
    /// single sample by well over the gate tolerance — best-of-N recovers
    /// the quiet-machine time on both sides of the comparison.
    pub reps: usize,
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or(format!("grid spec needs integer '{key}'"))
}

fn axis<T, F: Fn(&str) -> Result<T, String>>(
    v: &Value,
    key: &str,
    default: T,
    parse: F,
) -> Result<Vec<T>, String> {
    match v.get(key) {
        None => Ok(vec![default]),
        Some(Value::Array(items)) => items
            .iter()
            .map(|it| parse(it.as_str().ok_or(format!("'{key}' entries must be strings"))?))
            .collect(),
        Some(_) => Err(format!("'{key}' must be an array")),
    }
}

impl GridSpec {
    /// Parses a spec from its JSON value, rejecting unknown axis entries.
    pub fn from_value(v: &Value) -> Result<GridSpec, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("grid spec needs string 'name'")?
            .to_string();
        let ds = v.get("dataset").ok_or("grid spec needs object 'dataset'")?;
        let dataset = SyntheticConfig {
            n_instances: req_u64(ds, "n_instances")? as usize,
            n_features: req_u64(ds, "n_features")? as usize,
            n_classes: ds.get("n_classes").and_then(Value::as_u64).unwrap_or(2) as usize,
            density: ds.get("density").and_then(Value::as_f64).unwrap_or(1.0),
            seed: req_u64(ds, "seed")?,
            ..Default::default()
        };
        let spec = GridSpec {
            name,
            dataset,
            trees: req_u64(v, "trees")? as usize,
            layers: req_u64(v, "layers")? as usize,
            workers: req_u64(v, "workers")? as usize,
            n_bins: v.get("n_bins").and_then(Value::as_u64).unwrap_or(20) as usize,
            systems: axis(v, "systems", System::LightGbmLike, |s| {
                System::from_name(s).ok_or(format!("unknown system '{s}'"))
            })?,
            storage: axis(v, "storage", Storage::Auto, |s| s.parse())?,
            wire: axis(v, "wire", WireCodec::Dense, |s| s.parse())?,
            threads: match v.get("threads") {
                None => vec![0],
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|it| {
                        it.as_u64().map(|t| t as usize).ok_or("'threads' entries must be integers".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                Some(_) => return Err("'threads' must be an array".into()),
            },
            kernels: axis(v, "kernels", Kernel::Simd, |s| s.parse())?,
            kernel_microbench: v
                .get("kernel_microbench")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            reps: v.get("reps").and_then(Value::as_u64).unwrap_or(3) as usize,
        };
        if spec.systems.is_empty() || spec.storage.is_empty() || spec.kernels.is_empty() {
            return Err("every axis needs at least one entry".into());
        }
        if spec.reps == 0 {
            return Err("'reps' must be at least 1".into());
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<GridSpec, String> {
        GridSpec::from_value(&serde_json::from_str::<Value>(text).map_err(|e| format!("{e:?}"))?)
    }

    /// Number of cells the sweep will run.
    pub fn n_cells(&self) -> usize {
        self.systems.len()
            * self.storage.len()
            * self.wire.len()
            * self.threads.len()
            * self.kernels.len()
    }
}

/// Runs every cell of the grid and returns the trajectory report. Panics
/// if any lossless-codec cell of one system trains a different ensemble
/// than that system's first cell — perf sweeps must never change bits.
pub fn run_grid(spec: &GridSpec) -> Value {
    let ds = spec.dataset.generate();
    let cluster = Cluster::new(spec.workers);
    let mut cells: Vec<Value> = Vec::new();
    for &system in &spec.systems {
        let mut reference = None;
        for &storage in &spec.storage {
            for &wire in &spec.wire {
                for &threads in &spec.threads {
                    for &kernel in &spec.kernels {
                        let cfg = TrainConfig::builder()
                            .n_trees(spec.trees)
                            .n_layers(spec.layers)
                            .n_bins(spec.n_bins)
                            .threads(threads)
                            .wire(wire)
                            .storage(storage)
                            .kernel(kernel)
                            .build()
                            .unwrap();
                        let mut wall = f64::INFINITY;
                        let mut best_cal = f64::INFINITY;
                        let mut result = None;
                        for _ in 0..spec.reps {
                            best_cal = best_cal.min(probe_once());
                            let start = Instant::now();
                            let r = system.run(&cluster, &ds, &cfg);
                            wall = wall.min(start.elapsed().as_secs_f64());
                            if wire.is_lossless() {
                                let model = reference.get_or_insert_with(|| r.model.clone());
                                assert_eq!(
                                    *model,
                                    r.model,
                                    "{} trained a different ensemble in cell {}/{}/t{threads}/{}",
                                    system.name(),
                                    storage.label(),
                                    wire.label(),
                                    kernel.label(),
                                );
                            }
                            result = Some(r);
                        }
                        let result = result.expect("reps >= 1 is validated at parse time");
                        cells.push(json!({
                            "system": system.name(),
                            "storage": storage.label(),
                            "wire": wire.label(),
                            "threads": threads,
                            "kernel": kernel.label(),
                            "trees_per_sec": spec.trees as f64 / wall,
                            "wall_s": wall,
                            "wall_rel": wall / best_cal,
                            "peak_histogram_bytes": result.stats.max_histogram_bytes(),
                            "storage_bytes": result.stats.max_data_bytes(),
                        }));
                    }
                }
            }
        }
    }
    let mut report = json!({
        "benchmark": spec.name,
        "dataset": {
            "n_instances": ds.n_instances(),
            "n_features": ds.n_features(),
            "n_classes": spec.dataset.n_classes,
            "density": spec.dataset.density,
            "seed": spec.dataset.seed,
            "n_bins": spec.n_bins,
            "trees": spec.trees,
            "layers": spec.layers,
            "workers": spec.workers,
        },
        "cells": cells,
    });
    if spec.kernel_microbench {
        let bench = kernel_microbench(&ds, spec.n_bins);
        if let Value::Object(map) = &mut report {
            map.insert("kernels".to_string(), bench);
        }
    }
    report
}

/// One burst of the machine-speed probe: wall time of a fixed integer
/// workload (a serial Lehmer-style multiply chain — pure core speed, no
/// memory traffic, and no code shared with anything the grid measures,
/// so a real kernel regression can never hide inside it).
///
/// [`run_grid`] and the kernel microbench interleave probe bursts with
/// their timing reps and record `min(measured) / min(probe)` as the
/// `*_rel` metric next to the raw seconds. Because the probes sample the
/// same span of machine states the measurement mins are drawn from, a
/// shared-vCPU steal window, turbo drift, or a differently-provisioned
/// CI runner slows both mins by the same factor and cancels out of the
/// ratio, while a genuine code regression moves only the numerator.
/// (Min-of-ratios would be wrong: one stalled probe burst next to a quiet
/// measurement makes a downward outlier the min then locks onto; both
/// mins separately are bounded below by the true quiet-machine times.)
/// [`compare_reports`] gates on the `*_rel` metrics whenever both reports
/// carry them.
pub(crate) fn probe_once() -> f64 {
    let start = Instant::now();
    let mut x = 0x9e37_79b9_7f4a_7c15_u64;
    let mut acc = 0u64;
    for _ in 0..2_000_000 {
        x = x.wrapping_mul(0xd134_2543_de82_ef95).wrapping_add(0x2545_f491_4f6c_dd1d);
        acc = acc.wrapping_add(x >> 33);
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64()
}

/// Times the raw `C = 1` fill kernels on the grid dataset: the sparse pair
/// walk and the dense scan under every (width × kernel) combination.
/// Best-of-N wall time per fill, deterministic gradients.
fn kernel_microbench(ds: &Dataset, n_bins: usize) -> Value {
    let sparse = BinCuts::from_dataset(ds, n_bins).apply(ds);
    let (n, d) = (sparse.n_rows(), sparse.n_features());
    let dense_u8 = DenseBinnedRows::from_sparse_with_width(&sparse, n_bins, BinWidth::U8);
    let dense_u16 = DenseBinnedRows::from_sparse_with_width(&sparse, n_bins, BinWidth::U16);
    let mut grads = GradBuffer::new(n, 1);
    for i in 0..n {
        grads.set(i, 0, (i % 97) as f64 * 0.01 - 0.5, 1.0);
    }
    let chunk: Vec<u32> = (0..n as u32).collect();
    // Fills run well under a millisecond, so co-tenant memory-pressure
    // bursts can inflate any one sample badly; 100 reps ≈ 100 ms per
    // kernel keeps the best-of min inside a quiet window.
    let reps = 100;
    let time = |fill: &mut dyn FnMut(&mut NodeHistogram)| -> (f64, f64) {
        let mut best = f64::INFINITY;
        let mut best_cal = f64::INFINITY;
        for rep in 0..reps {
            let mut hist = NodeHistogram::new(d, n_bins, 1);
            // A probe burst costs ~10× one fill, so interleave sparsely:
            // the probes only need to sample the same machine-state window
            // the fill mins are drawn from, not every rep.
            if rep % 10 == 0 {
                best_cal = best_cal.min(probe_once());
            }
            let start = Instant::now();
            fill(&mut hist);
            best = best.min(start.elapsed().as_secs_f64());
            std::hint::black_box(&hist);
        }
        (best, best / best_cal)
    };
    let t_sparse = time(&mut |h| fill_sparse_rows(h, &chunk, &sparse, &grads));
    let t_scalar_u8 = time(&mut |h| fill_dense_rows(h, &chunk, &dense_u8, &grads, Kernel::Scalar));
    let t_simd_u8 = time(&mut |h| fill_dense_rows(h, &chunk, &dense_u8, &grads, Kernel::Simd));
    let t_scalar_u16 =
        time(&mut |h| fill_dense_rows(h, &chunk, &dense_u16, &grads, Kernel::Scalar));
    let t_simd_u16 = time(&mut |h| fill_dense_rows(h, &chunk, &dense_u16, &grads, Kernel::Simd));
    json!({
        "sparse_fill_s": t_sparse.0,
        "dense_scalar_u8_s": t_scalar_u8.0,
        "dense_simd_u8_s": t_simd_u8.0,
        "dense_scalar_u16_s": t_scalar_u16.0,
        "dense_simd_u16_s": t_simd_u16.0,
        "sparse_fill_rel": t_sparse.1,
        "dense_scalar_u8_rel": t_scalar_u8.1,
        "dense_simd_u8_rel": t_simd_u8.1,
        "dense_scalar_u16_rel": t_scalar_u16.1,
        "dense_simd_u16_rel": t_simd_u16.1,
        "simd_vs_scalar_u8": t_scalar_u8.0 / t_simd_u8.0,
        "simd_vs_scalar_u16": t_scalar_u16.0 / t_simd_u16.0,
        "simd_vs_sparse_u8": t_sparse.0 / t_simd_u8.0,
        "scalar_vs_sparse_u8": t_sparse.0 / t_scalar_u8.0,
    })
}

/// One indexed metric: the raw value oriented so bigger is better
/// (`trees_per_sec` as-is, timings negated) plus its machine-relative
/// twin (`*_rel`, negated — it's a time in probe units) when the report
/// recorded one.
#[derive(Debug, Clone, Copy)]
struct Metric {
    value: f64,
    rel: Option<f64>,
}

/// One report's comparable numbers, keyed deterministically.
fn index_report(report: &Value) -> Result<BTreeMap<String, Metric>, String> {
    let mut out = BTreeMap::new();
    let cells = report
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("report has no 'cells' array")?;
    for cell in cells {
        // Serving cells (gbdt-serve grids) carry a `strategy` axis and
        // gate on `rows_per_sec`; training cells carry a `system` axis
        // and gate on `trees_per_sec`. Both share the `wall_rel` twin.
        let (key, metric_name) = if let Some(strategy) = cell.get("strategy").and_then(Value::as_str)
        {
            (
                format!(
                    "serve {strategy}/b{}/T{}",
                    cell.get("batch").and_then(Value::as_u64).unwrap_or(0),
                    cell.get("trees").and_then(Value::as_u64).unwrap_or(0),
                ),
                "rows_per_sec",
            )
        } else {
            (
                format!(
                    "cell {}/{}/{}/t{}/{}",
                    cell.get("system").and_then(Value::as_str).ok_or("cell missing 'system'")?,
                    cell.get("storage").and_then(Value::as_str).unwrap_or("?"),
                    cell.get("wire").and_then(Value::as_str).unwrap_or("?"),
                    cell.get("threads").and_then(Value::as_u64).unwrap_or(0),
                    cell.get("kernel").and_then(Value::as_str).unwrap_or("?"),
                ),
                "trees_per_sec",
            )
        };
        let throughput = cell
            .get(metric_name)
            .and_then(Value::as_f64)
            .ok_or(format!("{key} missing '{metric_name}'"))?;
        let rel = cell.get("wall_rel").and_then(Value::as_f64).filter(|r| *r > 0.0);
        out.insert(key, Metric { value: throughput, rel: rel.map(|r| -r) });
    }
    if let Some(kernels) = report.get("kernels").and_then(Value::as_object) {
        for (name, v) in kernels.iter() {
            // Only the raw timings gate (lower is better); derived ratios
            // are informational. Negate so "bigger is better" holds for
            // every indexed metric.
            if let Some(stem) = name.strip_suffix("_s") {
                let t = v.as_f64().ok_or(format!("kernel metric '{name}' is not a number"))?;
                let rel = kernels
                    .get(&format!("{stem}_rel"))
                    .and_then(Value::as_f64)
                    .filter(|r| *r > 0.0);
                out.insert(format!("kernel {name}"), Metric { value: -t, rel: rel.map(|r| -r) });
            }
        }
    }
    Ok(out)
}

/// The outcome of a baseline-vs-candidate comparison.
#[derive(Debug)]
pub struct Comparison {
    /// Metrics present in both reports.
    pub compared: usize,
    /// Human-readable description of every metric that regressed by more
    /// than the tolerance. Empty means the gate passes.
    pub regressions: Vec<String>,
}

/// Compares a candidate trajectory against the checked-in baseline.
/// A metric regresses when it is worse than `tolerance` fraction below
/// the baseline (`trees_per_sec` lower / kernel fill time higher). When
/// both sides of a metric carry its machine-relative `*_rel` twin (time
/// in units of the adjacent [`probe_once`] burst), the gate compares
/// those instead of raw seconds, so a slower machine — or a steal window
/// on a shared vCPU — doesn't read as a code regression; a metric probed
/// on only one side falls back to raw seconds rather than being skewed.
/// Errors when the reports share no metric at all — a silent no-op gate
/// is worse than a loud mismatch.
pub fn compare_reports(
    baseline: &Value,
    candidate: &Value,
    tolerance: f64,
) -> Result<Comparison, String> {
    let base = index_report(baseline)?;
    let cand = index_report(candidate)?;
    let mut compared = 0;
    let mut regressions = Vec::new();
    for (key, base_m) in &base {
        let Some(cand_m) = cand.get(key) else { continue };
        compared += 1;
        let (base_v, cand_v) = match (base_m.rel, cand_m.rel) {
            (Some(b), Some(c)) => (b, c),
            _ => (base_m.value, cand_m.value),
        };
        // Values are oriented so bigger is better (timings are negated),
        // so the allowed slack is always `tolerance` of the magnitude
        // *below* the baseline regardless of sign.
        if cand_v < base_v - tolerance * base_v.abs() {
            let (b, c) = (base_v.abs(), cand_v.abs());
            let pct = (c / b - 1.0) * 100.0;
            regressions.push(format!("{key}: {c:.4} vs baseline {b:.4} ({pct:+.1}%)"));
        }
    }
    if compared == 0 {
        return Err("baseline and candidate share no comparable metric".into());
    }
    Ok(Comparison { compared, regressions })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "unit",
        "dataset": {"n_instances": 300, "n_features": 8, "n_classes": 2, "density": 1.0, "seed": 5},
        "trees": 2, "layers": 3, "workers": 2,
        "systems": ["LightGBM", "Vero"],
        "storage": ["sparse", "dense"],
        "kernels": ["simd", "scalar"],
        "kernel_microbench": true,
        "reps": 2
    }"#;

    #[test]
    fn spec_parses_with_defaults() {
        let spec = GridSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.name, "unit");
        assert_eq!(spec.dataset.n_instances, 300);
        assert_eq!(spec.n_bins, 20);
        assert_eq!(spec.systems, vec![System::LightGbmLike, System::Vero]);
        assert_eq!(spec.storage, vec![Storage::Sparse, Storage::Dense]);
        assert_eq!(spec.wire, vec![WireCodec::Dense]); // defaulted axis
        assert_eq!(spec.threads, vec![0]); // defaulted axis
        assert_eq!(spec.kernels, vec![Kernel::Simd, Kernel::Scalar]);
        assert_eq!(spec.n_cells(), 8);
        assert!(spec.kernel_microbench);
        assert_eq!(spec.reps, 2);
        let defaulted = SPEC.replace(r#""reps": 2"#, r#""reps": 3"#); // explicit value honored
        assert_eq!(GridSpec::from_json(&defaulted).unwrap().reps, 3);
        let omitted = SPEC.replace(r#""reps": 2"#, r#""n_bins": 20"#); // key gone → default
        assert_eq!(GridSpec::from_json(&omitted).unwrap().reps, 3);
        assert!(GridSpec::from_json(&SPEC.replace(r#""reps": 2"#, r#""reps": 0"#))
            .unwrap_err()
            .contains("reps"));
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(GridSpec::from_json("{").is_err());
        assert!(GridSpec::from_json(r#"{"name": "x"}"#).is_err());
        let bad_system = SPEC.replace("\"Vero\"", "\"CatBoost\"");
        assert!(GridSpec::from_json(&bad_system).unwrap_err().contains("unknown system"));
        let bad_kernel = SPEC.replace("\"scalar\"", "\"avx512\"");
        assert!(GridSpec::from_json(&bad_kernel).unwrap_err().contains("unknown kernel"));
    }

    #[test]
    fn grid_runs_every_cell_and_stays_bit_identical() {
        let spec = GridSpec::from_json(SPEC).unwrap();
        let report = run_grid(&spec);
        let cells = report.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), spec.n_cells());
        let kernels = report.get("kernels").and_then(Value::as_object).unwrap();
        assert!(kernels.get("dense_simd_u8_s").unwrap().as_f64().unwrap() > 0.0);
        // The gate passes when a report is compared against itself.
        let cmp = compare_reports(&report, &report, 0.10).unwrap();
        assert!(cmp.compared >= spec.n_cells());
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    /// A hand-built report so comparison semantics are tested without
    /// training anything.
    fn tiny_report(tps: f64, kernel_s: f64) -> Value {
        json!({
            "benchmark": "unit",
            "cells": [{
                "system": "LightGBM", "storage": "dense", "wire": "dense",
                "threads": 1, "kernel": "simd",
                "trees_per_sec": tps, "wall_s": 1.0,
            }],
            "kernels": {"dense_simd_u8_s": kernel_s, "simd_vs_scalar_u8": 2.0},
        })
    }

    /// [`tiny_report`] plus machine-relative twins: `wall_rel` on the one
    /// cell and `dense_simd_u8_rel` next to the kernel timing.
    fn tiny_report_rel(tps: f64, kernel_s: f64, wall_rel: f64, kernel_rel: f64) -> Value {
        json!({
            "benchmark": "unit",
            "cells": [{
                "system": "LightGBM", "storage": "dense", "wire": "dense",
                "threads": 1, "kernel": "simd",
                "trees_per_sec": tps, "wall_s": 1.0, "wall_rel": wall_rel,
            }],
            "kernels": {
                "dense_simd_u8_s": kernel_s,
                "dense_simd_u8_rel": kernel_rel,
                "simd_vs_scalar_u8": 2.0,
            },
        })
    }

    #[test]
    fn compare_fails_on_synthetic_slowdown() {
        let baseline = tiny_report(10.0, 0.010);
        // 20% fewer trees/sec AND a 30% slower kernel: both gate.
        let slower = tiny_report(8.0, 0.013);
        let cmp = compare_reports(&baseline, &slower, 0.10).unwrap();
        assert_eq!(cmp.compared, 2);
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
        assert!(cmp.regressions[0].contains("cell LightGBM/dense/dense/t1/simd"));
        assert!(cmp.regressions[1].contains("kernel dense_simd_u8_s"));
    }

    #[test]
    fn compare_tolerates_small_noise_and_improvements() {
        let baseline = tiny_report(10.0, 0.010);
        let ok = compare_reports(&baseline, &tiny_report(9.5, 0.0104), 0.10).unwrap();
        assert!(ok.regressions.is_empty(), "{:?}", ok.regressions);
        let faster = compare_reports(&baseline, &tiny_report(14.0, 0.006), 0.10).unwrap();
        assert!(faster.regressions.is_empty());
    }

    #[test]
    fn relative_metrics_cancel_machine_slowdown() {
        // Candidate ran on a 2× slower machine: every raw timing doubles
        // (trees/sec halves), but the per-rep probe doubled with them so
        // the machine-relative twins are unchanged — no regression.
        let baseline = tiny_report_rel(10.0, 0.010, 20.0, 2.0);
        let slow_machine = tiny_report_rel(5.0, 0.020, 20.0, 2.0);
        let cmp = compare_reports(&baseline, &slow_machine, 0.10).unwrap();
        assert_eq!(cmp.compared, 2);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    fn relative_metrics_still_catch_code_regressions() {
        // Same machine speed, but the code got slower: the relative twins
        // move with the raw timings (+25% training, +30% kernel) and gate.
        let baseline = tiny_report_rel(10.0, 0.010, 20.0, 2.0);
        let regressed = tiny_report_rel(8.0, 0.013, 25.0, 2.6);
        let cmp = compare_reports(&baseline, &regressed, 0.10).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
    }

    #[test]
    fn relative_metrics_require_both_sides() {
        // Relative twins on one side only: fall back to raw seconds, so a
        // 2× slower candidate regresses rather than being silently
        // "corrected" against nothing.
        let baseline = tiny_report_rel(10.0, 0.010, 20.0, 2.0);
        let slower = tiny_report(5.0, 0.020);
        let cmp = compare_reports(&baseline, &slower, 0.10).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
    }

    #[test]
    fn compare_errors_on_disjoint_reports() {
        let baseline = tiny_report(10.0, 0.010);
        let mut other = tiny_report(10.0, 0.010);
        if let Value::Object(map) = &mut other {
            map.insert("cells".into(), json!([]));
            map.insert("kernels".into(), json!({}));
        }
        assert!(compare_reports(&baseline, &other, 0.10).is_err());
    }
}
