//! Params-grid benchmark runner + perf-regression comparison.
//!
//! A grid spec (JSON, see `benchgrids/`) names a synthetic dataset and the
//! axes to sweep — system × storage × wire codec × threads × kernel. The
//! runner trains every cell, asserts bit-identity across all
//! lossless-codec cells of one system (the determinism contract every PR
//! leans on), optionally times the raw fill kernels on the same data, and
//! emits a trajectory report ([`crate::output::write_trajectory`] format)
//! that gets checked in as `BENCH_PRn.json`.
//!
//! [`compare_reports`] (shared gate machinery, [`crate::gate`]) is the
//! regression gate: given the last checked-in baseline and a fresh
//! candidate it matches cells by their full axis key and reports every
//! cell whose `trees_per_sec` dropped — or kernel whose fill time rose —
//! by more than the tolerance. The `grid` binary exits nonzero on any
//! regression, which is what CI's `perf` job enforces.

use crate::gate::probe_once;
use crate::systems::System;
use gbdt_cluster::Cluster;
use gbdt_core::binning::BinCuts;
use gbdt_core::histogram::NodeHistogram;
use gbdt_core::kernels::{fill_dense_rows, fill_sparse_rows};
use gbdt_core::{GradBuffer, Kernel, Storage, TrainConfig, WireCodec};
use gbdt_data::dense_binned::{BinWidth, DenseBinnedRows};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use serde_json::{json, Value};
use std::time::Instant;

// The comparison half of this module moved to [`crate::gate`] when the
// serve/avail grids grew identical gates; re-exported here so existing
// `crate::grid::compare_reports` paths (bins, CI docs) keep working.
pub use crate::gate::{compare_reports, Comparison};

/// A parsed params grid: dataset shape plus the axes to sweep.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Report name (`"benchmark"` field of the trajectory).
    pub name: String,
    /// Synthetic dataset: instances, features, classes, density, seed.
    pub dataset: SyntheticConfig,
    /// T — trees per cell.
    pub trees: usize,
    /// L — layers per tree.
    pub layers: usize,
    /// W — cluster size.
    pub workers: usize,
    /// q — histogram bins (also the kernel-microbench pack width driver).
    pub n_bins: usize,
    /// Systems axis (paper names, e.g. `"LightGBM"`, `"Vero"`).
    pub systems: Vec<System>,
    /// Storage-layout axis.
    pub storage: Vec<Storage>,
    /// Wire-codec axis.
    pub wire: Vec<WireCodec>,
    /// Thread-budget axis (0 = auto).
    pub threads: Vec<usize>,
    /// Dense fill-kernel axis.
    pub kernels: Vec<Kernel>,
    /// Whether to also time the raw fill kernels (sparse, dense scalar,
    /// dense SIMD × u8/u16) on the grid dataset.
    pub kernel_microbench: bool,
    /// Training runs per cell; the reported wall time is the best of them.
    /// Cells run ~0.1 s, short enough that a co-tenant burst can distort a
    /// single sample by well over the gate tolerance — best-of-N recovers
    /// the quiet-machine time on both sides of the comparison.
    pub reps: usize,
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or(format!("grid spec needs integer '{key}'"))
}

fn axis<T, F: Fn(&str) -> Result<T, String>>(
    v: &Value,
    key: &str,
    default: T,
    parse: F,
) -> Result<Vec<T>, String> {
    match v.get(key) {
        None => Ok(vec![default]),
        Some(Value::Array(items)) => items
            .iter()
            .map(|it| parse(it.as_str().ok_or(format!("'{key}' entries must be strings"))?))
            .collect(),
        Some(_) => Err(format!("'{key}' must be an array")),
    }
}

impl GridSpec {
    /// Parses a spec from its JSON value, rejecting unknown axis entries.
    pub fn from_value(v: &Value) -> Result<GridSpec, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("grid spec needs string 'name'")?
            .to_string();
        let ds = v.get("dataset").ok_or("grid spec needs object 'dataset'")?;
        let dataset = SyntheticConfig {
            n_instances: req_u64(ds, "n_instances")? as usize,
            n_features: req_u64(ds, "n_features")? as usize,
            n_classes: ds.get("n_classes").and_then(Value::as_u64).unwrap_or(2) as usize,
            density: ds.get("density").and_then(Value::as_f64).unwrap_or(1.0),
            seed: req_u64(ds, "seed")?,
            ..Default::default()
        };
        let spec = GridSpec {
            name,
            dataset,
            trees: req_u64(v, "trees")? as usize,
            layers: req_u64(v, "layers")? as usize,
            workers: req_u64(v, "workers")? as usize,
            n_bins: v.get("n_bins").and_then(Value::as_u64).unwrap_or(20) as usize,
            systems: axis(v, "systems", System::LightGbmLike, |s| {
                System::from_name(s).ok_or(format!("unknown system '{s}'"))
            })?,
            storage: axis(v, "storage", Storage::Auto, |s| s.parse())?,
            wire: axis(v, "wire", WireCodec::Dense, |s| s.parse())?,
            threads: match v.get("threads") {
                None => vec![0],
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|it| {
                        it.as_u64().map(|t| t as usize).ok_or("'threads' entries must be integers".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                Some(_) => return Err("'threads' must be an array".into()),
            },
            kernels: axis(v, "kernels", Kernel::Simd, |s| s.parse())?,
            kernel_microbench: v
                .get("kernel_microbench")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            reps: v.get("reps").and_then(Value::as_u64).unwrap_or(3) as usize,
        };
        if spec.systems.is_empty() || spec.storage.is_empty() || spec.kernels.is_empty() {
            return Err("every axis needs at least one entry".into());
        }
        if spec.reps == 0 {
            return Err("'reps' must be at least 1".into());
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<GridSpec, String> {
        GridSpec::from_value(&serde_json::from_str::<Value>(text).map_err(|e| format!("{e:?}"))?)
    }

    /// Number of cells the sweep will run.
    pub fn n_cells(&self) -> usize {
        self.systems.len()
            * self.storage.len()
            * self.wire.len()
            * self.threads.len()
            * self.kernels.len()
    }
}

/// Runs every cell of the grid and returns the trajectory report. Panics
/// if any lossless-codec cell of one system trains a different ensemble
/// than that system's first cell — perf sweeps must never change bits.
pub fn run_grid(spec: &GridSpec) -> Value {
    let ds = spec.dataset.generate();
    let cluster = Cluster::new(spec.workers);
    let mut cells: Vec<Value> = Vec::new();
    for &system in &spec.systems {
        let mut reference = None;
        for &storage in &spec.storage {
            for &wire in &spec.wire {
                for &threads in &spec.threads {
                    for &kernel in &spec.kernels {
                        let cfg = TrainConfig::builder()
                            .n_trees(spec.trees)
                            .n_layers(spec.layers)
                            .n_bins(spec.n_bins)
                            .threads(threads)
                            .wire(wire)
                            .storage(storage)
                            .kernel(kernel)
                            .build()
                            .unwrap();
                        let mut wall = f64::INFINITY;
                        let mut best_cal = f64::INFINITY;
                        let mut result = None;
                        for _ in 0..spec.reps {
                            best_cal = best_cal.min(probe_once());
                            let start = Instant::now();
                            let r = system.run(&cluster, &ds, &cfg);
                            wall = wall.min(start.elapsed().as_secs_f64());
                            if wire.is_lossless() {
                                let model = reference.get_or_insert_with(|| r.model.clone());
                                assert_eq!(
                                    *model,
                                    r.model,
                                    "{} trained a different ensemble in cell {}/{}/t{threads}/{}",
                                    system.name(),
                                    storage.label(),
                                    wire.label(),
                                    kernel.label(),
                                );
                            }
                            result = Some(r);
                        }
                        let result = result.expect("reps >= 1 is validated at parse time");
                        cells.push(json!({
                            "system": system.name(),
                            "storage": storage.label(),
                            "wire": wire.label(),
                            "threads": threads,
                            "kernel": kernel.label(),
                            "trees_per_sec": spec.trees as f64 / wall,
                            "wall_s": wall,
                            "wall_rel": wall / best_cal,
                            "peak_histogram_bytes": result.stats.max_histogram_bytes(),
                            "storage_bytes": result.stats.max_data_bytes(),
                        }));
                    }
                }
            }
        }
    }
    let mut report = json!({
        "benchmark": spec.name,
        "dataset": {
            "n_instances": ds.n_instances(),
            "n_features": ds.n_features(),
            "n_classes": spec.dataset.n_classes,
            "density": spec.dataset.density,
            "seed": spec.dataset.seed,
            "n_bins": spec.n_bins,
            "trees": spec.trees,
            "layers": spec.layers,
            "workers": spec.workers,
        },
        "cells": cells,
    });
    if spec.kernel_microbench {
        let bench = kernel_microbench(&ds, spec.n_bins);
        if let Value::Object(map) = &mut report {
            map.insert("kernels".to_string(), bench);
        }
    }
    report
}

/// Times the raw `C = 1` fill kernels on the grid dataset: the sparse pair
/// walk and the dense scan under every (width × kernel) combination.
/// Best-of-N wall time per fill, deterministic gradients.
fn kernel_microbench(ds: &Dataset, n_bins: usize) -> Value {
    let sparse = BinCuts::from_dataset(ds, n_bins).apply(ds);
    let (n, d) = (sparse.n_rows(), sparse.n_features());
    let dense_u8 = DenseBinnedRows::from_sparse_with_width(&sparse, n_bins, BinWidth::U8);
    let dense_u16 = DenseBinnedRows::from_sparse_with_width(&sparse, n_bins, BinWidth::U16);
    let mut grads = GradBuffer::new(n, 1);
    for i in 0..n {
        grads.set(i, 0, (i % 97) as f64 * 0.01 - 0.5, 1.0);
    }
    let chunk: Vec<u32> = (0..n as u32).collect();
    // Fills run well under a millisecond, so co-tenant memory-pressure
    // bursts can inflate any one sample badly; 100 reps ≈ 100 ms per
    // kernel keeps the best-of min inside a quiet window.
    let reps = 100;
    let time = |fill: &mut dyn FnMut(&mut NodeHistogram)| -> (f64, f64) {
        let mut best = f64::INFINITY;
        let mut best_cal = f64::INFINITY;
        for rep in 0..reps {
            let mut hist = NodeHistogram::new(d, n_bins, 1);
            // A probe burst costs ~10× one fill, so interleave sparsely:
            // the probes only need to sample the same machine-state window
            // the fill mins are drawn from, not every rep.
            if rep % 10 == 0 {
                best_cal = best_cal.min(probe_once());
            }
            let start = Instant::now();
            fill(&mut hist);
            best = best.min(start.elapsed().as_secs_f64());
            std::hint::black_box(&hist);
        }
        (best, best / best_cal)
    };
    let t_sparse = time(&mut |h| fill_sparse_rows(h, &chunk, &sparse, &grads));
    let t_scalar_u8 = time(&mut |h| fill_dense_rows(h, &chunk, &dense_u8, &grads, Kernel::Scalar));
    let t_simd_u8 = time(&mut |h| fill_dense_rows(h, &chunk, &dense_u8, &grads, Kernel::Simd));
    let t_scalar_u16 =
        time(&mut |h| fill_dense_rows(h, &chunk, &dense_u16, &grads, Kernel::Scalar));
    let t_simd_u16 = time(&mut |h| fill_dense_rows(h, &chunk, &dense_u16, &grads, Kernel::Simd));
    json!({
        "sparse_fill_s": t_sparse.0,
        "dense_scalar_u8_s": t_scalar_u8.0,
        "dense_simd_u8_s": t_simd_u8.0,
        "dense_scalar_u16_s": t_scalar_u16.0,
        "dense_simd_u16_s": t_simd_u16.0,
        "sparse_fill_rel": t_sparse.1,
        "dense_scalar_u8_rel": t_scalar_u8.1,
        "dense_simd_u8_rel": t_simd_u8.1,
        "dense_scalar_u16_rel": t_scalar_u16.1,
        "dense_simd_u16_rel": t_simd_u16.1,
        "simd_vs_scalar_u8": t_scalar_u8.0 / t_simd_u8.0,
        "simd_vs_scalar_u16": t_scalar_u16.0 / t_simd_u16.0,
        "simd_vs_sparse_u8": t_sparse.0 / t_simd_u8.0,
        "scalar_vs_sparse_u8": t_sparse.0 / t_scalar_u8.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "unit",
        "dataset": {"n_instances": 300, "n_features": 8, "n_classes": 2, "density": 1.0, "seed": 5},
        "trees": 2, "layers": 3, "workers": 2,
        "systems": ["LightGBM", "Vero"],
        "storage": ["sparse", "dense"],
        "kernels": ["simd", "scalar"],
        "kernel_microbench": true,
        "reps": 2
    }"#;

    #[test]
    fn spec_parses_with_defaults() {
        let spec = GridSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.name, "unit");
        assert_eq!(spec.dataset.n_instances, 300);
        assert_eq!(spec.n_bins, 20);
        assert_eq!(spec.systems, vec![System::LightGbmLike, System::Vero]);
        assert_eq!(spec.storage, vec![Storage::Sparse, Storage::Dense]);
        assert_eq!(spec.wire, vec![WireCodec::Dense]); // defaulted axis
        assert_eq!(spec.threads, vec![0]); // defaulted axis
        assert_eq!(spec.kernels, vec![Kernel::Simd, Kernel::Scalar]);
        assert_eq!(spec.n_cells(), 8);
        assert!(spec.kernel_microbench);
        assert_eq!(spec.reps, 2);
        let defaulted = SPEC.replace(r#""reps": 2"#, r#""reps": 3"#); // explicit value honored
        assert_eq!(GridSpec::from_json(&defaulted).unwrap().reps, 3);
        let omitted = SPEC.replace(r#""reps": 2"#, r#""n_bins": 20"#); // key gone → default
        assert_eq!(GridSpec::from_json(&omitted).unwrap().reps, 3);
        assert!(GridSpec::from_json(&SPEC.replace(r#""reps": 2"#, r#""reps": 0"#))
            .unwrap_err()
            .contains("reps"));
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(GridSpec::from_json("{").is_err());
        assert!(GridSpec::from_json(r#"{"name": "x"}"#).is_err());
        let bad_system = SPEC.replace("\"Vero\"", "\"CatBoost\"");
        assert!(GridSpec::from_json(&bad_system).unwrap_err().contains("unknown system"));
        let bad_kernel = SPEC.replace("\"scalar\"", "\"avx512\"");
        assert!(GridSpec::from_json(&bad_kernel).unwrap_err().contains("unknown kernel"));
    }

    #[test]
    fn grid_runs_every_cell_and_stays_bit_identical() {
        let spec = GridSpec::from_json(SPEC).unwrap();
        let report = run_grid(&spec);
        let cells = report.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), spec.n_cells());
        let kernels = report.get("kernels").and_then(Value::as_object).unwrap();
        assert!(kernels.get("dense_simd_u8_s").unwrap().as_f64().unwrap() > 0.0);
        // The gate passes when a report is compared against itself.
        let cmp = compare_reports(&report, &report, 0.10).unwrap();
        assert!(cmp.compared >= spec.n_cells());
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

}
