//! System registry: paper system names → quadrant trainers.
//!
//! §5.3 compares XGBoost, LightGBM, DimBoost, and Vero. Our stand-ins run
//! the corresponding data-management policy in the shared code base (the
//! substitution table in `DESIGN.md`): the *data-management* effect is
//! reproduced; the C++-vs-Java constant factors the paper itself flags as
//! confounds are not simulated.

use gbdt_cluster::Cluster;
use gbdt_core::TrainConfig;
use gbdt_data::dataset::Dataset;
use gbdt_quadrants::{featpar, qd1, qd2, qd3, qd4, yggdrasil, Aggregation, DistTrainResult};
use serde::{Deserialize, Serialize};

/// A runnable system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum System {
    /// XGBoost policy: QD1 — horizontal + column-store + all-reduce.
    XgboostLike,
    /// LightGBM policy: QD2 — horizontal + row-store + reduce-scatter.
    LightGbmLike,
    /// DimBoost policy: QD2 — horizontal + row-store + parameter server.
    DimBoostLike,
    /// QD2 with plain all-reduce (used by the Figure 10 quadrant study).
    Qd2AllReduce,
    /// QD3 — vertical + column-store with the hybrid index plan.
    Qd3,
    /// Vero: QD4 — vertical + row-store.
    Vero,
    /// Yggdrasil-style: vertical + column-wise node-to-instance index.
    Yggdrasil,
    /// LightGBM feature-parallel: full replica per worker.
    LightGbmFeatureParallel,
}

impl System {
    /// Every runnable system, in registry order.
    pub const ALL: [System; 8] = [
        System::XgboostLike,
        System::LightGbmLike,
        System::DimBoostLike,
        System::Qd2AllReduce,
        System::Qd3,
        System::Vero,
        System::Yggdrasil,
        System::LightGbmFeatureParallel,
    ];

    /// Inverse of [`System::name`], for grid-spec parsing.
    pub fn from_name(name: &str) -> Option<System> {
        System::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Display name used in tables (paper naming).
    pub fn name(&self) -> &'static str {
        match self {
            System::XgboostLike => "XGBoost",
            System::LightGbmLike => "LightGBM",
            System::DimBoostLike => "DimBoost",
            System::Qd2AllReduce => "QD2",
            System::Qd3 => "QD3",
            System::Vero => "Vero",
            System::Yggdrasil => "Yggdrasil",
            System::LightGbmFeatureParallel => "LightGBM-FP",
        }
    }

    /// The quadrant this system occupies (Figure 1).
    pub fn quadrant(&self) -> &'static str {
        match self {
            System::XgboostLike => "QD1 (horizontal, column)",
            System::LightGbmLike | System::DimBoostLike | System::Qd2AllReduce => {
                "QD2 (horizontal, row)"
            }
            System::Qd3 | System::Yggdrasil => "QD3 (vertical, column)",
            System::Vero => "QD4 (vertical, row)",
            System::LightGbmFeatureParallel => "replica (none, row)",
        }
    }

    /// Whether the system supports multi-class training (DimBoost does not,
    /// §5.3: "DimBoost does not support multi-classification").
    pub fn supports_multiclass(&self) -> bool {
        !matches!(self, System::DimBoostLike)
    }

    /// Runs the system.
    pub fn run(&self, cluster: &Cluster, dataset: &Dataset, config: &TrainConfig) -> DistTrainResult {
        match self {
            System::XgboostLike => qd1::train(cluster, dataset, config),
            System::LightGbmLike => {
                qd2::train(cluster, dataset, config, Aggregation::ReduceScatter)
            }
            System::DimBoostLike => {
                qd2::train(cluster, dataset, config, Aggregation::ParameterServer)
            }
            System::Qd2AllReduce => qd2::train(cluster, dataset, config, Aggregation::AllReduce),
            System::Qd3 => qd3::train(cluster, dataset, config),
            System::Vero => qd4::train(cluster, dataset, config),
            System::Yggdrasil => yggdrasil::train(cluster, dataset, config),
            System::LightGbmFeatureParallel => featpar::train(cluster, dataset, config),
        }
    }
}

/// The §5.3 end-to-end line-up.
pub const END_TO_END: &[System] =
    &[System::XgboostLike, System::LightGbmLike, System::DimBoostLike, System::Vero];

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_data::synthetic::SyntheticConfig;

    #[test]
    fn names_and_quadrants_are_consistent() {
        assert_eq!(System::Vero.quadrant(), "QD4 (vertical, row)");
        assert_eq!(System::XgboostLike.name(), "XGBoost");
        assert!(!System::DimBoostLike.supports_multiclass());
        assert!(System::Vero.supports_multiclass());
    }

    #[test]
    fn from_name_round_trips() {
        for system in System::ALL {
            assert_eq!(System::from_name(system.name()), Some(system));
        }
        assert_eq!(System::from_name("CatBoost"), None);
    }

    #[test]
    fn every_system_trains() {
        let ds = SyntheticConfig {
            n_instances: 400,
            n_features: 10,
            density: 0.5,
            seed: 7,
            ..Default::default()
        }
        .generate();
        let cfg = TrainConfig::builder().n_trees(2).n_layers(3).build().unwrap();
        let cluster = Cluster::new(2);
        for system in [
            System::XgboostLike,
            System::LightGbmLike,
            System::DimBoostLike,
            System::Qd2AllReduce,
            System::Qd3,
            System::Vero,
            System::Yggdrasil,
            System::LightGbmFeatureParallel,
        ] {
            let result = system.run(&cluster, &ds, &cfg);
            assert_eq!(result.model.trees.len(), 2, "{}", system.name());
        }
    }
}
