//! Scaled synthetic stand-ins for every paper dataset.
//!
//! Each preset from `gbdt_data::synthetic::presets` (Table 2 and §6 shapes)
//! gets a default down-scaling chosen so the full experiment suite runs on a
//! laptop-class machine: instance counts come down to ~20–25 K and
//! dimensionality is reduced while preserving the per-row nonzero count (so
//! the `d` of the paper's complexity terms is intact). Every binary accepts
//! `--scale` to push N further down (values > 1) or back up toward paper
//! scale (values < 1, given enough RAM and patience).

use gbdt_data::dataset::Dataset;
use gbdt_data::synthetic::presets;

/// Default `(instance divisor, feature divisor)` per paper dataset.
pub fn default_scales(name: &str) -> (f64, f64) {
    match name {
        "susy" => (200.0, 1.0),
        "higgs" => (440.0, 1.0),
        "criteo" => (1800.0, 1.0),
        "epsilon" => (25.0, 4.0),
        "rcv1" => (28.0, 20.0),
        "synthesis" => (2000.0, 40.0),
        "rcv1-multi" => (21.0, 400.0),
        "synthesis-multi" => (2000.0, 50.0),
        "gender" => (4880.0, 200.0),
        "age" => (1920.0, 400.0),
        "taste" => (400.0, 50.0),
        other => panic!("unknown dataset '{other}'"),
    }
}

/// Workers used for this dataset, scaled from the paper's count to fit one
/// machine (paper: 5 for the LD/RCV1 runs, 8 for the large ones, 50/20/20
/// for the industrial ones).
pub fn default_workers(name: &str) -> usize {
    match name {
        "susy" | "higgs" | "criteo" | "epsilon" | "rcv1" => 5,
        "synthesis" | "rcv1-multi" | "synthesis-multi" => 8,
        "gender" | "age" => 8,
        "taste" => 4,
        other => panic!("unknown dataset '{other}'"),
    }
}

/// Generates the scaled stand-in for a paper dataset.
///
/// `extra_scale` multiplies the default instance divisor (1.0 = defaults).
pub fn load(name: &str, extra_scale: f64, seed: u64) -> Dataset {
    let preset = presets::by_name(name).unwrap_or_else(|| panic!("unknown dataset '{name}'"));
    let (n_div, f_div) = default_scales(name);
    let cfg = preset.config((n_div * extra_scale).max(1.0), f_div, seed);
    cfg.generate()
}

/// All paper dataset names in Table 2 order, then §6 order.
pub const ALL_NAMES: &[&str] = &[
    "susy",
    "higgs",
    "criteo",
    "epsilon",
    "rcv1",
    "synthesis",
    "rcv1-multi",
    "synthesis-multi",
    "gender",
    "age",
    "taste",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_has_scales_and_workers() {
        for name in ALL_NAMES {
            let (n, f) = default_scales(name);
            assert!(n >= 1.0 && f >= 1.0, "{name}");
            assert!(default_workers(name) >= 1);
        }
    }

    #[test]
    fn load_produces_laptop_sized_data() {
        let ds = load("rcv1", 10.0, 1);
        assert!(ds.n_instances() <= 3_000);
        assert_eq!(ds.n_classes, 2);
        // Per-row nonzeros preserved (~75 for rcv1).
        assert!((ds.avg_nnz_per_row() - 75.0).abs() < 10.0, "{}", ds.avg_nnz_per_row());
    }

    #[test]
    fn multiclass_presets_keep_class_counts() {
        let ds = load("rcv1-multi", 20.0, 2);
        assert_eq!(ds.n_classes, 53);
        let ds = load("taste", 20.0, 3);
        assert_eq!(ds.n_classes, 100);
    }
}
