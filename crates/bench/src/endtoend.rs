//! End-to-end run machinery shared by Figures 11–12 and Tables 3–4.

use crate::systems::System;
use gbdt_cluster::{Cluster, FaultPlan, NetworkCostModel};
use gbdt_core::{Objective, TrainConfig};
use gbdt_data::dataset::Dataset;
use gbdt_quadrants::TreeStat;
use serde::{Deserialize, Serialize};
use vero::report::ConvergencePoint;

/// One system's end-to-end result on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemRun {
    /// System display name.
    pub system: String,
    /// Mean seconds per tree (comp + modelled comm, straggler-gated).
    pub seconds_per_tree: f64,
    /// Split of the above into computation / communication.
    pub comp_per_tree: f64,
    /// Modelled communication share.
    pub comm_per_tree: f64,
    /// Convergence curve (time vs validation metric).
    pub curve: Vec<ConvergencePoint>,
    /// Final validation headline metric (AUC or accuracy).
    pub final_metric: f64,
    /// Total bytes sent cluster-wide.
    pub bytes_sent: u64,
    /// Point-to-point send retries triggered by injected drops (0 when
    /// fault-free).
    pub retries: u64,
    /// Duplicate envelopes discarded at intake (0 when fault-free).
    pub duplicates_dropped: u64,
    /// Worker-crash recoveries (checkpoint restarts; 0 when fault-free).
    pub recoveries: u64,
    /// Modelled seconds spent replaying work after crashes.
    pub recovery_seconds: f64,
}

/// Derives the objective a dataset calls for.
pub fn objective_for(dataset: &Dataset) -> Objective {
    match dataset.n_classes {
        0 => Objective::SquaredError,
        2 => Objective::Logistic,
        c => Objective::Softmax { n_classes: c },
    }
}

/// Trains `system` on `train`, evaluating convergence on `valid`.
pub fn run_system(
    system: System,
    train: &Dataset,
    valid: &Dataset,
    workers: usize,
    network: NetworkCostModel,
    config: &TrainConfig,
    faults: Option<FaultPlan>,
) -> SystemRun {
    let cluster = Cluster::with_cost(workers, network).with_faults(faults);
    let result = system.run(&cluster, train, config);
    let outcome = vero::TrainOutcome {
        model: vero::system::VeroModel { inner: result.model },
        per_tree: result.per_tree.clone(),
        stats: result.stats,
    };
    let curve = vero::report::convergence_curve(&outcome, valid);
    let final_metric = curve.last().map(|p| p.eval.headline()).unwrap_or(0.0);
    SystemRun {
        system: system.name().to_string(),
        seconds_per_tree: mean(&result.per_tree, |t| t.comp_seconds + t.comm_seconds),
        comp_per_tree: mean(&result.per_tree, |t| t.comp_seconds),
        comm_per_tree: mean(&result.per_tree, |t| t.comm_seconds),
        curve,
        final_metric,
        bytes_sent: outcome.stats.total_bytes_sent(),
        retries: outcome.stats.total_retries(),
        duplicates_dropped: outcome.stats.total_duplicates_dropped(),
        recoveries: outcome.stats.recoveries,
        recovery_seconds: outcome.stats.recovery_seconds,
    }
}

/// Appends the fault-recovery counters to a report row. The bench binaries
/// call this only when a `--faults` plan is active, so fault-free reports
/// keep their columns byte-for-byte unchanged.
pub fn add_fault_columns(row: &mut serde_json::Value, run: &SystemRun) {
    if let serde_json::Value::Object(m) = row {
        m.insert("retries".into(), serde_json::json!(run.retries));
        m.insert("duplicates_dropped".into(), serde_json::json!(run.duplicates_dropped));
        m.insert("recoveries".into(), serde_json::json!(run.recoveries));
        m.insert("recovery_s".into(), serde_json::json!(run.recovery_seconds));
    }
}

fn mean(stats: &[TreeStat], f: impl Fn(&TreeStat) -> f64) -> f64 {
    if stats.is_empty() {
        return 0.0;
    }
    stats.iter().map(f).sum::<f64>() / stats.len() as f64
}

/// A training config for an end-to-end run on `dataset`.
pub fn config_for(dataset: &Dataset, n_trees: usize, n_layers: usize) -> TrainConfig {
    TrainConfig::builder()
        .n_trees(n_trees)
        .n_layers(n_layers)
        .objective(objective_for(dataset))
        .build()
        .expect("valid end-to-end config")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_data::synthetic::SyntheticConfig;

    #[test]
    fn objective_inference() {
        let mut ds = SyntheticConfig { n_instances: 100, ..Default::default() }.generate();
        assert_eq!(objective_for(&ds), Objective::Logistic);
        ds.n_classes = 0;
        assert_eq!(objective_for(&ds), Objective::SquaredError);
        ds.n_classes = 7;
        assert_eq!(objective_for(&ds), Objective::Softmax { n_classes: 7 });
    }

    #[test]
    fn run_system_produces_curve_and_costs() {
        let ds = SyntheticConfig {
            n_instances: 800,
            n_features: 12,
            density: 0.5,
            seed: 9,
            ..Default::default()
        }
        .generate();
        let (train, valid) = ds.split_validation(0.25);
        let cfg = config_for(&train, 4, 4);
        let run = run_system(
            System::Vero,
            &train,
            &valid,
            2,
            NetworkCostModel::lab_cluster(),
            &cfg,
            None,
        );
        assert_eq!(run.curve.len(), 4);
        assert!(run.seconds_per_tree > 0.0);
        assert!(run.final_metric > 0.5);
        assert!(run.bytes_sent > 0);
        assert!((run.comp_per_tree + run.comm_per_tree - run.seconds_per_tree).abs() < 1e-9);
    }
}
