//! **Vero** — distributed GBDT with vertical partitioning and row-store.
//!
//! This is the end-to-end system of the paper's §4.2: load a horizontally
//! partitioned dataset, repartition it vertically with the compressed,
//! blockified transformation (§4.2.1), and train with the QD4 routine
//! (local histograms + subtraction, local-best-split exchange, placement
//! bitmaps — §4.2.2), on the in-process cluster substrate.
//!
//! # Quickstart
//!
//! ```
//! use vero::{Vero, VeroConfig};
//! use gbdt_data::synthetic::SyntheticConfig;
//!
//! let dataset = SyntheticConfig { n_instances: 2_000, n_features: 50, ..Default::default() }
//!     .generate();
//! let (train, valid) = dataset.split_validation(0.2);
//!
//! let config = VeroConfig::builder()
//!     .workers(4)
//!     .n_trees(10)
//!     .n_layers(5)
//!     .build()
//!     .unwrap();
//! let outcome = Vero::fit(&config, &train);
//! let eval = outcome.model.evaluate(&valid);
//! assert!(eval.auc.unwrap() > 0.7);
//! ```

pub mod config;
pub mod report;
pub mod system;

pub use config::{VeroConfig, VeroConfigBuilder};
pub use report::{convergence_curve, ConvergencePoint};
pub use system::{TrainOutcome, Vero, VeroModel};

// Re-export the pieces users touch through the facade.
pub use gbdt_cluster::NetworkCostModel;
pub use gbdt_core::{Objective, TrainConfig};
pub use gbdt_data::dataset::Dataset;
pub use gbdt_partition::transform::WireEncoding;
pub use gbdt_partition::GroupingStrategy;
