//! Convergence reporting: metric-versus-time curves (Figures 11 and 12).
//!
//! The paper plots validation AUC (binary) or accuracy (multi-class)
//! against cumulative training time. Given a trained model and the per-tree
//! timing records, [`convergence_curve`] evaluates every tree-prefix of the
//! ensemble incrementally (one tree's predictions added per step, never
//! re-predicting the whole prefix), producing exactly those curves.

use crate::system::TrainOutcome;
use gbdt_core::model::{evaluation_from_scores, Evaluation};
use gbdt_data::dataset::{Dataset, FeatureMatrix};
use serde::{Deserialize, Serialize};

/// One point of a convergence curve: the ensemble after `n_trees` trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Number of trees included.
    pub n_trees: usize,
    /// Cumulative training seconds (comp + modelled comm).
    pub seconds: f64,
    /// Validation metrics of the prefix ensemble.
    pub eval: Evaluation,
}

/// Builds the metric-vs-time curve of a training run on a validation set.
pub fn convergence_curve(outcome: &TrainOutcome, valid: &Dataset) -> Vec<ConvergencePoint> {
    let model = &outcome.model.inner;
    let c = model.n_outputs();
    let n = valid.n_instances();
    let mut scores = vec![0.0f64; n * c];
    for chunk in scores.chunks_mut(c) {
        chunk.copy_from_slice(&model.init_scores);
    }
    let mut curve = Vec::with_capacity(model.trees.len());
    let mut elapsed = 0.0;
    for (t, tree) in model.trees.iter().enumerate() {
        match &valid.features {
            FeatureMatrix::Sparse(csr) => {
                for (i, feats, vals) in csr.iter_rows() {
                    let out = tree.predict_row(feats, vals);
                    for (k, &v) in out.iter().enumerate() {
                        scores[i * c + k] += v;
                    }
                }
            }
            FeatureMatrix::Dense(dense) => {
                for i in 0..dense.n_rows() {
                    let out = tree.predict_dense(dense.row(i));
                    for (k, &v) in out.iter().enumerate() {
                        scores[i * c + k] += v;
                    }
                }
            }
        }
        if let Some(stat) = outcome.per_tree.get(t) {
            elapsed += stat.comp_seconds + stat.comm_seconds;
        }
        curve.push(ConvergencePoint {
            n_trees: t + 1,
            seconds: elapsed,
            eval: evaluation_from_scores(&model.objective, &scores, &valid.labels),
        });
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VeroConfig;
    use crate::system::Vero;
    use gbdt_data::synthetic::SyntheticConfig;

    #[test]
    fn curve_is_monotone_in_time_and_converges() {
        let ds = SyntheticConfig {
            n_instances: 1_500,
            n_features: 25,
            n_classes: 2,
            density: 0.5,
            seed: 311,
            ..Default::default()
        }
        .generate();
        let (train_ds, valid_ds) = ds.split_validation(0.3);
        let cfg = VeroConfig::builder().workers(3).n_trees(12).n_layers(5).build().unwrap();
        let outcome = Vero::fit(&cfg, &train_ds);
        let curve = convergence_curve(&outcome, &valid_ds);
        assert_eq!(curve.len(), 12);
        // Time strictly accumulates.
        for w in curve.windows(2) {
            assert!(w[1].seconds >= w[0].seconds);
            assert_eq!(w[1].n_trees, w[0].n_trees + 1);
        }
        // The final AUC beats the first tree's AUC.
        let first = curve.first().unwrap().eval.auc.unwrap();
        let last = curve.last().unwrap().eval.auc.unwrap();
        assert!(last > first, "AUC did not improve: {first} -> {last}");
        // The last prefix equals a full evaluation.
        let full = outcome.model.evaluate(&valid_ds);
        assert!((full.auc.unwrap() - last).abs() < 1e-12);
    }
}
