//! Vero system configuration.

use gbdt_cluster::{FaultPlan, NetworkCostModel};
use gbdt_core::{Kernel, Objective, Storage, TrainConfig, WireCodec};
use gbdt_partition::transform::{TransformConfig, WireEncoding};
use gbdt_partition::GroupingStrategy;

/// Full configuration of a Vero training run: cluster shape, link model,
/// transformation options, and GBDT hyper-parameters.
#[derive(Debug, Clone)]
pub struct VeroConfig {
    /// Number of workers W.
    pub workers: usize,
    /// Link model for communication-time accounting.
    pub network: NetworkCostModel,
    /// GBDT hyper-parameters (T, L, q, η, λ, γ, objective).
    pub train: TrainConfig,
    /// Horizontal-to-vertical transformation options.
    pub transform: TransformConfig,
    /// Optional deterministic fault-injection plan (chaos testing). `None`
    /// trains fault-free with zero overhead.
    pub faults: Option<FaultPlan>,
}

impl VeroConfig {
    /// Starts a builder with the paper's §5.1 defaults (8 workers, 1 Gbps,
    /// T = 100, L = 8, q = 20, greedy-balanced blockified transform).
    pub fn builder() -> VeroConfigBuilder {
        VeroConfigBuilder {
            cfg: VeroConfig {
                workers: 8,
                network: NetworkCostModel::lab_cluster(),
                train: TrainConfig::default(),
                transform: TransformConfig::default(),
                faults: None,
            },
        }
    }
}

/// Fluent builder for [`VeroConfig`].
#[derive(Debug, Clone)]
pub struct VeroConfigBuilder {
    cfg: VeroConfig,
}

impl VeroConfigBuilder {
    /// Sets the worker count W.
    pub fn workers(mut self, w: usize) -> Self {
        self.cfg.workers = w;
        self
    }

    /// Sets the link model.
    pub fn network(mut self, model: NetworkCostModel) -> Self {
        self.cfg.network = model;
        self
    }

    /// Sets T, the number of trees.
    pub fn n_trees(mut self, t: usize) -> Self {
        self.cfg.train.n_trees = t;
        self
    }

    /// Sets L, the number of tree layers.
    pub fn n_layers(mut self, l: usize) -> Self {
        self.cfg.train.n_layers = l;
        self
    }

    /// Sets q, the number of candidate splits.
    pub fn n_bins(mut self, q: usize) -> Self {
        self.cfg.train.n_bins = q;
        self.cfg.transform.n_bins = q;
        self
    }

    /// Sets η, the learning rate.
    pub fn learning_rate(mut self, eta: f64) -> Self {
        self.cfg.train.learning_rate = eta;
        self
    }

    /// Sets λ, the L2 leaf regularization.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.cfg.train.lambda = lambda;
        self
    }

    /// Sets γ, the per-leaf penalty.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.cfg.train.gamma = gamma;
        self
    }

    /// Sets the training objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.cfg.train.objective = objective;
        self
    }

    /// Sets the intra-worker thread budget (0 = auto:
    /// `available_parallelism() / workers`). Trained ensembles are
    /// bit-identical for every value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.train.threads = threads;
        self
    }

    /// Sets the histogram wire codec (default: dense). Vero's trainer never
    /// aggregates histograms, so this only matters when the same config
    /// drives one of the horizontal quadrants in a comparison run; every
    /// codec trains the identical Vero ensemble.
    pub fn wire(mut self, wire: WireCodec) -> Self {
        self.cfg.train.wire = wire;
        self
    }

    /// Sets the binned storage layout policy (default: auto — dense when
    /// the shard's stored-value density warrants it). Every choice trains
    /// the identical ensemble; only speed and memory change.
    pub fn storage(mut self, storage: Storage) -> Self {
        self.cfg.train.storage = storage;
        self
    }

    /// Sets the dense histogram fill kernel (default: SIMD lane groups).
    /// Every choice trains the identical ensemble; only scan speed changes.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.cfg.train.kernel = kernel;
        self
    }

    /// Sets the column grouping strategy (default: greedy balanced).
    pub fn grouping(mut self, strategy: GroupingStrategy) -> Self {
        self.cfg.transform.strategy = strategy;
        self
    }

    /// Sets the repartition wire format (default: blockified).
    pub fn encoding(mut self, encoding: WireEncoding) -> Self {
        self.cfg.transform.encoding = encoding;
        self
    }

    /// Injects a deterministic fault plan (drops, duplicates, delays,
    /// scheduled crashes, stragglers). Under any lossless plan the trained
    /// ensemble is bit-identical to the fault-free run.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = Some(plan);
        self
    }

    /// Finalizes, validating everything.
    pub fn build(self) -> Result<VeroConfig, String> {
        if self.cfg.workers == 0 {
            return Err("workers must be >= 1".into());
        }
        self.cfg.train.validate()?;
        if self.cfg.transform.n_bins != self.cfg.train.n_bins {
            return Err("transform.n_bins must equal train.n_bins".into());
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = VeroConfig::builder().build().unwrap();
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.train.n_trees, 100);
        assert_eq!(cfg.train.n_layers, 8);
        assert_eq!(cfg.train.n_bins, 20);
        assert_eq!(cfg.transform.encoding, WireEncoding::Blockified);
        assert_eq!(cfg.transform.strategy, GroupingStrategy::GreedyBalanced);
    }

    #[test]
    fn threads_flow_into_train_config() {
        let cfg = VeroConfig::builder().threads(4).build().unwrap();
        assert_eq!(cfg.train.threads, 4);
        assert_eq!(VeroConfig::builder().build().unwrap().train.threads, 0); // auto
    }

    #[test]
    fn wire_codec_flows_into_train_config() {
        let cfg = VeroConfig::builder().wire(WireCodec::Auto).build().unwrap();
        assert_eq!(cfg.train.wire, WireCodec::Auto);
        assert_eq!(VeroConfig::builder().build().unwrap().train.wire, WireCodec::Dense);
    }

    #[test]
    fn storage_flows_into_train_config() {
        let cfg = VeroConfig::builder().storage(Storage::Dense).build().unwrap();
        assert_eq!(cfg.train.storage, Storage::Dense);
        assert_eq!(VeroConfig::builder().build().unwrap().train.storage, Storage::Auto);
    }

    #[test]
    fn kernel_flows_into_train_config() {
        let cfg = VeroConfig::builder().kernel(Kernel::Scalar).build().unwrap();
        assert_eq!(cfg.train.kernel, Kernel::Scalar);
        assert_eq!(VeroConfig::builder().build().unwrap().train.kernel, Kernel::Simd);
    }

    #[test]
    fn n_bins_keeps_transform_in_sync() {
        let cfg = VeroConfig::builder().n_bins(32).build().unwrap();
        assert_eq!(cfg.train.n_bins, 32);
        assert_eq!(cfg.transform.n_bins, 32);
    }

    #[test]
    fn rejects_invalid() {
        assert!(VeroConfig::builder().workers(0).build().is_err());
        assert!(VeroConfig::builder().n_trees(0).build().is_err());
    }
}
