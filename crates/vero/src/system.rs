//! The Vero system facade: fit, predict, save, load.

use crate::config::VeroConfig;
use gbdt_cluster::stats::ClusterStats;
use gbdt_cluster::Cluster;
use gbdt_core::model::Evaluation;
use gbdt_core::GbdtModel;
use gbdt_data::dataset::Dataset;
use gbdt_quadrants::{qd4, TreeStat};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The Vero system.
///
/// Stateless entry point: [`Vero::fit`] runs the full pipeline (horizontal
/// shards → vertical transformation → QD4 training) on an in-process
/// cluster and returns the model plus the full cost breakdown.
pub struct Vero;

/// Everything a training run produces.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The trained model.
    pub model: VeroModel,
    /// Per-tree (comp, comm) seconds, straggler-gated.
    pub per_tree: Vec<TreeStat>,
    /// Per-worker instrumentation (bytes, phase times, memory gauges).
    pub stats: ClusterStats,
}

impl Vero {
    /// Trains on `dataset` under `config`.
    ///
    /// # Panics
    /// Panics if the objective is inconsistent with the dataset's labels
    /// (e.g. softmax class count ≠ `dataset.n_classes`).
    pub fn fit(config: &VeroConfig, dataset: &Dataset) -> TrainOutcome {
        check_objective(config, dataset);
        let cluster =
            Cluster::with_cost(config.workers, config.network).with_faults(config.faults);
        let result =
            qd4::train_with_transform(&cluster, dataset, &config.train, &config.transform);
        TrainOutcome {
            model: VeroModel { inner: result.model },
            per_tree: result.per_tree,
            stats: result.stats,
        }
    }
}

/// Result of [`Vero::fit_with_validation`].
#[derive(Debug)]
pub struct ValidatedOutcome {
    /// The trained model, truncated to the best validation iteration.
    pub model: VeroModel,
    /// Number of trees kept (1-based best iteration).
    pub best_iteration: usize,
    /// Whether truncation fired before `n_trees`.
    pub stopped_early: bool,
    /// The full (untruncated) training outcome, for cost analysis.
    pub full: TrainOutcome,
    /// Validation metric of the kept prefix.
    pub best_metric: f64,
}

impl Vero {
    /// Trains like [`Vero::fit`], then applies validation-based early
    /// stopping by truncation: the returned model keeps the tree prefix
    /// whose validation metric is best, stopping the search once the metric
    /// fails to improve for `patience` consecutive trees.
    ///
    /// (Truncation after training is equivalent in model quality to
    /// stopping the boosting loop — boosting prefixes are nested — and
    /// keeps the distributed trainers callback-free.)
    pub fn fit_with_validation(
        config: &VeroConfig,
        train: &Dataset,
        valid: &Dataset,
        patience: usize,
    ) -> ValidatedOutcome {
        let full = Self::fit(config, train);
        let curve = crate::report::convergence_curve(&full, valid);
        // Higher is better for AUC/accuracy; lower for RMSE.
        let higher_is_better = !matches!(config.train.objective, gbdt_core::Objective::SquaredError);
        let mut best_idx = 0usize;
        let mut best_metric = f64::NEG_INFINITY;
        let mut since_best = 0usize;
        let mut stopped_early = false;
        for (i, point) in curve.iter().enumerate() {
            let m = point.eval.headline();
            let m = if higher_is_better { m } else { -m };
            if m > best_metric {
                best_metric = m;
                best_idx = i;
                since_best = 0;
            } else {
                since_best += 1;
                if patience > 0 && since_best >= patience {
                    stopped_early = true;
                    break;
                }
            }
        }
        let mut model = full.model.clone();
        model.inner.trees.truncate(best_idx + 1);
        ValidatedOutcome {
            model,
            best_iteration: best_idx + 1,
            stopped_early,
            best_metric: if higher_is_better { best_metric } else { -best_metric },
            full,
        }
    }
}

fn check_objective(config: &VeroConfig, dataset: &Dataset) {
    use gbdt_core::Objective;
    match config.train.objective {
        Objective::Logistic => assert_eq!(
            dataset.n_classes, 2,
            "logistic objective needs a binary dataset"
        ),
        Objective::Softmax { n_classes } => assert_eq!(
            dataset.n_classes, n_classes,
            "softmax class count must match the dataset"
        ),
        Objective::SquaredError => {}
    }
}

/// A trained Vero model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VeroModel {
    /// The underlying boosted ensemble.
    pub inner: GbdtModel,
}

impl VeroModel {
    /// Raw scores for a sparse row of (sorted feature, value) pairs.
    pub fn predict_raw(&self, feats: &[u32], vals: &[f32]) -> Vec<f64> {
        self.inner.predict_row(feats, vals)
    }

    /// Transformed prediction (probability / class scores / regression).
    pub fn predict(&self, feats: &[u32], vals: &[f32]) -> Vec<f64> {
        self.inner.predict_row_transformed(feats, vals)
    }

    /// Evaluates on a dataset with task-appropriate metrics.
    pub fn evaluate(&self, dataset: &Dataset) -> Evaluation {
        self.inner.evaluate(dataset)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.inner.trees.len()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserializes from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Saves the model to a JSON file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a model from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VeroConfig;
    use gbdt_core::Objective;
    use gbdt_data::synthetic::SyntheticConfig;

    fn dataset(n: usize, seed: u64) -> Dataset {
        SyntheticConfig {
            n_instances: n,
            n_features: 30,
            n_classes: 2,
            density: 0.4,
            seed,
            ..Default::default()
        }
        .generate()
    }

    fn small_config(workers: usize) -> VeroConfig {
        VeroConfig::builder().workers(workers).n_trees(8).n_layers(5).build().unwrap()
    }

    #[test]
    fn fit_trains_a_useful_model() {
        let ds = dataset(1_500, 211);
        let (train_ds, valid_ds) = ds.split_validation(0.25);
        let outcome = Vero::fit(&small_config(4), &train_ds);
        assert_eq!(outcome.model.n_trees(), 8);
        assert_eq!(outcome.per_tree.len(), 8);
        assert!(outcome.model.evaluate(&valid_ds).auc.unwrap() > 0.8);
        assert!(outcome.stats.total_bytes_sent() > 0);
    }

    #[test]
    fn predict_matches_evaluate_path() {
        let ds = dataset(600, 223);
        let outcome = Vero::fit(&small_config(2), &ds);
        let csr = ds.features.to_csr();
        let (feats, vals) = csr.row(0);
        let p = outcome.model.predict(feats, vals);
        assert_eq!(p.len(), 1);
        assert!((0.0..=1.0).contains(&p[0]));
        let raw = outcome.model.predict_raw(feats, vals);
        assert!((gbdt_core::loss::sigmoid(raw[0]) - p[0]).abs() < 1e-12);
    }

    #[test]
    fn save_load_roundtrip() {
        let ds = dataset(400, 227);
        let outcome = Vero::fit(&small_config(2), &ds);
        let dir = std::env::temp_dir().join("vero-test-model.json");
        outcome.model.save(&dir).unwrap();
        let loaded = VeroModel::load(&dir).unwrap();
        assert_eq!(outcome.model, loaded);
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn early_stopping_truncates_at_best_prefix() {
        let ds = dataset(1_500, 241);
        let (train, valid) = ds.split_validation(0.3);
        let cfg = VeroConfig::builder().workers(3).n_trees(12).n_layers(5).build().unwrap();
        let validated = Vero::fit_with_validation(&cfg, &train, &valid, 3);
        assert!(validated.best_iteration >= 1 && validated.best_iteration <= 12);
        assert_eq!(validated.model.n_trees(), validated.best_iteration);
        assert_eq!(validated.full.model.n_trees(), 12);
        // The kept prefix's metric equals the reported best.
        let eval = validated.model.evaluate(&valid);
        assert!((eval.auc.unwrap() - validated.best_metric).abs() < 1e-12);
        // No longer prefix within the searched range does better.
        for t in 1..=validated.best_iteration {
            let mut prefix = validated.full.model.clone();
            prefix.inner.trees.truncate(t);
            assert!(
                prefix.evaluate(&valid).auc.unwrap() <= validated.best_metric + 1e-12,
                "prefix {t} beats the chosen best"
            );
        }
    }

    #[test]
    fn zero_patience_searches_every_prefix() {
        let ds = dataset(500, 251);
        let (train, valid) = ds.split_validation(0.3);
        let cfg = VeroConfig::builder().workers(2).n_trees(5).n_layers(4).build().unwrap();
        let validated = Vero::fit_with_validation(&cfg, &train, &valid, 0);
        assert!(!validated.stopped_early);
        assert!(validated.best_iteration <= 5);
    }

    #[test]
    #[should_panic(expected = "softmax class count")]
    fn objective_mismatch_is_rejected() {
        let ds = dataset(300, 229);
        let cfg = VeroConfig::builder()
            .workers(2)
            .n_trees(1)
            .objective(Objective::Softmax { n_classes: 7 })
            .build()
            .unwrap();
        Vero::fit(&cfg, &ds);
    }
}
