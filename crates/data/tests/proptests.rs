//! Property-based tests for the storage substrate: conversions between
//! row-store and column-store must be lossless, sharding must partition, and
//! wire encodings must round-trip for arbitrary inputs.

use gbdt_data::binned::BinnedRowsBuilder;
use gbdt_data::block::{Block, BlockedRows};
use gbdt_data::dense_binned::{BinWidth, DenseBinnedRows};
use gbdt_data::encoding;
use gbdt_data::sparse::CsrBuilder;
use gbdt_data::{BinId, BinnedRows, BinnedStore, FeatureId};
use proptest::prelude::*;

/// Strategy: a sparse matrix as rows of sorted, distinct (feature, value).
fn arb_rows(max_rows: usize, n_cols: usize) -> impl Strategy<Value = Vec<Vec<(u32, f32)>>> {
    prop::collection::vec(
        prop::collection::btree_map(0..n_cols as u32, -100.0f32..100.0, 0..n_cols.min(12))
            .prop_map(|m| m.into_iter().collect::<Vec<_>>()),
        0..max_rows,
    )
}

/// Strategy: binned rows with bins < q.
fn arb_binned(max_rows: usize, n_cols: usize, q: u16) -> impl Strategy<Value = Vec<Vec<(u32, u16)>>> {
    prop::collection::vec(
        prop::collection::btree_map(0..n_cols as u32, 0..q, 0..n_cols.min(12))
            .prop_map(|m| m.into_iter().collect::<Vec<_>>()),
        0..max_rows,
    )
}

fn build_csr(rows: &[Vec<(u32, f32)>], n_cols: usize) -> gbdt_data::CsrMatrix {
    let mut b = CsrBuilder::new(n_cols);
    for row in rows {
        b.push_row(row).unwrap();
    }
    b.build()
}

fn build_binned(rows: &[Vec<(u32, u16)>], n_cols: usize) -> BinnedRows {
    let mut b = BinnedRowsBuilder::new(n_cols);
    for row in rows {
        b.push_row(row).unwrap();
    }
    b.build()
}

proptest! {
    #[test]
    fn csr_csc_roundtrip(rows in arb_rows(30, 8)) {
        let m = build_csr(&rows, 8);
        prop_assert_eq!(m.clone(), m.to_csc().to_csr());
    }

    #[test]
    fn csr_get_matches_source(rows in arb_rows(20, 6)) {
        let m = build_csr(&rows, 6);
        for (i, row) in rows.iter().enumerate() {
            for f in 0u32..6 {
                let expected = row.iter().find(|&&(g, _)| g == f).map(|&(_, v)| v);
                prop_assert_eq!(m.get(i, f), expected);
            }
        }
    }

    #[test]
    fn horizontal_shards_partition_rows(rows in arb_rows(30, 6), cut in 0usize..30) {
        let m = build_csr(&rows, 6);
        let cut = cut.min(m.n_rows());
        let a = m.slice_rows(0, cut);
        let b = m.slice_rows(cut, m.n_rows());
        prop_assert_eq!(a.n_rows() + b.n_rows(), m.n_rows());
        prop_assert_eq!(a.nnz() + b.nnz(), m.nnz());
        for i in 0..a.n_rows() {
            prop_assert_eq!(a.row(i), m.row(i));
        }
        for i in 0..b.n_rows() {
            prop_assert_eq!(b.row(i), m.row(cut + i));
        }
    }

    #[test]
    fn binned_roundtrip_and_vertical_shard(rows in arb_binned(30, 8, 16)) {
        let m = build_binned(&rows, 8);
        prop_assert_eq!(m.clone(), m.to_columns().to_rows());
        // A 2-way vertical shard partitions the pairs.
        let left: Vec<FeatureId> = (0u32..4).collect();
        let right: Vec<FeatureId> = (4u32..8).collect();
        let a = m.select_cols(&left);
        let b = m.select_cols(&right);
        prop_assert_eq!(a.nnz() + b.nnz(), m.nnz());
        for i in 0..m.n_rows() {
            for f in 0u32..4 {
                prop_assert_eq!(a.get(i, f), m.get(i, f));
                prop_assert_eq!(b.get(i, f), m.get(i, f + 4));
            }
        }
    }

    #[test]
    fn dense_sparse_roundtrip_both_widths(rows in arb_binned(30, 8, 16)) {
        let m = build_binned(&rows, 8);
        for width in [BinWidth::U8, BinWidth::U16] {
            let d = DenseBinnedRows::from_sparse_with_width(&m, 16, width);
            prop_assert_eq!(d.to_sparse(), m.clone());
            prop_assert_eq!(d.nnz(), m.nnz());
            for i in 0..m.n_rows() {
                for f in 0u32..8 {
                    prop_assert_eq!(d.get(i, f), m.get(i, f));
                    prop_assert_eq!(d.to_columns().get(i, f), m.get(i, f));
                }
            }
        }
    }

    #[test]
    fn store_shard_ops_are_layout_invariant(rows in arb_binned(30, 8, 16), cut in 0usize..30) {
        // slice_rows, select_cols, and the column transpose must see through
        // the layout: the dense store's results, lowered back to sparse rows,
        // equal the sparse store's.
        let m = build_binned(&rows, 8);
        let sparse = BinnedStore::sparse(m.clone());
        let dense = BinnedStore::dense(m.clone(), 16);
        let cut = cut.min(m.n_rows());
        prop_assert_eq!(
            sparse.slice_rows(cut, m.n_rows()).to_sparse_rows(),
            dense.slice_rows(cut, m.n_rows()).to_sparse_rows()
        );
        let cols: Vec<FeatureId> = (0u32..8).step_by(2).collect();
        prop_assert_eq!(
            sparse.select_cols(&cols).to_sparse_rows(),
            dense.select_cols(&cols).to_sparse_rows()
        );
        prop_assert_eq!(
            sparse.to_columns().to_rows().to_sparse_rows(),
            dense.to_columns().to_rows().to_sparse_rows()
        );
    }

    #[test]
    fn naive_encoding_roundtrip(pairs in prop::collection::vec((any::<u32>(), -1e9f64..1e9), 0..200)) {
        let enc = encoding::encode_naive(&pairs);
        prop_assert_eq!(enc.len(), pairs.len() * encoding::NAIVE_PAIR_BYTES);
        prop_assert_eq!(encoding::decode_naive(enc).unwrap(), pairs);
    }

    #[test]
    fn compressed_encoding_roundtrip(
        raw in prop::collection::vec((0u32..5000, 0u16..300), 0..200),
        p in 1usize..100_000,
        q in 1usize..400,
    ) {
        let pairs: Vec<(FeatureId, BinId)> = raw
            .into_iter()
            .map(|(f, b)| (f % p.min(u32::MAX as usize) as u32, b % q.min(u16::MAX as usize + 1) as u16))
            .collect();
        let enc = encoding::encode_compressed(&pairs, p, q);
        prop_assert_eq!(encoding::decode_compressed(enc, p, q).unwrap(), pairs);
    }

    #[test]
    fn blockify_roundtrip_via_wire(rows in arb_binned(40, 8, 20), n_blocks in 1usize..5) {
        let m = build_binned(&rows, 8);
        if m.n_rows() == 0 {
            return Ok(());
        }
        // Split rows into n_blocks contiguous chunks, encode each block,
        // decode, assemble, merge — the result must equal the original.
        let n = m.n_rows();
        let chunk = n.div_ceil(n_blocks);
        let mut blocks = Vec::new();
        for (k, lo) in (0..n).step_by(chunk).enumerate() {
            let hi = (lo + chunk).min(n);
            let mut feats = Vec::new();
            let mut bins = Vec::new();
            let mut row_ptr = vec![0u32];
            for i in lo..hi {
                let (f, b) = m.row(i);
                feats.extend_from_slice(f);
                bins.extend_from_slice(b);
                row_ptr.push(feats.len() as u32);
            }
            let block = Block::new(k as u32, lo as u32, feats, bins, row_ptr).unwrap();
            let wire = encoding::encode_block(&block, 8, 20);
            blocks.push(encoding::decode_block(wire, 8, 20).unwrap());
        }
        let mut assembled = BlockedRows::assemble(8, blocks).unwrap();
        assembled.merge(2);
        prop_assert_eq!(assembled.to_binned_rows(), m);
    }
}
