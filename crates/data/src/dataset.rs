//! Labeled dataset abstraction shared by every trainer.

use crate::dense::DenseMatrix;
use crate::error::DataError;
use crate::sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Feature storage backing a dataset: sparse row-store or dense rows.
///
/// Column-store views ([`crate::sparse::CscMatrix`]) are derived from these
/// when a quadrant calls for them — the *source* dataset always arrives
/// row-partitioned and row-stored, exactly as the paper assumes datasets
/// arrive from HDFS (§4.2.1: "training datasets are often horizontally
/// partitioned and stored").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureMatrix {
    /// Sparse CSR storage (the HS / MC workloads).
    Sparse(CsrMatrix),
    /// Dense row-major storage (the LD workloads).
    Dense(DenseMatrix),
}

impl FeatureMatrix {
    /// Number of instances.
    pub fn n_rows(&self) -> usize {
        match self {
            FeatureMatrix::Sparse(m) => m.n_rows(),
            FeatureMatrix::Dense(m) => m.n_rows(),
        }
    }

    /// Number of features.
    pub fn n_cols(&self) -> usize {
        match self {
            FeatureMatrix::Sparse(m) => m.n_cols(),
            FeatureMatrix::Dense(m) => m.n_cols(),
        }
    }

    /// Number of stored values (nnz for sparse, `rows × cols` for dense).
    pub fn n_stored(&self) -> usize {
        match self {
            FeatureMatrix::Sparse(m) => m.nnz(),
            FeatureMatrix::Dense(m) => m.n_rows() * m.n_cols(),
        }
    }

    /// A CSR view of the features (clones dense data; cheap for sparse).
    pub fn to_csr(&self) -> CsrMatrix {
        match self {
            FeatureMatrix::Sparse(m) => m.clone(),
            FeatureMatrix::Dense(m) => m.to_csr(),
        }
    }

    /// Bytes of heap storage used.
    pub fn heap_bytes(&self) -> usize {
        match self {
            FeatureMatrix::Sparse(m) => m.heap_bytes(),
            FeatureMatrix::Dense(m) => m.heap_bytes(),
        }
    }
}

/// A labeled training or validation dataset.
///
/// `n_classes` is 2 for binary classification (labels in {0, 1}), `C ≥ 3`
/// for multi-classification (labels in `0..C`), and 0 for regression
/// (labels unconstrained). This mirrors the paper's taxonomy where the
/// gradient dimension `C` is 1 for binary tasks and the class count for
/// multi-class tasks (§3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix (N × D).
    pub features: FeatureMatrix,
    /// One label per instance.
    pub labels: Vec<f32>,
    /// Number of classes (see type-level docs).
    pub n_classes: usize,
    /// Human-readable dataset name (used in experiment output).
    pub name: String,
}

impl Dataset {
    /// Creates a dataset, validating labels against the declared task.
    pub fn new(
        features: FeatureMatrix,
        labels: Vec<f32>,
        n_classes: usize,
        name: impl Into<String>,
    ) -> Result<Self, DataError> {
        if labels.len() != features.n_rows() {
            return Err(DataError::Shape(format!(
                "{} labels for {} instances",
                labels.len(),
                features.n_rows()
            )));
        }
        if n_classes >= 2 {
            for (i, &y) in labels.iter().enumerate() {
                if y < 0.0 || y >= n_classes as f32 || y.fract() != 0.0 {
                    return Err(DataError::Label(format!(
                        "instance {i} has label {y}, expected an integer in 0..{n_classes}"
                    )));
                }
            }
        }
        Ok(Dataset { features, labels, n_classes, name: name.into() })
    }

    /// Number of instances N.
    pub fn n_instances(&self) -> usize {
        self.features.n_rows()
    }

    /// Number of features D.
    pub fn n_features(&self) -> usize {
        self.features.n_cols()
    }

    /// Average number of stored values per instance (the paper's `d`).
    pub fn avg_nnz_per_row(&self) -> f64 {
        if self.n_instances() == 0 {
            0.0
        } else {
            self.features.n_stored() as f64 / self.n_instances() as f64
        }
    }

    /// Splits off the last `fraction` of instances as a validation set.
    ///
    /// Instances are assumed already shuffled (the synthetic generator and
    /// LIBSVM loader both produce i.i.d. order).
    pub fn split_validation(&self, fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
        let n = self.n_instances();
        let n_valid = ((n as f64) * fraction).round() as usize;
        let cut = n - n_valid;
        let csr = self.features.to_csr();
        let train = Dataset {
            features: FeatureMatrix::Sparse(csr.slice_rows(0, cut)),
            labels: self.labels[..cut].to_vec(),
            n_classes: self.n_classes,
            name: format!("{}-train", self.name),
        };
        let valid = Dataset {
            features: FeatureMatrix::Sparse(csr.slice_rows(cut, n)),
            labels: self.labels[cut..].to_vec(),
            n_classes: self.n_classes,
            name: format!("{}-valid", self.name),
        };
        (train, valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrBuilder;

    fn toy(n_classes: usize, labels: Vec<f32>) -> Result<Dataset, DataError> {
        let mut b = CsrBuilder::new(2);
        for _ in 0..labels.len() {
            b.push_row(&[(0, 1.0)]).unwrap();
        }
        Dataset::new(FeatureMatrix::Sparse(b.build()), labels, n_classes, "toy")
    }

    #[test]
    fn label_count_must_match_rows() {
        let mut b = CsrBuilder::new(2);
        b.push_row(&[(0, 1.0)]).unwrap();
        let err = Dataset::new(FeatureMatrix::Sparse(b.build()), vec![0.0, 1.0], 2, "bad");
        assert!(err.is_err());
    }

    #[test]
    fn classification_labels_are_validated() {
        assert!(toy(2, vec![0.0, 1.0]).is_ok());
        assert!(toy(2, vec![0.0, 2.0]).is_err());
        assert!(toy(2, vec![0.5, 1.0]).is_err());
        assert!(toy(3, vec![2.0, 0.0]).is_ok());
        // Regression accepts anything.
        assert!(toy(0, vec![-3.5, 17.0]).is_ok());
    }

    #[test]
    fn split_validation_partitions_instances() {
        let ds = toy(2, vec![0.0, 1.0, 1.0, 0.0, 1.0]).unwrap();
        let (train, valid) = ds.split_validation(0.4);
        assert_eq!(train.n_instances(), 3);
        assert_eq!(valid.n_instances(), 2);
        assert_eq!(valid.labels, vec![0.0, 1.0]);
        assert_eq!(train.n_features(), 2);
    }

    #[test]
    fn avg_nnz_per_row_reports_density() {
        let ds = toy(2, vec![0.0, 1.0]).unwrap();
        assert!((ds.avg_nnz_per_row() - 1.0).abs() < 1e-12);
    }
}
