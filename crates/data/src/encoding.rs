//! Key-value pair encodings for the horizontal-to-vertical repartition
//! (paper §4.2.1 step 3 and Appendix A / Table 5).
//!
//! Three wire formats are implemented, matching the paper's ablation:
//!
//! * **Naïve** — each pair is the original 〈u32 feature index, f64 feature
//!   value〉, 12 bytes.
//! * **Compressed** — feature ids are renumbered inside their column group
//!   (so `⌈log₂ p⌉` bits suffice for `p` group features) and values are
//!   replaced by histogram bin indexes (`⌈log₂ q⌉` bits for `q` bins); both
//!   are rounded up to whole bytes, as in the paper ("we use ⌈log(p)⌉ bytes
//!   to encode the new feature id").
//! * **Blockified** — the compressed pairs of one (file split × column
//!   group) cell as three flat arrays with a single header, eliminating
//!   per-vector framing (paper Figure 9).
//!
//! All encoders really produce bytes — the byte counts reported to the cost
//! model are the lengths of these buffers, not estimates.

use crate::block::Block;
use crate::error::DataError;
use crate::{BinId, FeatureId};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Bytes of one naïvely encoded 〈feature index, feature value〉 pair.
pub const NAIVE_PAIR_BYTES: usize = 12;

/// Whole bytes needed to address `cardinality` distinct values
/// (`⌈⌈log₂ cardinality⌉ / 8⌉`, minimum 1).
pub fn bytes_for_cardinality(cardinality: usize) -> usize {
    let bits = usize::BITS - cardinality.next_power_of_two().leading_zeros() - 1;
    usize::max(1, (bits as usize).div_ceil(8))
}

/// Bytes of one compressed pair for a group of `p` features and `q` bins.
pub fn compressed_pair_bytes(p: usize, q: usize) -> usize {
    bytes_for_cardinality(p) + bytes_for_cardinality(q)
}

fn put_uint(buf: &mut BytesMut, value: u64, width: usize) {
    buf.put_uint(value, width);
}

fn get_uint(buf: &mut Bytes, width: usize) -> u64 {
    buf.get_uint(width)
}

/// Encodes pairs in the naïve 12-byte format (for the Table 5 baseline).
pub fn encode_naive(pairs: &[(FeatureId, f64)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(pairs.len() * NAIVE_PAIR_BYTES);
    for &(f, v) in pairs {
        buf.put_u32(f);
        buf.put_f64(v);
    }
    buf.freeze()
}

/// Decodes the naïve format.
pub fn decode_naive(mut bytes: Bytes) -> Result<Vec<(FeatureId, f64)>, DataError> {
    if !bytes.len().is_multiple_of(NAIVE_PAIR_BYTES) {
        return Err(DataError::Shape(format!(
            "naive buffer len {} not a multiple of {NAIVE_PAIR_BYTES}",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len() / NAIVE_PAIR_BYTES);
    while bytes.has_remaining() {
        let f = bytes.get_u32();
        let v = bytes.get_f64();
        out.push((f, v));
    }
    Ok(out)
}

/// Encodes compressed 〈group-local feature id, bin index〉 pairs.
pub fn encode_compressed(pairs: &[(FeatureId, BinId)], p: usize, q: usize) -> Bytes {
    let fw = bytes_for_cardinality(p);
    let bw = bytes_for_cardinality(q);
    let mut buf = BytesMut::with_capacity(pairs.len() * (fw + bw));
    for &(f, b) in pairs {
        put_uint(&mut buf, u64::from(f), fw);
        put_uint(&mut buf, u64::from(b), bw);
    }
    buf.freeze()
}

/// Decodes the compressed format given the same `p` and `q`.
pub fn decode_compressed(
    mut bytes: Bytes,
    p: usize,
    q: usize,
) -> Result<Vec<(FeatureId, BinId)>, DataError> {
    let fw = bytes_for_cardinality(p);
    let bw = bytes_for_cardinality(q);
    let pair = fw + bw;
    if !bytes.len().is_multiple_of(pair) {
        return Err(DataError::Shape(format!(
            "compressed buffer len {} not a multiple of {pair}",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len() / pair);
    while bytes.has_remaining() {
        let f = get_uint(&mut bytes, fw) as FeatureId;
        let b = get_uint(&mut bytes, bw) as BinId;
        out.push((f, b));
    }
    Ok(out)
}

/// Encodes a whole [`Block`] in the blockified wire format: a fixed header
/// followed by the three flat arrays with compact element widths.
pub fn encode_block(block: &Block, p: usize, q: usize) -> Bytes {
    let fw = bytes_for_cardinality(p);
    let bw = bytes_for_cardinality(q);
    let mut buf = BytesMut::with_capacity(
        24 + block.nnz() * (fw + bw) + (block.n_rows() + 1) * 4,
    );
    buf.put_u32(block.file_split_index);
    buf.put_u32(block.row_offset);
    buf.put_u32(block.n_rows() as u32);
    buf.put_u32(block.nnz() as u32);
    for &f in &block.feats {
        put_uint(&mut buf, u64::from(f), fw);
    }
    for &b in &block.bins {
        put_uint(&mut buf, u64::from(b), bw);
    }
    for &ptr in &block.row_ptr {
        buf.put_u32(ptr);
    }
    buf.freeze()
}

/// Decodes the blockified wire format.
pub fn decode_block(mut bytes: Bytes, p: usize, q: usize) -> Result<Block, DataError> {
    let fw = bytes_for_cardinality(p);
    let bw = bytes_for_cardinality(q);
    if bytes.len() < 16 {
        return Err(DataError::Shape("block buffer shorter than header".into()));
    }
    let file_split_index = bytes.get_u32();
    let row_offset = bytes.get_u32();
    let n_rows = bytes.get_u32() as usize;
    let nnz = bytes.get_u32() as usize;
    let need = nnz * (fw + bw) + (n_rows + 1) * 4;
    if bytes.len() != need {
        return Err(DataError::Shape(format!(
            "block buffer has {} payload bytes, header implies {need}",
            bytes.len()
        )));
    }
    let mut feats = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        feats.push(get_uint(&mut bytes, fw) as FeatureId);
    }
    let mut bins = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        bins.push(get_uint(&mut bytes, bw) as BinId);
    }
    let mut row_ptr = Vec::with_capacity(n_rows + 1);
    for _ in 0..=n_rows {
        row_ptr.push(bytes.get_u32());
    }
    Block::new(file_split_index, row_offset, feats, bins, row_ptr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_widths_match_paper_arithmetic() {
        assert_eq!(bytes_for_cardinality(1), 1);
        assert_eq!(bytes_for_cardinality(2), 1);
        assert_eq!(bytes_for_cardinality(20), 1); // q = 20 bins -> 1 byte
        assert_eq!(bytes_for_cardinality(256), 1);
        assert_eq!(bytes_for_cardinality(257), 2);
        assert_eq!(bytes_for_cardinality(41_250), 2); // 330k feats / 8 workers
        assert_eq!(bytes_for_cardinality(65_536), 2);
        assert_eq!(bytes_for_cardinality(65_537), 3);
    }

    #[test]
    fn compression_ratio_reaches_4x() {
        // p <= 65536 group features, q <= 256 bins: pair shrinks 12 -> 3
        // bytes; the paper reports "up to 4x compression".
        let ratio = NAIVE_PAIR_BYTES as f64 / compressed_pair_bytes(50_000, 20) as f64;
        assert!(ratio >= 4.0, "ratio = {ratio}");
    }

    #[test]
    fn naive_roundtrip() {
        let pairs = vec![(0u32, 1.5f64), (7, -2.25), (100_000, 0.0)];
        let enc = encode_naive(&pairs);
        assert_eq!(enc.len(), pairs.len() * NAIVE_PAIR_BYTES);
        assert_eq!(decode_naive(enc).unwrap(), pairs);
    }

    #[test]
    fn naive_rejects_truncated_buffer() {
        let enc = encode_naive(&[(1, 2.0)]);
        assert!(decode_naive(enc.slice(0..5)).is_err());
    }

    #[test]
    fn compressed_roundtrip_various_widths() {
        let pairs = vec![(0u32, 0u16), (199, 19), (63, 7)];
        for (p, q) in [(200, 20), (70_000, 300), (1 << 20, 65_000)] {
            let enc = encode_compressed(&pairs, p, q);
            assert_eq!(
                enc.len(),
                pairs.len() * compressed_pair_bytes(p, q),
                "p={p} q={q}"
            );
            assert_eq!(decode_compressed(enc, p, q).unwrap(), pairs, "p={p} q={q}");
        }
    }

    #[test]
    fn compressed_rejects_misaligned_buffer() {
        let enc = encode_compressed(&[(1, 1)], 200, 20);
        assert!(decode_compressed(enc.slice(0..1), 200, 20).is_err());
    }

    #[test]
    fn block_roundtrip() {
        let block = Block::new(
            3,
            100,
            vec![0, 5, 2, 1],
            vec![1, 19, 0, 7],
            vec![0, 2, 2, 3, 4],
        )
        .unwrap();
        let enc = encode_block(&block, 64, 20);
        let back = decode_block(enc, 64, 20).unwrap();
        assert_eq!(block, back);
    }

    #[test]
    fn block_decode_rejects_wrong_length() {
        let block = Block::new(0, 0, vec![1], vec![1], vec![0, 1]).unwrap();
        let enc = encode_block(&block, 64, 20);
        assert!(decode_block(enc.slice(0..enc.len() - 1), 64, 20).is_err());
        assert!(decode_block(enc.slice(0..8), 64, 20).is_err());
    }

    #[test]
    fn blockified_beats_per_pair_framing() {
        // 1000 pairs in one block: header amortizes to nothing, while even a
        // 4-byte per-row length prefix on tiny vectors would dominate.
        let n = 1000usize;
        let feats: Vec<u32> = (0..n as u32).map(|i| i % 64).collect();
        let bins: Vec<u16> = (0..n as u16).map(|i| i % 20).collect();
        let row_ptr: Vec<u32> = (0..=n as u32).collect(); // one pair per row
        let block = Block::new(0, 0, feats, bins, row_ptr).unwrap();
        let enc = encode_block(&block, 64, 20);
        // 16-byte header + 2 bytes/pair + 4 bytes/row pointer.
        assert_eq!(enc.len(), 16 + n * 2 + (n + 1) * 4);
    }
}
