//! Key-value pair encodings for the horizontal-to-vertical repartition
//! (paper §4.2.1 step 3 and Appendix A / Table 5).
//!
//! Three wire formats are implemented, matching the paper's ablation:
//!
//! * **Naïve** — each pair is the original 〈u32 feature index, f64 feature
//!   value〉, 12 bytes.
//! * **Compressed** — feature ids are renumbered inside their column group
//!   (so `⌈log₂ p⌉` bits suffice for `p` group features) and values are
//!   replaced by histogram bin indexes (`⌈log₂ q⌉` bits for `q` bins); both
//!   are rounded up to whole bytes, as in the paper ("we use ⌈log(p)⌉ bytes
//!   to encode the new feature id").
//! * **Blockified** — the compressed pairs of one (file split × column
//!   group) cell as three flat arrays with a single header, eliminating
//!   per-vector framing (paper Figure 9).
//!
//! All encoders really produce bytes — the byte counts reported to the cost
//! model are the lengths of these buffers, not estimates.

use crate::block::Block;
use crate::error::DataError;
use crate::{BinId, FeatureId};
use bytes::Bytes;

/// Bytes of one naïvely encoded 〈feature index, feature value〉 pair.
pub const NAIVE_PAIR_BYTES: usize = 12;

/// Whole bytes needed to address `cardinality` distinct values
/// (`⌈⌈log₂ cardinality⌉ / 8⌉`, minimum 1).
pub fn bytes_for_cardinality(cardinality: usize) -> usize {
    let bits = usize::BITS - cardinality.next_power_of_two().leading_zeros() - 1;
    usize::max(1, (bits as usize).div_ceil(8))
}

/// Bytes of one compressed pair for a group of `p` features and `q` bins.
pub fn compressed_pair_bytes(p: usize, q: usize) -> usize {
    bytes_for_cardinality(p) + bytes_for_cardinality(q)
}

/// Writes `value` big-endian into the `dst.len()`-byte slot (the wire
/// format stays big-endian, matching the original `put_uint` framing).
#[inline]
fn put_be(dst: &mut [u8], value: u64) {
    let w = dst.len();
    dst.copy_from_slice(&value.to_be_bytes()[8 - w..]);
}

/// Reads a big-endian unsigned integer of `src.len()` bytes.
#[inline]
fn get_be(src: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[8 - src.len()..].copy_from_slice(src);
    u64::from_be_bytes(buf)
}

/// Stages a `u32` array into `out` at the given element width with bulk
/// chunked copies — width-specialized for the common 1- and 2-byte cases so
/// the hot repartition loop compiles to straight stores instead of
/// per-element variable-width framing.
fn put_u32s(out: &mut [u8], values: &[u32], width: usize) {
    debug_assert_eq!(out.len(), values.len() * width);
    match width {
        1 => {
            for (dst, &v) in out.iter_mut().zip(values) {
                *dst = v as u8;
            }
        }
        2 => {
            for (dst, &v) in out.chunks_exact_mut(2).zip(values) {
                dst.copy_from_slice(&(v as u16).to_be_bytes());
            }
        }
        4 => {
            for (dst, &v) in out.chunks_exact_mut(4).zip(values) {
                dst.copy_from_slice(&v.to_be_bytes());
            }
        }
        _ => {
            for (dst, &v) in out.chunks_exact_mut(width).zip(values) {
                put_be(dst, u64::from(v));
            }
        }
    }
}

/// Reads a `u32` array encoded at the given element width.
fn get_u32s(src: &[u8], width: usize) -> Vec<u32> {
    debug_assert!(src.len().is_multiple_of(width));
    match width {
        1 => src.iter().map(|&b| u32::from(b)).collect(),
        2 => src
            .chunks_exact(2)
            .map(|c| u32::from(u16::from_be_bytes([c[0], c[1]])))
            .collect(),
        4 => src
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
        _ => src.chunks_exact(width).map(|c| get_be(c) as u32).collect(),
    }
}

/// Encodes pairs in the naïve 12-byte format (for the Table 5 baseline).
pub fn encode_naive(pairs: &[(FeatureId, f64)]) -> Bytes {
    let mut out = vec![0u8; pairs.len() * NAIVE_PAIR_BYTES];
    for (dst, &(f, v)) in out.chunks_exact_mut(NAIVE_PAIR_BYTES).zip(pairs) {
        dst[0..4].copy_from_slice(&f.to_be_bytes());
        dst[4..12].copy_from_slice(&v.to_be_bytes());
    }
    Bytes::from(out)
}

/// Decodes the naïve format.
pub fn decode_naive(bytes: Bytes) -> Result<Vec<(FeatureId, f64)>, DataError> {
    if !bytes.len().is_multiple_of(NAIVE_PAIR_BYTES) {
        return Err(DataError::Shape(format!(
            "naive buffer len {} not a multiple of {NAIVE_PAIR_BYTES}",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(NAIVE_PAIR_BYTES)
        .map(|c| {
            let f = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
            let v = f64::from_be_bytes([c[4], c[5], c[6], c[7], c[8], c[9], c[10], c[11]]);
            (f, v)
        })
        .collect())
}

/// Encodes compressed 〈group-local feature id, bin index〉 pairs.
pub fn encode_compressed(pairs: &[(FeatureId, BinId)], p: usize, q: usize) -> Bytes {
    let fw = bytes_for_cardinality(p);
    let bw = bytes_for_cardinality(q);
    let mut out = vec![0u8; pairs.len() * (fw + bw)];
    match (fw, bw) {
        // The §5.1 workloads land here (p ≤ 65536, q ≤ 256): fixed-shape
        // stores the optimizer unrolls.
        (1, 1) => {
            for (dst, &(f, b)) in out.chunks_exact_mut(2).zip(pairs) {
                dst[0] = f as u8;
                dst[1] = b as u8;
            }
        }
        (2, 1) => {
            for (dst, &(f, b)) in out.chunks_exact_mut(3).zip(pairs) {
                dst[0..2].copy_from_slice(&(f as u16).to_be_bytes());
                dst[2] = b as u8;
            }
        }
        _ => {
            for (dst, &(f, b)) in out.chunks_exact_mut(fw + bw).zip(pairs) {
                put_be(&mut dst[..fw], u64::from(f));
                put_be(&mut dst[fw..], u64::from(b));
            }
        }
    }
    Bytes::from(out)
}

/// Decodes the compressed format given the same `p` and `q`.
pub fn decode_compressed(
    bytes: Bytes,
    p: usize,
    q: usize,
) -> Result<Vec<(FeatureId, BinId)>, DataError> {
    let fw = bytes_for_cardinality(p);
    let bw = bytes_for_cardinality(q);
    let pair = fw + bw;
    if !bytes.len().is_multiple_of(pair) {
        return Err(DataError::Shape(format!(
            "compressed buffer len {} not a multiple of {pair}",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(pair)
        .map(|c| (get_be(&c[..fw]) as FeatureId, get_be(&c[fw..]) as BinId))
        .collect())
}

/// Encodes a whole [`Block`] in the blockified wire format: a fixed header
/// followed by the three flat arrays with compact element widths.
pub fn encode_block(block: &Block, p: usize, q: usize) -> Bytes {
    let fw = bytes_for_cardinality(p);
    let bw = bytes_for_cardinality(q);
    let nnz = block.nnz();
    let ptr_start = 16 + nnz * (fw + bw);
    let mut out = vec![0u8; ptr_start + (block.n_rows() + 1) * 4];
    out[0..4].copy_from_slice(&block.file_split_index.to_be_bytes());
    out[4..8].copy_from_slice(&block.row_offset.to_be_bytes());
    out[8..12].copy_from_slice(&(block.n_rows() as u32).to_be_bytes());
    out[12..16].copy_from_slice(&(nnz as u32).to_be_bytes());
    put_u32s(&mut out[16..16 + nnz * fw], &block.feats, fw);
    {
        let bins = &mut out[16 + nnz * fw..ptr_start];
        match bw {
            1 => {
                for (dst, &b) in bins.iter_mut().zip(&block.bins) {
                    *dst = b as u8;
                }
            }
            _ => {
                for (dst, &b) in bins.chunks_exact_mut(bw).zip(&block.bins) {
                    put_be(dst, u64::from(b));
                }
            }
        }
    }
    put_u32s(&mut out[ptr_start..], &block.row_ptr, 4);
    Bytes::from(out)
}

/// Decodes the blockified wire format.
pub fn decode_block(bytes: Bytes, p: usize, q: usize) -> Result<Block, DataError> {
    let fw = bytes_for_cardinality(p);
    let bw = bytes_for_cardinality(q);
    if bytes.len() < 16 {
        return Err(DataError::Shape("block buffer shorter than header".into()));
    }
    let hdr = |i: usize| u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
    let file_split_index = hdr(0);
    let row_offset = hdr(4);
    let n_rows = hdr(8) as usize;
    let nnz = hdr(12) as usize;
    let need = nnz.checked_mul(fw + bw).and_then(|v| v.checked_add((n_rows + 1) * 4));
    if need != Some(bytes.len() - 16) {
        return Err(DataError::Shape(format!(
            "block buffer has {} payload bytes, header implies {need:?}",
            bytes.len() - 16
        )));
    }
    let feats_end = 16 + nnz * fw;
    let bins_end = feats_end + nnz * bw;
    let feats = get_u32s(&bytes[16..feats_end], fw);
    let bins: Vec<BinId> = match bw {
        1 => bytes[feats_end..bins_end].iter().map(|&b| BinId::from(b)).collect(),
        _ => bytes[feats_end..bins_end]
            .chunks_exact(bw)
            .map(|c| get_be(c) as BinId)
            .collect(),
    };
    let row_ptr = get_u32s(&bytes[bins_end..], 4);
    Block::new(file_split_index, row_offset, feats, bins, row_ptr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_widths_match_paper_arithmetic() {
        assert_eq!(bytes_for_cardinality(1), 1);
        assert_eq!(bytes_for_cardinality(2), 1);
        assert_eq!(bytes_for_cardinality(20), 1); // q = 20 bins -> 1 byte
        assert_eq!(bytes_for_cardinality(256), 1);
        assert_eq!(bytes_for_cardinality(257), 2);
        assert_eq!(bytes_for_cardinality(41_250), 2); // 330k feats / 8 workers
        assert_eq!(bytes_for_cardinality(65_536), 2);
        assert_eq!(bytes_for_cardinality(65_537), 3);
    }

    #[test]
    fn compression_ratio_reaches_4x() {
        // p <= 65536 group features, q <= 256 bins: pair shrinks 12 -> 3
        // bytes; the paper reports "up to 4x compression".
        let ratio = NAIVE_PAIR_BYTES as f64 / compressed_pair_bytes(50_000, 20) as f64;
        assert!(ratio >= 4.0, "ratio = {ratio}");
    }

    #[test]
    fn naive_roundtrip() {
        let pairs = vec![(0u32, 1.5f64), (7, -2.25), (100_000, 0.0)];
        let enc = encode_naive(&pairs);
        assert_eq!(enc.len(), pairs.len() * NAIVE_PAIR_BYTES);
        assert_eq!(decode_naive(enc).unwrap(), pairs);
    }

    #[test]
    fn naive_rejects_truncated_buffer() {
        let enc = encode_naive(&[(1, 2.0)]);
        assert!(decode_naive(enc.slice(0..5)).is_err());
    }

    #[test]
    fn compressed_roundtrip_various_widths() {
        let pairs = vec![(0u32, 0u16), (199, 19), (63, 7)];
        for (p, q) in [(200, 20), (70_000, 300), (1 << 20, 65_000)] {
            let enc = encode_compressed(&pairs, p, q);
            assert_eq!(
                enc.len(),
                pairs.len() * compressed_pair_bytes(p, q),
                "p={p} q={q}"
            );
            assert_eq!(decode_compressed(enc, p, q).unwrap(), pairs, "p={p} q={q}");
        }
    }

    #[test]
    fn compressed_rejects_misaligned_buffer() {
        let enc = encode_compressed(&[(1, 1)], 200, 20);
        assert!(decode_compressed(enc.slice(0..1), 200, 20).is_err());
    }

    #[test]
    fn block_roundtrip() {
        let block = Block::new(
            3,
            100,
            vec![0, 5, 2, 1],
            vec![1, 19, 0, 7],
            vec![0, 2, 2, 3, 4],
        )
        .unwrap();
        let enc = encode_block(&block, 64, 20);
        let back = decode_block(enc, 64, 20).unwrap();
        assert_eq!(block, back);
    }

    #[test]
    fn block_decode_rejects_wrong_length() {
        let block = Block::new(0, 0, vec![1], vec![1], vec![0, 1]).unwrap();
        let enc = encode_block(&block, 64, 20);
        assert!(decode_block(enc.slice(0..enc.len() - 1), 64, 20).is_err());
        assert!(decode_block(enc.slice(0..8), 64, 20).is_err());
    }

    #[test]
    fn blockified_beats_per_pair_framing() {
        // 1000 pairs in one block: header amortizes to nothing, while even a
        // 4-byte per-row length prefix on tiny vectors would dominate.
        let n = 1000usize;
        let feats: Vec<u32> = (0..n as u32).map(|i| i % 64).collect();
        let bins: Vec<u16> = (0..n as u16).map(|i| i % 20).collect();
        let row_ptr: Vec<u32> = (0..=n as u32).collect(); // one pair per row
        let block = Block::new(0, 0, feats, bins, row_ptr).unwrap();
        let enc = encode_block(&block, 64, 20);
        // 16-byte header + 2 bytes/pair + 4 bytes/row pointer.
        assert_eq!(enc.len(), 16 + n * 2 + (n + 1) * 4);
    }
}
