//! Bin-encoded matrices: the storage trainers actually scan.
//!
//! After quantile sketching, every feature value is replaced by the index of
//! the histogram bin it falls into (paper §4.2.1 step 3: "we encode feature
//! values with histogram bin indexes … the model accuracy will not be
//! harmed"). Training then only ever touches 〈feature, bin〉 pairs, so the
//! hot-loop storage is specialized:
//!
//! * [`BinnedRows`] — row-store: per instance, a run of 〈feature, bin〉 pairs
//!   (what QD2 and QD4 scan).
//! * [`BinnedColumns`] — column-store: per feature, a run of 〈instance, bin〉
//!   pairs (what QD1 and QD3 scan).

use crate::error::DataError;
use crate::{BinId, FeatureId, InstanceId};
use serde::{Deserialize, Serialize};

/// Row-store of binned values (CSR of 〈feature, bin〉 pairs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinnedRows {
    n_rows: usize,
    n_features: usize,
    row_ptr: Vec<usize>,
    feats: Vec<FeatureId>,
    bins: Vec<BinId>,
}

/// Column-store of binned values (CSC of 〈instance, bin〉 pairs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinnedColumns {
    n_rows: usize,
    n_features: usize,
    col_ptr: Vec<usize>,
    rows: Vec<InstanceId>,
    bins: Vec<BinId>,
}

/// Incremental builder for [`BinnedRows`].
#[derive(Debug)]
pub struct BinnedRowsBuilder {
    n_features: usize,
    row_ptr: Vec<usize>,
    feats: Vec<FeatureId>,
    bins: Vec<BinId>,
}

impl BinnedRowsBuilder {
    /// Creates a builder for matrices with `n_features` columns.
    pub fn new(n_features: usize) -> Self {
        BinnedRowsBuilder { n_features, row_ptr: vec![0], feats: Vec::new(), bins: Vec::new() }
    }

    /// Creates a builder with capacity hints.
    pub fn with_capacity(n_features: usize, n_rows: usize, nnz: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0);
        BinnedRowsBuilder {
            n_features,
            row_ptr,
            feats: Vec::with_capacity(nnz),
            bins: Vec::with_capacity(nnz),
        }
    }

    /// Appends a row of (feature, bin) pairs; pairs must be sorted by feature.
    pub fn push_row(&mut self, entries: &[(FeatureId, BinId)]) -> Result<(), DataError> {
        for w in entries.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(DataError::Shape(format!(
                    "row {} entries not strictly ascending by feature",
                    self.row_ptr.len() - 1
                )));
            }
        }
        if let Some(&(last, _)) = entries.last() {
            if last as usize >= self.n_features {
                return Err(DataError::IndexOutOfBounds {
                    kind: "feature",
                    index: last as usize,
                    bound: self.n_features,
                });
            }
        }
        for &(f, b) in entries {
            self.feats.push(f);
            self.bins.push(b);
        }
        self.row_ptr.push(self.feats.len());
        Ok(())
    }

    /// Finalizes the builder.
    pub fn build(self) -> BinnedRows {
        BinnedRows {
            n_rows: self.row_ptr.len() - 1,
            n_features: self.n_features,
            row_ptr: self.row_ptr,
            feats: self.feats,
            bins: self.bins,
        }
    }
}

impl BinnedRows {
    /// Number of instances.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of stored pairs.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.feats.len()
    }

    /// Row `i` as parallel `(features, bins)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[FeatureId], &[BinId]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.feats[lo..hi], &self.bins[lo..hi])
    }

    /// Bin of `(row, feature)` or `None` when the value is missing.
    pub fn get(&self, row: usize, feature: FeatureId) -> Option<BinId> {
        let (feats, bins) = self.row(row);
        feats.binary_search(&feature).ok().map(|k| bins[k])
    }

    /// Converts to the equivalent column-store.
    pub fn to_columns(&self) -> BinnedColumns {
        let mut counts = vec![0usize; self.n_features];
        for &f in &self.feats {
            counts[f as usize] += 1;
        }
        let mut col_ptr = Vec::with_capacity(self.n_features + 1);
        col_ptr.push(0usize);
        for j in 0..self.n_features {
            col_ptr.push(col_ptr[j] + counts[j]);
        }
        let mut cursor = col_ptr[..self.n_features].to_vec();
        let mut rows = vec![0 as InstanceId; self.nnz()];
        let mut bins = vec![0 as BinId; self.nnz()];
        for i in 0..self.n_rows {
            let (feats, row_bins) = self.row(i);
            for (&f, &b) in feats.iter().zip(row_bins) {
                let dst = cursor[f as usize];
                rows[dst] = i as InstanceId;
                bins[dst] = b;
                cursor[f as usize] += 1;
            }
        }
        BinnedColumns { n_rows: self.n_rows, n_features: self.n_features, col_ptr, rows, bins }
    }

    /// Extracts rows `lo..hi` as a horizontal shard.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> BinnedRows {
        assert!(lo <= hi && hi <= self.n_rows, "row slice out of range");
        let base = self.row_ptr[lo];
        let end = self.row_ptr[hi];
        BinnedRows {
            n_rows: hi - lo,
            n_features: self.n_features,
            row_ptr: self.row_ptr[lo..=hi].iter().map(|&p| p - base).collect(),
            feats: self.feats[base..end].to_vec(),
            bins: self.bins[base..end].to_vec(),
        }
    }

    /// Extracts a vertical shard containing `cols` (renumbered `0..cols.len()`
    /// in the given order), keeping all rows.
    ///
    /// This is the row-store-of-a-column-group that Vero workers hold.
    pub fn select_cols(&self, cols: &[FeatureId]) -> BinnedRows {
        let mut remap = vec![u32::MAX; self.n_features];
        for (new, &old) in cols.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut b = BinnedRowsBuilder::new(cols.len());
        let mut entries: Vec<(FeatureId, BinId)> = Vec::new();
        for i in 0..self.n_rows {
            entries.clear();
            let (feats, bins) = self.row(i);
            for (&f, &bin) in feats.iter().zip(bins) {
                let new = remap[f as usize];
                if new != u32::MAX {
                    entries.push((new, bin));
                }
            }
            entries.sort_unstable_by_key(|&(f, _)| f);
            b.push_row(&entries).expect("remapped entries are valid");
        }
        b.build()
    }

    /// Bytes of heap storage used (exact, for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.feats.len() * std::mem::size_of::<FeatureId>()
            + self.bins.len() * std::mem::size_of::<BinId>()
    }
}

impl BinnedColumns {
    /// Number of instances.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of stored pairs.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Column `j` as parallel `(instances, bins)` slices; instances ascend.
    #[inline]
    pub fn col(&self, j: usize) -> (&[InstanceId], &[BinId]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.rows[lo..hi], &self.bins[lo..hi])
    }

    /// Iterates columns as `(column index, instances, bins)`.
    pub fn iter_cols(&self) -> impl Iterator<Item = (usize, &[InstanceId], &[BinId])> {
        (0..self.n_features).map(move |j| {
            let (r, b) = self.col(j);
            (j, r, b)
        })
    }

    /// Converts to the equivalent row-store.
    pub fn to_rows(&self) -> BinnedRows {
        let mut counts = vec![0usize; self.n_rows];
        for &r in &self.rows {
            counts[r as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        row_ptr.push(0usize);
        for i in 0..self.n_rows {
            row_ptr.push(row_ptr[i] + counts[i]);
        }
        let mut cursor = row_ptr[..self.n_rows].to_vec();
        let mut feats = vec![0 as FeatureId; self.nnz()];
        let mut bins = vec![0 as BinId; self.nnz()];
        for j in 0..self.n_features {
            let (rows, col_bins) = self.col(j);
            for (&r, &b) in rows.iter().zip(col_bins) {
                let dst = cursor[r as usize];
                feats[dst] = j as FeatureId;
                bins[dst] = b;
                cursor[r as usize] += 1;
            }
        }
        BinnedRows { n_rows: self.n_rows, n_features: self.n_features, row_ptr, feats, bins }
    }

    /// Extracts a vertical shard containing `cols` (renumbered in order).
    pub fn select_cols(&self, cols: &[FeatureId]) -> BinnedColumns {
        let mut col_ptr = Vec::with_capacity(cols.len() + 1);
        col_ptr.push(0usize);
        let mut rows = Vec::new();
        let mut bins = Vec::new();
        for &j in cols {
            let (r, b) = self.col(j as usize);
            rows.extend_from_slice(r);
            bins.extend_from_slice(b);
            col_ptr.push(rows.len());
        }
        BinnedColumns { n_rows: self.n_rows, n_features: cols.len(), col_ptr, rows, bins }
    }

    /// Bytes of heap storage used (exact, for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.rows.len() * std::mem::size_of::<InstanceId>()
            + self.bins.len() * std::mem::size_of::<BinId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BinnedRows {
        let mut b = BinnedRowsBuilder::new(4);
        b.push_row(&[(0, 3), (2, 1)]).unwrap();
        b.push_row(&[(1, 2)]).unwrap();
        b.push_row(&[]).unwrap();
        b.push_row(&[(0, 0), (1, 1), (3, 5)]).unwrap();
        b.build()
    }

    #[test]
    fn builder_validates_order_and_bounds() {
        let mut b = BinnedRowsBuilder::new(3);
        assert!(b.push_row(&[(1, 0), (0, 0)]).is_err());
        assert!(b.push_row(&[(0, 0), (0, 1)]).is_err());
        assert!(b.push_row(&[(0, 0), (3, 1)]).is_err());
        assert!(b.push_row(&[(0, 0), (2, 1)]).is_ok());
    }

    #[test]
    fn get_finds_bins() {
        let m = sample();
        assert_eq!(m.get(0, 2), Some(1));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(3, 3), Some(5));
    }

    #[test]
    fn rows_to_columns_roundtrip() {
        let m = sample();
        assert_eq!(m, m.to_columns().to_rows());
    }

    #[test]
    fn columns_are_instance_sorted() {
        let cols = sample().to_columns();
        let (rows, bins) = cols.col(0);
        assert_eq!(rows, &[0, 3]);
        assert_eq!(bins, &[3, 0]);
        let (rows, _) = cols.col(1);
        assert_eq!(rows, &[1, 3]);
    }

    #[test]
    fn slice_rows_shards_horizontally() {
        let m = sample();
        let shard = m.slice_rows(1, 3);
        assert_eq!(shard.n_rows(), 2);
        assert_eq!(shard.get(0, 1), Some(2));
        assert_eq!(shard.get(1, 0), None);
    }

    #[test]
    fn select_cols_shards_vertically_rowstore() {
        let m = sample();
        let shard = m.select_cols(&[3, 0]);
        assert_eq!(shard.n_features(), 2);
        assert_eq!(shard.n_rows(), 4);
        // Original feature 3 is now feature 0; feature 0 is now feature 1.
        assert_eq!(shard.get(3, 0), Some(5));
        assert_eq!(shard.get(3, 1), Some(0));
        assert_eq!(shard.get(0, 1), Some(3));
    }

    #[test]
    fn select_cols_shards_vertically_colstore() {
        let cols = sample().to_columns();
        let shard = cols.select_cols(&[2, 1]);
        assert_eq!(shard.n_features(), 2);
        assert_eq!(shard.col(0).0, &[0]);
        assert_eq!(shard.col(1).0, &[1, 3]);
    }

    #[test]
    fn heap_bytes_is_exact() {
        let m = sample();
        assert_eq!(m.heap_bytes(), 5 * 8 + 6 * 4 + 6 * 2);
    }
}
