//! Blockified column groups and two-phase indexing (paper §4.2.3, Figure 9).
//!
//! During the horizontal-to-vertical transformation each source worker sends
//! its slice of a column group as one *block* — three flat arrays (feature
//! indexes, histogram bin indexes, instance pointers) — rather than millions
//! of small vectors, sidestepping (de)serialization overhead. After
//! repartition, a worker's data sub-matrix is a sequence of blocks sorted by
//! the sending worker's file-split index. Row lookup is *two-phase*: binary
//! search the block containing a global row id, then index inside the block.
//! Blocks are merged down to a handful (the paper observes ≤ 5) so the
//! two-phase cost is negligible.

use crate::error::DataError;
use crate::{BinId, FeatureId};
use serde::{Deserialize, Serialize};

/// One contiguous slice of a column group: rows `row_offset ..
/// row_offset + n_rows()` of the (vertically sharded) dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Order key: index of the originating file split / source worker.
    pub file_split_index: u32,
    /// Global instance id of the first row in this block.
    pub row_offset: u32,
    /// Group-local feature ids of the stored pairs.
    pub feats: Vec<FeatureId>,
    /// Histogram bin indexes of the stored pairs.
    pub bins: Vec<BinId>,
    /// Instance pointers: `row_ptr[i]..row_ptr[i+1]` delimits local row `i`.
    pub row_ptr: Vec<u32>,
}

impl Block {
    /// Builds a block, validating the pointer structure.
    pub fn new(
        file_split_index: u32,
        row_offset: u32,
        feats: Vec<FeatureId>,
        bins: Vec<BinId>,
        row_ptr: Vec<u32>,
    ) -> Result<Self, DataError> {
        if feats.len() != bins.len() {
            return Err(DataError::Shape(format!(
                "feats len {} != bins len {}",
                feats.len(),
                bins.len()
            )));
        }
        if row_ptr.first() != Some(&0) {
            return Err(DataError::Shape("row_ptr must start with 0".into()));
        }
        if row_ptr.last().map(|&p| p as usize) != Some(feats.len()) {
            return Err(DataError::Shape("row_ptr does not span the pairs".into()));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(DataError::Shape("row_ptr is not monotone".into()));
            }
        }
        Ok(Block { file_split_index, row_offset, feats, bins, row_ptr })
    }

    /// Number of rows covered by this block.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored pairs.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.feats.len()
    }

    /// Local row `i` as parallel `(features, bins)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[FeatureId], &[BinId]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.feats[lo..hi], &self.bins[lo..hi])
    }

    /// Appends another block's rows (which must directly follow this one).
    fn absorb(&mut self, next: &Block) {
        debug_assert_eq!(
            self.row_offset as usize + self.n_rows(),
            next.row_offset as usize,
            "blocks must be row-contiguous to merge"
        );
        let base = self.nnz() as u32;
        self.feats.extend_from_slice(&next.feats);
        self.bins.extend_from_slice(&next.bins);
        self.row_ptr.extend(next.row_ptr[1..].iter().map(|&p| p + base));
    }

    /// Bytes of heap storage used.
    pub fn heap_bytes(&self) -> usize {
        self.feats.len() * std::mem::size_of::<FeatureId>()
            + self.bins.len() * std::mem::size_of::<BinId>()
            + self.row_ptr.len() * std::mem::size_of::<u32>()
    }
}

/// A worker's data sub-matrix after repartition: blocks sorted by file-split
/// index, covering global rows `0..n_rows` contiguously, with the two-phase
/// index over them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockedRows {
    n_features: usize,
    blocks: Vec<Block>,
    /// Phase-one index: `block_row_offsets[k]` is the first global row id of
    /// block `k`; one trailing sentinel equal to `n_rows`.
    block_row_offsets: Vec<u32>,
}

impl BlockedRows {
    /// Assembles a sub-matrix from received blocks.
    ///
    /// Blocks are sorted by `file_split_index` (paper step 4: "sorting the
    /// received column groups w.r.t. the original worker ids") and must then
    /// cover rows contiguously from 0.
    pub fn assemble(n_features: usize, mut blocks: Vec<Block>) -> Result<Self, DataError> {
        blocks.sort_by_key(|b| b.file_split_index);
        let mut expected = 0u32;
        for b in &blocks {
            if b.row_offset != expected {
                return Err(DataError::Shape(format!(
                    "block {} starts at row {} but previous blocks end at {}",
                    b.file_split_index, b.row_offset, expected
                )));
            }
            for &f in &b.feats {
                if f as usize >= n_features {
                    return Err(DataError::IndexOutOfBounds {
                        kind: "feature",
                        index: f as usize,
                        bound: n_features,
                    });
                }
            }
            expected += b.n_rows() as u32;
        }
        let mut offsets: Vec<u32> = blocks.iter().map(|b| b.row_offset).collect();
        offsets.push(expected);
        Ok(BlockedRows { n_features, blocks, block_row_offsets: offsets })
    }

    /// Total number of rows covered.
    #[inline]
    pub fn n_rows(&self) -> usize {
        *self.block_row_offsets.last().unwrap_or(&0) as usize
    }

    /// Number of group-local features.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of stored pairs across all blocks.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(Block::nnz).sum()
    }

    /// Number of blocks (paper: ≤ 5 after merging).
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Two-phase lookup: global row id → `(features, bins)` slices.
    ///
    /// Phase one binary-searches the block; phase two indexes inside it.
    #[inline]
    pub fn row(&self, global_row: u32) -> (&[FeatureId], &[BinId]) {
        debug_assert!((global_row as usize) < self.n_rows(), "row out of range");
        let block_idx = match self.block_row_offsets.binary_search(&global_row) {
            Ok(k) if k == self.blocks.len() => k - 1,
            Ok(k) => k,
            Err(k) => k - 1,
        };
        let block = &self.blocks[block_idx];
        block.row((global_row - block.row_offset) as usize)
    }

    /// Merges adjacent blocks until at most `max_blocks` remain.
    pub fn merge(&mut self, max_blocks: usize) {
        assert!(max_blocks >= 1, "must keep at least one block");
        while self.blocks.len() > max_blocks {
            // Merge the adjacent pair with the smallest combined size to keep
            // the work balanced.
            let mut best = 0usize;
            let mut best_size = usize::MAX;
            for k in 0..self.blocks.len() - 1 {
                let size = self.blocks[k].nnz() + self.blocks[k + 1].nnz();
                if size < best_size {
                    best_size = size;
                    best = k;
                }
            }
            let next = self.blocks.remove(best + 1);
            self.blocks[best].absorb(&next);
            self.block_row_offsets.remove(best + 1);
        }
    }

    /// Converts the sub-matrix into one contiguous [`crate::BinnedRows`]
    /// (used by tests and by trainers that want a flat view).
    pub fn to_binned_rows(&self) -> crate::BinnedRows {
        let mut b = crate::binned::BinnedRowsBuilder::with_capacity(
            self.n_features,
            self.n_rows(),
            self.nnz(),
        );
        let mut entries: Vec<(FeatureId, BinId)> = Vec::new();
        for r in 0..self.n_rows() as u32 {
            let (feats, bins) = self.row(r);
            entries.clear();
            entries.extend(feats.iter().copied().zip(bins.iter().copied()));
            entries.sort_unstable_by_key(|&(f, _)| f);
            b.push_row(&entries).expect("block rows have valid features");
        }
        b.build()
    }

    /// Bytes of heap storage used.
    pub fn heap_bytes(&self) -> usize {
        self.blocks.iter().map(Block::heap_bytes).sum::<usize>()
            + self.block_row_offsets.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(split: u32, offset: u32, rows: &[&[(u32, u16)]]) -> Block {
        let mut feats = Vec::new();
        let mut bins = Vec::new();
        let mut row_ptr = vec![0u32];
        for row in rows {
            for &(f, b) in *row {
                feats.push(f);
                bins.push(b);
            }
            row_ptr.push(feats.len() as u32);
        }
        Block::new(split, offset, feats, bins, row_ptr).unwrap()
    }

    fn sample() -> BlockedRows {
        // Rows 0-1 from split 0, rows 2-4 from split 1, row 5 from split 2.
        let b0 = block(0, 0, &[&[(0, 1), (2, 3)], &[(1, 2)]]);
        let b1 = block(1, 2, &[&[], &[(0, 5)], &[(2, 7)]]);
        let b2 = block(2, 5, &[&[(1, 9)]]);
        // Deliver out of order: assemble must sort by file split index.
        BlockedRows::assemble(3, vec![b1, b2, b0]).unwrap()
    }

    #[test]
    fn malformed_pointers_error_instead_of_panicking() {
        // Empty row_ptr (e.g. a truncated wire payload) must be a DataError.
        assert!(Block::new(0, 0, vec![], vec![], vec![]).is_err());
        // row_ptr not spanning the pairs.
        assert!(Block::new(0, 0, vec![1, 2], vec![1, 2], vec![0, 1]).is_err());
        // Non-monotone row_ptr.
        assert!(Block::new(0, 0, vec![1, 2], vec![1, 2], vec![0, 2, 1, 2]).is_err());
    }

    #[test]
    fn block_new_validates_structure() {
        assert!(Block::new(0, 0, vec![1], vec![1, 2], vec![0, 1]).is_err());
        assert!(Block::new(0, 0, vec![1], vec![1], vec![1, 1]).is_err());
        assert!(Block::new(0, 0, vec![1], vec![1], vec![0, 2]).is_err());
        assert!(Block::new(0, 0, vec![1], vec![1], vec![0, 1]).is_ok());
    }

    #[test]
    fn assemble_sorts_and_checks_contiguity() {
        let m = sample();
        assert_eq!(m.n_rows(), 6);
        assert_eq!(m.n_blocks(), 3);
        assert_eq!(m.nnz(), 6);
        // Gap between blocks is rejected.
        let b0 = block(0, 0, &[&[(0, 1)]]);
        let b1 = block(1, 2, &[&[(0, 1)]]);
        assert!(BlockedRows::assemble(3, vec![b0, b1]).is_err());
    }

    #[test]
    fn assemble_rejects_out_of_range_features() {
        let b0 = block(0, 0, &[&[(5, 1)]]);
        assert!(BlockedRows::assemble(3, vec![b0]).is_err());
    }

    #[test]
    fn two_phase_lookup_finds_every_row() {
        let m = sample();
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1u16, 3][..]));
        assert_eq!(m.row(1), (&[1u32][..], &[2u16][..]));
        assert_eq!(m.row(2), (&[][..], &[][..]));
        assert_eq!(m.row(3), (&[0u32][..], &[5u16][..]));
        assert_eq!(m.row(4), (&[2u32][..], &[7u16][..]));
        assert_eq!(m.row(5), (&[1u32][..], &[9u16][..]));
    }

    #[test]
    fn merge_reduces_block_count_preserving_rows() {
        let mut m = sample();
        let before: Vec<_> = (0..6).map(|r| {
            let (f, b) = m.row(r);
            (f.to_vec(), b.to_vec())
        }).collect();
        m.merge(2);
        assert_eq!(m.n_blocks(), 2);
        for r in 0..6u32 {
            let (f, b) = m.row(r);
            assert_eq!((f.to_vec(), b.to_vec()), before[r as usize]);
        }
        m.merge(1);
        assert_eq!(m.n_blocks(), 1);
        for r in 0..6u32 {
            let (f, b) = m.row(r);
            assert_eq!((f.to_vec(), b.to_vec()), before[r as usize]);
        }
    }

    #[test]
    fn to_binned_rows_flattens() {
        let m = sample();
        let flat = m.to_binned_rows();
        assert_eq!(flat.n_rows(), 6);
        assert_eq!(flat.get(0, 2), Some(3));
        assert_eq!(flat.get(3, 0), Some(5));
        assert_eq!(flat.get(2, 0), None);
    }
}
