//! Dataset management substrate for the GBDT reproduction.
//!
//! The paper's central observation is that a training dataset is a
//! two-dimensional matrix that can be *partitioned* (by rows or by columns)
//! and *stored* (row-wise or column-wise) independently, and that the choice
//! matters enormously for distributed GBDT. This crate provides every storage
//! structure that analysis touches:
//!
//! * [`sparse`] — CSR (row-store) and CSC (column-store) sparse matrices,
//!   the two storage patterns of the paper's §1.
//! * [`dense`] — dense row-major matrices for low-dimensional dense datasets
//!   (the SUSY / Higgs / Criteo / Epsilon class of workloads).
//! * [`dataset`] — labeled dataset abstraction shared by all trainers.
//! * [`libsvm`] — LIBSVM-format reader/writer (the format the paper's public
//!   datasets ship in).
//! * [`csv`] — dense CSV reader with missing-value handling.
//! * [`synthetic`] — the paper's §5.2 synthetic workload generator (random
//!   linear regression model) plus shape presets for every dataset used in
//!   the evaluation (Tables 2, 4).
//! * [`binned`] — bin-encoded matrices used after quantization: `BinnedRows`
//!   (row-store of 〈feature, bin〉 pairs) and `BinnedColumns` (column-store).
//! * [`dense_binned`] — dense bin-encoded matrices (one u8/u16 cell per
//!   `(row, feature)` with a missing sentinel) and the `BinnedStore`/
//!   `ColumnStore` wrappers that pick dense vs sparse by density.
//! * [`block`] — blockified column groups with two-phase indexing and block
//!   merge (paper §4.2.3, Figure 9).
//! * [`encoding`] — key-value pair encodings: naïve 12-byte pairs vs the
//!   compact ⌈log p⌉ / ⌈log q⌉ byte encoding of §4.2.1 step 3.

pub mod binned;
pub mod block;
pub mod dense_binned;
pub mod csv;
pub mod dataset;
pub mod dense;
pub mod encoding;
pub mod error;
pub mod libsvm;
pub mod sparse;
pub mod synthetic;

pub use binned::{BinnedColumns, BinnedRows};
pub use block::{Block, BlockedRows};
pub use dense_binned::{
    BinPack, BinWidth, BinnedStore, ColumnStore, DenseBinnedColumns, DenseBinnedRows,
    DEFAULT_DENSE_THRESHOLD,
};
pub use dataset::{Dataset, FeatureMatrix};
pub use dense::DenseMatrix;
pub use error::DataError;
pub use sparse::{CscMatrix, CsrMatrix, SparseEntry};

/// Index of a training instance (row of the dataset matrix).
pub type InstanceId = u32;
/// Index of a feature (column of the dataset matrix).
pub type FeatureId = u32;
/// Index of a histogram bin a feature value was quantized into.
///
/// The number of candidate splits `q` is "generally a small integer"
/// (paper §4.2.1); `u16` allows up to 65 535 bins which is far beyond any
/// practical sketch resolution.
pub type BinId = u16;
