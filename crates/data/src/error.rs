//! Error type for dataset construction and IO.

use std::fmt;

/// Errors produced while building, converting, or parsing datasets.
#[derive(Debug)]
pub enum DataError {
    /// A matrix was constructed with inconsistent dimensions or pointers.
    Shape(String),
    /// A feature/instance index exceeded the declared matrix dimensions.
    IndexOutOfBounds {
        /// What kind of index overflowed ("feature" or "instance").
        kind: &'static str,
        /// The offending index value.
        index: usize,
        /// The exclusive bound it had to stay under.
        bound: usize,
    },
    /// A LIBSVM line (or other textual input) could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Underlying IO failure while reading or writing a dataset file.
    Io(std::io::Error),
    /// Labels are inconsistent with the declared task, e.g. a class id
    /// outside `0..n_classes`.
    Label(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Shape(msg) => write!(f, "inconsistent matrix shape: {msg}"),
            DataError::IndexOutOfBounds { kind, index, bound } => {
                write!(f, "{kind} index {index} out of bounds (must be < {bound})")
            }
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Io(err) => write!(f, "io error: {err}"),
            DataError::Label(msg) => write!(f, "invalid label: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(err: std::io::Error) -> Self {
        DataError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let err = DataError::Shape("row_ptr len 3 != n_rows + 1 = 4".into());
        assert!(err.to_string().contains("row_ptr"));

        let err = DataError::IndexOutOfBounds { kind: "feature", index: 10, bound: 5 };
        assert!(err.to_string().contains("feature index 10"));
        assert!(err.to_string().contains("< 5"));

        let err = DataError::Parse { line: 7, message: "bad token 'x'".into() };
        assert!(err.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err = DataError::from(io);
        assert!(std::error::Error::source(&err).is_some());
    }
}
