//! Dense bin-encoded matrices: one bin id per `(row, feature)` cell.
//!
//! The sparse [`BinnedRows`]/[`BinnedColumns`] pay 6 bytes per stored value
//! (`u32` feature or instance id + `u16` bin) plus a binary search on point
//! lookups. On dense workloads — the SUSY / Higgs / Criteo / Epsilon class
//! of Table 2, where every cell is present — that indirection is pure
//! overhead. [`DenseBinnedRows`] and [`DenseBinnedColumns`] instead store
//! one bin id per cell in row-/column-major order, packed as `u8` when the
//! bin count allows (`q ≤ 255`) and `u16` otherwise, with the all-ones
//! value of the cell width reserved as the *missing* sentinel. Missing
//! cells keep the sparse semantics exactly: they are skipped by histogram
//! scans and routed through the learned default direction at split time.
//!
//! [`BinnedStore`] and [`ColumnStore`] wrap the dense and sparse layouts
//! behind one API with full sharding parity (`slice_rows`, `select_cols`,
//! `to_columns`/`to_rows`, `heap_bytes`), so horizontal sharding, vertical
//! sharding, and the H2V transform work on either representation. The
//! `auto` policy picks dense when the stored-value density reaches
//! [`DEFAULT_DENSE_THRESHOLD`] (overridable per call): at 1 byte per cell
//! vs 6 bytes per sparse value the dense layout is smaller from ~1/6
//! density upward, and its scans win earlier than that because they touch
//! no feature ids.
//!
//! Scan-order guarantee: a dense row scan visits features in ascending
//! order skipping sentinels — exactly the order a sparse row's
//! strictly-ascending `(feature, bin)` run is stored in — and a dense
//! column scan visits instances ascending, matching sparse columns. Every
//! f64 accumulation made from either layout therefore happens in the same
//! sequence, which is what lets the trainers guarantee bit-identical
//! ensembles across storage choices.

use crate::binned::{BinnedColumns, BinnedRows, BinnedRowsBuilder};
use crate::{BinId, FeatureId};
use serde::{Deserialize, Serialize};

/// Stored-value density at or above which the `auto` policy picks the
/// dense layout. Break-even on bytes alone is ~1/6 (u8 cells vs 6-byte
/// sparse pairs); 0.25 leaves headroom so borderline-sparse data keeps the
/// compact representation.
pub const DEFAULT_DENSE_THRESHOLD: f64 = 0.25;

/// Missing-cell sentinel for `u8`-packed cells.
pub const MISSING_U8: u8 = u8::MAX;
/// Missing-cell sentinel for `u16`-packed cells.
pub const MISSING_U16: u16 = u16::MAX;

/// Cell width of a dense binned matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinWidth {
    /// 1-byte cells; valid while `n_bins ≤ 255` (bin ids ≤ 254, sentinel 255).
    U8,
    /// 2-byte cells; valid while `n_bins ≤ 65535` (the `BinId` ceiling).
    U16,
}

impl BinWidth {
    /// The narrowest width whose sentinel cannot collide with a bin id.
    pub fn for_bins(n_bins: usize) -> BinWidth {
        if n_bins <= MISSING_U8 as usize {
            BinWidth::U8
        } else {
            BinWidth::U16
        }
    }

    /// Bytes per cell.
    pub fn bytes(self) -> usize {
        match self {
            BinWidth::U8 => 1,
            BinWidth::U16 => 2,
        }
    }
}

/// The packed cell buffer of a dense binned matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinPack {
    /// 1-byte cells, sentinel [`MISSING_U8`].
    U8(Vec<u8>),
    /// 2-byte cells, sentinel [`MISSING_U16`].
    U16(Vec<u16>),
}

impl BinPack {
    fn filled(width: BinWidth, cells: usize) -> BinPack {
        match width {
            BinWidth::U8 => BinPack::U8(vec![MISSING_U8; cells]),
            BinWidth::U16 => BinPack::U16(vec![MISSING_U16; cells]),
        }
    }

    fn set(&mut self, idx: usize, bin: BinId) {
        match self {
            BinPack::U8(c) => c[idx] = bin as u8,
            BinPack::U16(c) => c[idx] = bin,
        }
    }

    #[inline]
    fn get(&self, idx: usize) -> Option<BinId> {
        match self {
            BinPack::U8(c) => {
                let v = c[idx];
                (v != MISSING_U8).then_some(v as BinId)
            }
            BinPack::U16(c) => {
                let v = c[idx];
                (v != MISSING_U16).then_some(v)
            }
        }
    }

    fn width(&self) -> BinWidth {
        match self {
            BinPack::U8(_) => BinWidth::U8,
            BinPack::U16(_) => BinWidth::U16,
        }
    }

    /// The raw u8 cell slice, if packed at that width — the lane accessor
    /// the SIMD kernels and benches use to load 16-cell groups directly.
    #[inline]
    pub fn as_u8(&self) -> Option<&[u8]> {
        match self {
            BinPack::U8(c) => Some(c),
            BinPack::U16(_) => None,
        }
    }

    /// The raw u16 cell slice, if packed at that width (8-cell lane
    /// groups).
    #[inline]
    pub fn as_u16(&self) -> Option<&[u16]> {
        match self {
            BinPack::U16(c) => Some(c),
            BinPack::U8(_) => None,
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            BinPack::U8(c) => c.len(),
            BinPack::U16(c) => c.len() * 2,
        }
    }
}

/// Copies cells `src[f(k)] -> dst[k]` without widening, for transposes and
/// shard extraction that preserve the pack width.
fn gather(src: &BinPack, dst: &mut BinPack, map: impl Iterator<Item = (usize, usize)>) {
    match (src, dst) {
        (BinPack::U8(s), BinPack::U8(d)) => {
            for (to, from) in map {
                d[to] = s[from];
            }
        }
        (BinPack::U16(s), BinPack::U16(d)) => {
            for (to, from) in map {
                d[to] = s[from];
            }
        }
        _ => unreachable!("gather between mismatched pack widths"),
    }
}

/// Dense row-store of binned values: cell `(i, j)` lives at `i·D + j`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseBinnedRows {
    n_rows: usize,
    n_features: usize,
    n_bins: usize,
    nnz: usize,
    pack: BinPack,
}

/// Dense column-store of binned values: cell `(i, j)` lives at `j·N + i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseBinnedColumns {
    n_rows: usize,
    n_features: usize,
    n_bins: usize,
    nnz: usize,
    pack: BinPack,
}

impl DenseBinnedRows {
    /// Materializes a sparse row-store densely. `n_bins` fixes the cell
    /// width deterministically (callers pass the global histogram width, so
    /// every shard of one dataset packs identically).
    pub fn from_sparse(rows: &BinnedRows, n_bins: usize) -> DenseBinnedRows {
        Self::from_sparse_with_width(rows, n_bins, BinWidth::for_bins(n_bins))
    }

    /// [`Self::from_sparse`] with an explicit cell width (a `u16` pack of
    /// `u8`-sized bins is valid and scan-equivalent; tests use this).
    pub fn from_sparse_with_width(
        rows: &BinnedRows,
        n_bins: usize,
        width: BinWidth,
    ) -> DenseBinnedRows {
        let sentinel_floor = match width {
            BinWidth::U8 => MISSING_U8 as usize,
            BinWidth::U16 => MISSING_U16 as usize,
        };
        assert!(
            n_bins <= sentinel_floor,
            "{n_bins} bins cannot pack into {width:?} cells without sentinel collision"
        );
        let (n, d) = (rows.n_rows(), rows.n_features());
        let cells = n.checked_mul(d).expect("dense cell count overflows usize");
        let mut pack = BinPack::filled(width, cells);
        for i in 0..n {
            let (feats, bins) = rows.row(i);
            let base = i * d;
            for (&f, &b) in feats.iter().zip(bins) {
                debug_assert!((b as usize) < n_bins, "bin id {b} out of range {n_bins}");
                pack.set(base + f as usize, b);
            }
        }
        DenseBinnedRows { n_rows: n, n_features: d, n_bins, nnz: rows.nnz(), pack }
    }

    /// Converts back to the sparse row-store (exact inverse of
    /// [`Self::from_sparse`] — sentinels become absent entries).
    pub fn to_sparse(&self) -> BinnedRows {
        let mut b = BinnedRowsBuilder::with_capacity(self.n_features, self.n_rows, self.nnz);
        let mut entries: Vec<(FeatureId, BinId)> = Vec::with_capacity(self.n_features);
        for i in 0..self.n_rows {
            entries.clear();
            let base = i * self.n_features;
            for j in 0..self.n_features {
                if let Some(bin) = self.pack.get(base + j) {
                    entries.push((j as FeatureId, bin));
                }
            }
            b.push_row(&entries).expect("dense cells are feature-ascending");
        }
        b.build()
    }

    /// Number of instances.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Histogram width the cells were packed for.
    #[inline]
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Number of present (non-sentinel) cells.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Cell width in use.
    pub fn width(&self) -> BinWidth {
        self.pack.width()
    }

    /// The packed cell buffer (row-major), for specialized kernels.
    #[inline]
    pub fn pack(&self) -> &BinPack {
        &self.pack
    }

    /// Bin of `(row, feature)`, `None` when missing — O(1), no search.
    #[inline]
    pub fn get(&self, row: usize, feature: FeatureId) -> Option<BinId> {
        self.pack.get(row * self.n_features + feature as usize)
    }

    /// Present entries of one row in ascending feature order.
    pub fn for_each_in_row(&self, row: usize, mut f: impl FnMut(FeatureId, BinId)) {
        let base = row * self.n_features;
        for j in 0..self.n_features {
            if let Some(bin) = self.pack.get(base + j) {
                f(j as FeatureId, bin);
            }
        }
    }

    /// Present-cell count of one row.
    pub fn row_nnz(&self, row: usize) -> usize {
        let mut n = 0;
        self.for_each_in_row(row, |_, _| n += 1);
        n
    }

    /// Extracts rows `lo..hi` as a horizontal shard (same cell width).
    pub fn slice_rows(&self, lo: usize, hi: usize) -> DenseBinnedRows {
        assert!(lo <= hi && hi <= self.n_rows, "row slice out of range");
        let d = self.n_features;
        let mut pack = BinPack::filled(self.width(), (hi - lo) * d);
        gather(&self.pack, &mut pack, (0..(hi - lo) * d).map(|k| (k, lo * d + k)));
        let mut out =
            DenseBinnedRows { n_rows: hi - lo, n_features: d, n_bins: self.n_bins, nnz: 0, pack };
        out.nnz = out.count_nnz();
        out
    }

    /// Extracts a vertical shard containing `cols` (renumbered
    /// `0..cols.len()` in the given order), keeping all rows.
    pub fn select_cols(&self, cols: &[FeatureId]) -> DenseBinnedRows {
        let d_new = cols.len();
        let mut pack = BinPack::filled(self.width(), self.n_rows * d_new);
        gather(
            &self.pack,
            &mut pack,
            (0..self.n_rows).flat_map(|i| {
                cols.iter().enumerate().map(move |(new, &old)| {
                    (i * d_new + new, i * self.n_features + old as usize)
                })
            }),
        );
        let mut out = DenseBinnedRows {
            n_rows: self.n_rows,
            n_features: d_new,
            n_bins: self.n_bins,
            nnz: 0,
            pack,
        };
        out.nnz = out.count_nnz();
        out
    }

    /// Transposes to the equivalent dense column-store.
    pub fn to_columns(&self) -> DenseBinnedColumns {
        let (n, d) = (self.n_rows, self.n_features);
        let mut pack = BinPack::filled(self.width(), n * d);
        gather(
            &self.pack,
            &mut pack,
            (0..d).flat_map(|j| (0..n).map(move |i| (j * n + i, i * d + j))),
        );
        DenseBinnedColumns {
            n_rows: n,
            n_features: d,
            n_bins: self.n_bins,
            nnz: self.nnz,
            pack,
        }
    }

    /// Bytes of heap storage used (exact, for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.pack.heap_bytes()
    }

    fn count_nnz(&self) -> usize {
        match &self.pack {
            BinPack::U8(c) => c.iter().filter(|&&v| v != MISSING_U8).count(),
            BinPack::U16(c) => c.iter().filter(|&&v| v != MISSING_U16).count(),
        }
    }
}

impl DenseBinnedColumns {
    /// Number of instances.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Histogram width the cells were packed for.
    #[inline]
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Number of present (non-sentinel) cells.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Cell width in use.
    pub fn width(&self) -> BinWidth {
        self.pack.width()
    }

    /// The packed cell buffer (column-major), for specialized kernels.
    #[inline]
    pub fn pack(&self) -> &BinPack {
        &self.pack
    }

    /// Bin of `(row, feature)`, `None` when missing — O(1), no search.
    #[inline]
    pub fn get(&self, row: usize, feature: FeatureId) -> Option<BinId> {
        self.pack.get(feature as usize * self.n_rows + row)
    }

    /// Present entries of one column in ascending instance order — the same
    /// order a sparse column stores, so scans accumulate identically.
    pub fn for_each_in_col(&self, col: usize, mut f: impl FnMut(crate::InstanceId, BinId)) {
        let base = col * self.n_rows;
        match &self.pack {
            BinPack::U8(c) => {
                for (i, &v) in c[base..base + self.n_rows].iter().enumerate() {
                    if v != MISSING_U8 {
                        f(i as crate::InstanceId, v as BinId);
                    }
                }
            }
            BinPack::U16(c) => {
                for (i, &v) in c[base..base + self.n_rows].iter().enumerate() {
                    if v != MISSING_U16 {
                        f(i as crate::InstanceId, v);
                    }
                }
            }
        }
    }

    /// Transposes to the equivalent dense row-store.
    pub fn to_rows(&self) -> DenseBinnedRows {
        let (n, d) = (self.n_rows, self.n_features);
        let mut pack = BinPack::filled(self.width(), n * d);
        gather(
            &self.pack,
            &mut pack,
            (0..n).flat_map(|i| (0..d).map(move |j| (i * d + j, j * n + i))),
        );
        DenseBinnedRows { n_rows: n, n_features: d, n_bins: self.n_bins, nnz: self.nnz, pack }
    }

    /// Extracts a vertical shard containing `cols` (renumbered in order).
    pub fn select_cols(&self, cols: &[FeatureId]) -> DenseBinnedColumns {
        let n = self.n_rows;
        let mut pack = BinPack::filled(self.width(), n * cols.len());
        gather(
            &self.pack,
            &mut pack,
            cols.iter().enumerate().flat_map(|(new, &old)| {
                (0..n).map(move |i| (new * n + i, old as usize * n + i))
            }),
        );
        let mut out = DenseBinnedColumns {
            n_rows: n,
            n_features: cols.len(),
            n_bins: self.n_bins,
            nnz: 0,
            pack,
        };
        out.nnz = match &out.pack {
            BinPack::U8(c) => c.iter().filter(|&&v| v != MISSING_U8).count(),
            BinPack::U16(c) => c.iter().filter(|&&v| v != MISSING_U16).count(),
        };
        out
    }

    /// Bytes of heap storage used (exact, for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.pack.heap_bytes()
    }
}

/// Row-store of binned values in either layout. Everything downstream of
/// binning scans this; the variant is fixed at binning time by the
/// [`Storage` policy](BinnedStore::auto) and never changes mid-training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BinnedStore {
    /// Sparse 〈feature, bin〉 pairs (the pre-existing layout).
    Sparse(BinnedRows),
    /// One cell per `(row, feature)`, u8/u16-packed.
    Dense(DenseBinnedRows),
}

impl BinnedStore {
    /// Wraps rows sparsely (never densifies).
    pub fn sparse(rows: BinnedRows) -> BinnedStore {
        BinnedStore::Sparse(rows)
    }

    /// Densifies unconditionally.
    pub fn dense(rows: BinnedRows, n_bins: usize) -> BinnedStore {
        BinnedStore::Dense(DenseBinnedRows::from_sparse(&rows, n_bins))
    }

    /// Densifies unconditionally with u16 cells, even when `n_bins` fits
    /// u8 — drives the u16 kernels on small-`q` data (`Storage::DenseWide`).
    pub fn dense_wide(rows: BinnedRows, n_bins: usize) -> BinnedStore {
        BinnedStore::Dense(DenseBinnedRows::from_sparse_with_width(&rows, n_bins, BinWidth::U16))
    }

    /// Picks dense when the stored-value density reaches `threshold`
    /// (sparse otherwise, including for degenerate empty shapes).
    pub fn auto(rows: BinnedRows, n_bins: usize, threshold: f64) -> BinnedStore {
        let cells = rows.n_rows().checked_mul(rows.n_features());
        match cells {
            Some(c) if c > 0 && rows.nnz() as f64 / c as f64 >= threshold => {
                BinnedStore::dense(rows, n_bins)
            }
            _ => BinnedStore::Sparse(rows),
        }
    }

    /// Whether the dense layout was selected.
    pub fn is_dense(&self) -> bool {
        matches!(self, BinnedStore::Dense(_))
    }

    /// Short label for reports (`sparse`, `dense-u8`, `dense-u16`).
    pub fn label(&self) -> &'static str {
        match self {
            BinnedStore::Sparse(_) => "sparse",
            BinnedStore::Dense(d) => match d.width() {
                BinWidth::U8 => "dense-u8",
                BinWidth::U16 => "dense-u16",
            },
        }
    }

    /// Number of instances.
    pub fn n_rows(&self) -> usize {
        match self {
            BinnedStore::Sparse(r) => r.n_rows(),
            BinnedStore::Dense(d) => d.n_rows(),
        }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        match self {
            BinnedStore::Sparse(r) => r.n_features(),
            BinnedStore::Dense(d) => d.n_features(),
        }
    }

    /// Number of present values.
    pub fn nnz(&self) -> usize {
        match self {
            BinnedStore::Sparse(r) => r.nnz(),
            BinnedStore::Dense(d) => d.nnz(),
        }
    }

    /// Bin of `(row, feature)`, `None` when missing. O(log nnz_row) sparse,
    /// O(1) dense.
    #[inline]
    pub fn get(&self, row: usize, feature: FeatureId) -> Option<BinId> {
        match self {
            BinnedStore::Sparse(r) => r.get(row, feature),
            BinnedStore::Dense(d) => d.get(row, feature),
        }
    }

    /// Present-value count of one row.
    pub fn row_nnz(&self, row: usize) -> usize {
        match self {
            BinnedStore::Sparse(r) => r.row(row).0.len(),
            BinnedStore::Dense(d) => d.row_nnz(row),
        }
    }

    /// Present entries of one row in ascending feature order (the shared
    /// scan order of both layouts).
    pub fn for_each_in_row(&self, row: usize, mut f: impl FnMut(FeatureId, BinId)) {
        match self {
            BinnedStore::Sparse(r) => {
                let (feats, bins) = r.row(row);
                for (&j, &b) in feats.iter().zip(bins) {
                    f(j, b);
                }
            }
            BinnedStore::Dense(d) => d.for_each_in_row(row, f),
        }
    }

    /// Extracts rows `lo..hi` as a horizontal shard (same layout).
    pub fn slice_rows(&self, lo: usize, hi: usize) -> BinnedStore {
        match self {
            BinnedStore::Sparse(r) => BinnedStore::Sparse(r.slice_rows(lo, hi)),
            BinnedStore::Dense(d) => BinnedStore::Dense(d.slice_rows(lo, hi)),
        }
    }

    /// Extracts a vertical shard containing `cols`, renumbered in order
    /// (same layout).
    pub fn select_cols(&self, cols: &[FeatureId]) -> BinnedStore {
        match self {
            BinnedStore::Sparse(r) => BinnedStore::Sparse(r.select_cols(cols)),
            BinnedStore::Dense(d) => BinnedStore::Dense(d.select_cols(cols)),
        }
    }

    /// Converts to the column-store of the same layout.
    pub fn to_columns(&self) -> ColumnStore {
        match self {
            BinnedStore::Sparse(r) => ColumnStore::Sparse(r.to_columns()),
            BinnedStore::Dense(d) => ColumnStore::Dense(d.to_columns()),
        }
    }

    /// The sparse row-store equivalent (identity for sparse, expansion for
    /// dense) — the bridge for consumers that require explicit pairs.
    pub fn to_sparse_rows(&self) -> BinnedRows {
        match self {
            BinnedStore::Sparse(r) => r.clone(),
            BinnedStore::Dense(d) => d.to_sparse(),
        }
    }

    /// Bytes of heap storage used (exact, for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        match self {
            BinnedStore::Sparse(r) => r.heap_bytes(),
            BinnedStore::Dense(d) => d.heap_bytes(),
        }
    }
}

/// Column-store of binned values in either layout (what the column-scan
/// trainers — QD1, QD3, Yggdrasil — consume).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnStore {
    /// Sparse 〈instance, bin〉 pairs per column.
    Sparse(BinnedColumns),
    /// One cell per `(row, feature)`, column-major.
    Dense(DenseBinnedColumns),
}

impl ColumnStore {
    /// Whether the dense layout was selected.
    pub fn is_dense(&self) -> bool {
        matches!(self, ColumnStore::Dense(_))
    }

    /// Number of instances.
    pub fn n_rows(&self) -> usize {
        match self {
            ColumnStore::Sparse(c) => c.n_rows(),
            ColumnStore::Dense(d) => d.n_rows(),
        }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        match self {
            ColumnStore::Sparse(c) => c.n_features(),
            ColumnStore::Dense(d) => d.n_features(),
        }
    }

    /// Number of present values.
    pub fn nnz(&self) -> usize {
        match self {
            ColumnStore::Sparse(c) => c.nnz(),
            ColumnStore::Dense(d) => d.nnz(),
        }
    }

    /// Bin of `(row, feature)`, `None` when missing. O(log nnz_col) sparse,
    /// O(1) dense.
    #[inline]
    pub fn get(&self, row: usize, feature: FeatureId) -> Option<BinId> {
        match self {
            ColumnStore::Sparse(c) => {
                let (rows, bins) = c.col(feature as usize);
                rows.binary_search(&(row as crate::InstanceId)).ok().map(|k| bins[k])
            }
            ColumnStore::Dense(d) => d.get(row, feature),
        }
    }

    /// Present-value count of one column.
    pub fn col_nnz(&self, col: usize) -> usize {
        match self {
            ColumnStore::Sparse(c) => c.col(col).0.len(),
            ColumnStore::Dense(d) => {
                let mut n = 0;
                d.for_each_in_col(col, |_, _| n += 1);
                n
            }
        }
    }

    /// Present entries of one column in ascending instance order — the
    /// single scan order both layouts share.
    pub fn for_each_in_col(&self, col: usize, mut f: impl FnMut(crate::InstanceId, BinId)) {
        match self {
            ColumnStore::Sparse(c) => {
                let (rows, bins) = c.col(col);
                for (&i, &b) in rows.iter().zip(bins) {
                    f(i, b);
                }
            }
            ColumnStore::Dense(d) => d.for_each_in_col(col, f),
        }
    }

    /// Converts to the row-store of the same layout.
    pub fn to_rows(&self) -> BinnedStore {
        match self {
            ColumnStore::Sparse(c) => BinnedStore::Sparse(c.to_rows()),
            ColumnStore::Dense(d) => BinnedStore::Dense(d.to_rows()),
        }
    }

    /// Extracts a vertical shard containing `cols`, renumbered in order
    /// (same layout).
    pub fn select_cols(&self, cols: &[FeatureId]) -> ColumnStore {
        match self {
            ColumnStore::Sparse(c) => ColumnStore::Sparse(c.select_cols(cols)),
            ColumnStore::Dense(d) => ColumnStore::Dense(d.select_cols(cols)),
        }
    }

    /// Bytes of heap storage used (exact, for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        match self {
            ColumnStore::Sparse(c) => c.heap_bytes(),
            ColumnStore::Dense(d) => d.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BinnedRows {
        let mut b = BinnedRowsBuilder::new(4);
        b.push_row(&[(0, 3), (2, 1)]).unwrap();
        b.push_row(&[(1, 2)]).unwrap();
        b.push_row(&[]).unwrap();
        b.push_row(&[(0, 0), (1, 1), (3, 5)]).unwrap();
        b.build()
    }

    #[test]
    fn width_selection_follows_bin_count() {
        assert_eq!(BinWidth::for_bins(2), BinWidth::U8);
        assert_eq!(BinWidth::for_bins(255), BinWidth::U8);
        assert_eq!(BinWidth::for_bins(256), BinWidth::U16);
        assert_eq!(BinWidth::U8.bytes(), 1);
        assert_eq!(BinWidth::U16.bytes(), 2);
    }

    #[test]
    fn sparse_roundtrip_is_exact() {
        let rows = sample();
        for width in [BinWidth::U8, BinWidth::U16] {
            let dense = DenseBinnedRows::from_sparse_with_width(&rows, 6, width);
            assert_eq!(dense.nnz(), rows.nnz());
            assert_eq!(dense.to_sparse(), rows, "{width:?}");
        }
    }

    #[test]
    fn get_matches_sparse_everywhere() {
        let rows = sample();
        let dense = DenseBinnedRows::from_sparse(&rows, 6);
        for i in 0..rows.n_rows() {
            for j in 0..rows.n_features() as FeatureId {
                assert_eq!(dense.get(i, j), rows.get(i, j), "cell ({i}, {j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sentinel collision")]
    fn u8_pack_rejects_wide_bins() {
        DenseBinnedRows::from_sparse_with_width(&sample(), 300, BinWidth::U8);
    }

    #[test]
    fn shard_ops_match_sparse() {
        let rows = sample();
        let dense = DenseBinnedRows::from_sparse(&rows, 6);
        assert_eq!(dense.slice_rows(1, 3).to_sparse(), rows.slice_rows(1, 3));
        assert_eq!(dense.select_cols(&[3, 0]).to_sparse(), rows.select_cols(&[3, 0]));
        assert_eq!(dense.to_columns().to_rows(), dense);
    }

    #[test]
    fn column_scan_order_is_instance_ascending() {
        let cols = DenseBinnedRows::from_sparse(&sample(), 6).to_columns();
        let mut seen: Vec<(u32, BinId)> = Vec::new();
        cols.for_each_in_col(0, |i, b| seen.push((i, b)));
        assert_eq!(seen, vec![(0, 3), (3, 0)]);
        assert_eq!(cols.get(3, 3), Some(5));
        assert_eq!(cols.get(2, 0), None);
    }

    #[test]
    fn auto_policy_picks_by_density() {
        // sample(): 6 values over 16 cells = 0.375 density.
        let dense = BinnedStore::auto(sample(), 6, 0.25);
        assert!(dense.is_dense());
        assert_eq!(dense.label(), "dense-u8");
        let sparse = BinnedStore::auto(sample(), 6, 0.5);
        assert!(!sparse.is_dense());
        assert_eq!(sparse.label(), "sparse");
        // Degenerate empty shape stays sparse.
        let empty = BinnedRowsBuilder::new(0).build();
        assert!(!BinnedStore::auto(empty, 6, 0.0).is_dense());
    }

    #[test]
    fn store_parity_between_layouts() {
        let rows = sample();
        let sparse = BinnedStore::sparse(rows.clone());
        let dense = BinnedStore::dense(rows.clone(), 6);
        assert_eq!(sparse.n_rows(), dense.n_rows());
        assert_eq!(sparse.nnz(), dense.nnz());
        assert_eq!(sparse.row_nnz(3), 3);
        assert_eq!(dense.row_nnz(3), 3);
        for i in 0..rows.n_rows() {
            for j in 0..rows.n_features() as FeatureId {
                assert_eq!(sparse.get(i, j), dense.get(i, j));
            }
        }
        assert_eq!(sparse.slice_rows(0, 2).to_sparse_rows(), dense.slice_rows(0, 2).to_sparse_rows());
        assert_eq!(
            sparse.select_cols(&[1, 2]).to_sparse_rows(),
            dense.select_cols(&[1, 2]).to_sparse_rows()
        );
        assert_eq!(
            sparse.to_columns().to_rows().to_sparse_rows(),
            dense.to_columns().to_rows().to_sparse_rows()
        );
    }

    #[test]
    fn dense_heap_bytes_beat_sparse_on_dense_data() {
        // A fully dense 32×16 matrix: sparse pays 6 B/value + row pointers,
        // dense pays 1 B/cell.
        let mut b = BinnedRowsBuilder::new(16);
        for i in 0..32 {
            let entries: Vec<(FeatureId, BinId)> =
                (0..16).map(|j| (j as FeatureId, ((i + j) % 7) as BinId)).collect();
            b.push_row(&entries).unwrap();
        }
        let rows = b.build();
        let sparse_bytes = rows.heap_bytes();
        let dense = DenseBinnedRows::from_sparse(&rows, 7);
        assert_eq!(dense.heap_bytes(), 32 * 16);
        assert!(
            dense.heap_bytes() * 2 <= sparse_bytes,
            "dense {} should be ≤ half of sparse {}",
            dense.heap_bytes(),
            sparse_bytes
        );
    }

    #[test]
    fn column_store_get_matches_row_store() {
        let store = BinnedStore::dense(sample(), 6);
        let cols = store.to_columns();
        assert_eq!(cols.col_nnz(1), 2);
        for i in 0..store.n_rows() {
            for j in 0..store.n_features() as FeatureId {
                assert_eq!(cols.get(i, j), store.get(i, j));
            }
        }
        let sparse_cols = BinnedStore::sparse(sample()).to_columns();
        for i in 0..store.n_rows() {
            for j in 0..store.n_features() as FeatureId {
                assert_eq!(sparse_cols.get(i, j), store.get(i, j));
            }
        }
    }
}
