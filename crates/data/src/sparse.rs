//! Sparse matrix storage: CSR (row-store) and CSC (column-store).
//!
//! These are the two storage patterns the paper contrasts (§1, §2.2.2):
//! row-store keeps each instance as a run of 〈feature index, feature value〉
//! pairs; column-store keeps each feature as a run of 〈instance index,
//! feature value〉 pairs. Conversions between the two are exact and preserve
//! the within-run ordering (ascending feature index for CSR rows, ascending
//! instance index for CSC columns).

use crate::error::DataError;
use crate::{FeatureId, InstanceId};
use serde::{Deserialize, Serialize};

/// One nonzero entry of a sparse row or column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparseEntry {
    /// Feature index (in a row) or instance index (in a column).
    pub index: u32,
    /// The stored feature value.
    pub value: f32,
}

/// Compressed Sparse Row matrix: the row-store of the paper.
///
/// `row_ptr[i]..row_ptr[i + 1]` delimits the nonzeros of instance `i` inside
/// `col_idx` / `values`. Within a row, `col_idx` is strictly ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<FeatureId>,
    values: Vec<f32>,
}

/// Compressed Sparse Column matrix: the column-store of the paper.
///
/// `col_ptr[j]..col_ptr[j + 1]` delimits the nonzeros of feature `j` inside
/// `row_idx` / `values`. Within a column, `row_idx` is strictly ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    n_rows: usize,
    n_cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<InstanceId>,
    values: Vec<f32>,
}

/// Incremental builder for [`CsrMatrix`], appending one row at a time.
#[derive(Debug, Default)]
pub struct CsrBuilder {
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<FeatureId>,
    values: Vec<f32>,
}

impl CsrBuilder {
    /// Creates a builder for a matrix with `n_cols` columns.
    pub fn new(n_cols: usize) -> Self {
        CsrBuilder { n_cols, row_ptr: vec![0], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Creates a builder with capacity hints for rows and nonzeros.
    pub fn with_capacity(n_cols: usize, n_rows: usize, nnz: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0);
        CsrBuilder {
            n_cols,
            row_ptr,
            col_idx: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    /// Appends one row given `(feature, value)` pairs.
    ///
    /// Pairs need not be sorted; they are sorted here. Duplicate feature
    /// indices within a row and out-of-range indices are rejected.
    pub fn push_row(&mut self, entries: &[(FeatureId, f32)]) -> Result<(), DataError> {
        let start = self.col_idx.len();
        for &(feat, val) in entries {
            if feat as usize >= self.n_cols {
                return Err(DataError::IndexOutOfBounds {
                    kind: "feature",
                    index: feat as usize,
                    bound: self.n_cols,
                });
            }
            self.col_idx.push(feat);
            self.values.push(val);
        }
        // Sort the just-appended run by feature index.
        let row_len = self.col_idx.len() - start;
        if row_len > 1 {
            let mut perm: Vec<usize> = (0..row_len).collect();
            perm.sort_unstable_by_key(|&k| self.col_idx[start + k]);
            let feats: Vec<FeatureId> = perm.iter().map(|&k| self.col_idx[start + k]).collect();
            let vals: Vec<f32> = perm.iter().map(|&k| self.values[start + k]).collect();
            self.col_idx[start..].copy_from_slice(&feats);
            self.values[start..].copy_from_slice(&vals);
            for w in self.col_idx[start..].windows(2) {
                if w[0] == w[1] {
                    return Err(DataError::Shape(format!(
                        "duplicate feature {} in row {}",
                        w[0],
                        self.row_ptr.len() - 1
                    )));
                }
            }
        }
        self.row_ptr.push(self.col_idx.len());
        Ok(())
    }

    /// Finalizes the builder into a [`CsrMatrix`].
    pub fn build(self) -> CsrMatrix {
        CsrMatrix {
            n_rows: self.row_ptr.len() - 1,
            n_cols: self.n_cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<FeatureId>,
        values: Vec<f32>,
    ) -> Result<Self, DataError> {
        if row_ptr.len() != n_rows + 1 {
            return Err(DataError::Shape(format!(
                "row_ptr len {} != n_rows + 1 = {}",
                row_ptr.len(),
                n_rows + 1
            )));
        }
        if col_idx.len() != values.len() {
            return Err(DataError::Shape(format!(
                "col_idx len {} != values len {}",
                col_idx.len(),
                values.len()
            )));
        }
        if row_ptr.last() != Some(&col_idx.len()) || row_ptr.first() != Some(&0) {
            return Err(DataError::Shape("row_ptr does not span the nonzeros".into()));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(DataError::Shape("row_ptr is not monotone".into()));
            }
        }
        for r in 0..n_rows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(DataError::Shape(format!("row {r} indices not strictly ascending")));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= n_cols {
                    return Err(DataError::IndexOutOfBounds {
                        kind: "feature",
                        index: last as usize,
                        bound: n_cols,
                    });
                }
            }
        }
        Ok(CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values })
    }

    /// Builds a CSR matrix from a dense row-major slice; zeros are dropped.
    pub fn from_dense(rows: &[Vec<f32>], n_cols: usize) -> Result<Self, DataError> {
        let mut b = CsrBuilder::new(n_cols);
        let mut entries = Vec::new();
        for row in rows {
            entries.clear();
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    entries.push((j as FeatureId, v));
                }
            }
            b.push_row(&entries)?;
        }
        Ok(b.build())
    }

    /// Number of instances (rows).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features (columns).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Nonzeros of row `i` as parallel slices `(features, values)`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[FeatureId], &[f32]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Iterates rows as `(row index, features, values)`.
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, &[FeatureId], &[f32])> {
        (0..self.n_rows).map(move |i| {
            let (f, v) = self.row(i);
            (i, f, v)
        })
    }

    /// Value at `(row, col)`, or `None` when the entry is missing (sparse zero).
    pub fn get(&self, row: usize, col: FeatureId) -> Option<f32> {
        let (feats, vals) = self.row(row);
        feats.binary_search(&col).ok().map(|k| vals[k])
    }

    /// Converts to the equivalent column-store.
    pub fn to_csc(&self) -> CscMatrix {
        let mut counts = vec![0usize; self.n_cols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        let mut col_ptr = Vec::with_capacity(self.n_cols + 1);
        col_ptr.push(0usize);
        for j in 0..self.n_cols {
            col_ptr.push(col_ptr[j] + counts[j]);
        }
        let mut cursor = col_ptr[..self.n_cols].to_vec();
        let mut row_idx = vec![0 as InstanceId; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for i in 0..self.n_rows {
            let (feats, vals) = self.row(i);
            for (&f, &v) in feats.iter().zip(vals) {
                let dst = cursor[f as usize];
                row_idx[dst] = i as InstanceId;
                values[dst] = v;
                cursor[f as usize] += 1;
            }
        }
        CscMatrix { n_rows: self.n_rows, n_cols: self.n_cols, col_ptr, row_idx, values }
    }

    /// Extracts the horizontal shard containing rows `lo..hi`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> CsrMatrix {
        assert!(lo <= hi && hi <= self.n_rows, "row slice out of range");
        let base = self.row_ptr[lo];
        let end = self.row_ptr[hi];
        let row_ptr = self.row_ptr[lo..=hi].iter().map(|&p| p - base).collect();
        CsrMatrix {
            n_rows: hi - lo,
            n_cols: self.n_cols,
            row_ptr,
            col_idx: self.col_idx[base..end].to_vec(),
            values: self.values[base..end].to_vec(),
        }
    }

    /// Bytes of heap storage used by the matrix (exact, for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<FeatureId>()
            + self.values.len() * std::mem::size_of::<f32>()
    }
}

impl CscMatrix {
    /// Builds a CSC matrix from raw parts, validating all invariants.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<InstanceId>,
        values: Vec<f32>,
    ) -> Result<Self, DataError> {
        if col_ptr.len() != n_cols + 1 {
            return Err(DataError::Shape(format!(
                "col_ptr len {} != n_cols + 1 = {}",
                col_ptr.len(),
                n_cols + 1
            )));
        }
        if row_idx.len() != values.len() || col_ptr.last() != Some(&row_idx.len()) {
            return Err(DataError::Shape("col_ptr does not span the nonzeros".into()));
        }
        for j in 0..n_cols {
            if col_ptr[j] > col_ptr[j + 1] {
                return Err(DataError::Shape("col_ptr is not monotone".into()));
            }
            let col = &row_idx[col_ptr[j]..col_ptr[j + 1]];
            for w in col.windows(2) {
                if w[0] >= w[1] {
                    return Err(DataError::Shape(format!(
                        "column {j} indices not strictly ascending"
                    )));
                }
            }
            if let Some(&last) = col.last() {
                if last as usize >= n_rows {
                    return Err(DataError::IndexOutOfBounds {
                        kind: "instance",
                        index: last as usize,
                        bound: n_rows,
                    });
                }
            }
        }
        Ok(CscMatrix { n_rows, n_cols, col_ptr, row_idx, values })
    }

    /// Number of instances (rows).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features (columns).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Nonzeros of column `j` as parallel slices `(instances, values)`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[InstanceId], &[f32]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Iterates columns as `(column index, instances, values)`.
    pub fn iter_cols(&self) -> impl Iterator<Item = (usize, &[InstanceId], &[f32])> {
        (0..self.n_cols).map(move |j| {
            let (r, v) = self.col(j);
            (j, r, v)
        })
    }

    /// Converts to the equivalent row-store.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.n_rows];
        for &r in &self.row_idx {
            counts[r as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        row_ptr.push(0usize);
        for i in 0..self.n_rows {
            row_ptr.push(row_ptr[i] + counts[i]);
        }
        let mut cursor = row_ptr[..self.n_rows].to_vec();
        let mut col_idx = vec![0 as FeatureId; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for j in 0..self.n_cols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                let dst = cursor[r as usize];
                col_idx[dst] = j as FeatureId;
                values[dst] = v;
                cursor[r as usize] += 1;
            }
        }
        CsrMatrix { n_rows: self.n_rows, n_cols: self.n_cols, row_ptr, col_idx, values }
    }

    /// Extracts the vertical shard containing columns `cols` (renumbered
    /// `0..cols.len()` in the given order).
    pub fn select_cols(&self, cols: &[FeatureId]) -> CscMatrix {
        let mut col_ptr = Vec::with_capacity(cols.len() + 1);
        col_ptr.push(0usize);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for &j in cols {
            let (rows, vals) = self.col(j as usize);
            row_idx.extend_from_slice(rows);
            values.extend_from_slice(vals);
            col_ptr.push(row_idx.len());
        }
        CscMatrix { n_rows: self.n_rows, n_cols: cols.len(), col_ptr, row_idx, values }
    }

    /// Bytes of heap storage used by the matrix (exact, for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_idx.len() * std::mem::size_of::<InstanceId>()
            + self.values.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix {
        // 4 x 3 matrix:
        // [1 0 2]
        // [0 3 0]
        // [0 0 0]
        // [4 5 6]
        let mut b = CsrBuilder::new(3);
        b.push_row(&[(0, 1.0), (2, 2.0)]).unwrap();
        b.push_row(&[(1, 3.0)]).unwrap();
        b.push_row(&[]).unwrap();
        b.push_row(&[(2, 6.0), (0, 4.0), (1, 5.0)]).unwrap();
        b.build()
    }

    #[test]
    fn builder_sorts_rows_and_tracks_shape() {
        let m = sample_csr();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 6);
        let (f, v) = m.row(3);
        assert_eq!(f, &[0, 1, 2]);
        assert_eq!(v, &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn builder_rejects_out_of_range_feature() {
        let mut b = CsrBuilder::new(3);
        let err = b.push_row(&[(3, 1.0)]).unwrap_err();
        assert!(matches!(err, DataError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn builder_rejects_duplicate_feature() {
        let mut b = CsrBuilder::new(3);
        let err = b.push_row(&[(1, 1.0), (1, 2.0)]).unwrap_err();
        assert!(matches!(err, DataError::Shape(_)));
    }

    #[test]
    fn get_returns_present_and_absent_entries() {
        let m = sample_csr();
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn csr_to_csc_roundtrip_is_identity() {
        let m = sample_csr();
        let back = m.to_csc().to_csr();
        assert_eq!(m, back);
    }

    #[test]
    fn csc_columns_are_sorted_by_instance() {
        let csc = sample_csr().to_csc();
        let (rows, vals) = csc.col(2);
        assert_eq!(rows, &[0, 3]);
        assert_eq!(vals, &[2.0, 6.0]);
        // Empty-ish column still works.
        let (rows, _) = csc.col(1);
        assert_eq!(rows, &[1, 3]);
    }

    #[test]
    fn slice_rows_extracts_horizontal_shard() {
        let m = sample_csr();
        let shard = m.slice_rows(1, 4);
        assert_eq!(shard.n_rows(), 3);
        assert_eq!(shard.row(0).0, &[1]);
        assert_eq!(shard.row(1).0, &[] as &[FeatureId]);
        assert_eq!(shard.row(2).1, &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn select_cols_extracts_vertical_shard() {
        let csc = sample_csr().to_csc();
        let shard = csc.select_cols(&[2, 0]);
        assert_eq!(shard.n_cols(), 2);
        // Column 0 of the shard is original column 2.
        assert_eq!(shard.col(0).0, &[0, 3]);
        assert_eq!(shard.col(1).1, &[1.0, 4.0]);
    }

    #[test]
    fn from_parts_validates_invariants() {
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert!(CscMatrix::from_parts(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
        assert!(CscMatrix::from_parts(2, 1, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        // Empty pointer arrays (malformed external input) error, not panic.
        assert!(CsrMatrix::from_parts(0, 2, vec![], vec![], vec![]).is_err());
        assert!(CscMatrix::from_parts(2, 0, vec![], vec![], vec![]).is_err());
        // Pointers that start past 0 are rejected.
        assert!(CsrMatrix::from_parts(1, 2, vec![1, 2], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn from_dense_drops_zeros() {
        let m = CsrMatrix::from_dense(
            &[vec![0.0, 1.0, 0.0], vec![2.0, 0.0, 3.0]],
            3,
        )
        .unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 2), Some(3.0));
    }

    #[test]
    fn heap_bytes_counts_all_arrays() {
        let m = sample_csr();
        assert_eq!(m.heap_bytes(), 5 * 8 + 6 * 4 + 6 * 4);
        let c = m.to_csc();
        assert_eq!(c.heap_bytes(), 4 * 8 + 6 * 4 + 6 * 4);
    }
}
