//! The paper's synthetic workload generator (§5.2) and dataset shape presets.
//!
//! > "The synthetic datasets are generated from random linear regression
//! > models. Specifically, given dimensionality D, informative ratio p, and
//! > number of classes C, we first randomly initialize the weight matrix W
//! > with size D×C, and each row of W contains pD nonzero values. Then for
//! > each instance, the feature x is a randomly sampled D-dimensional vector
//! > with density φ, and its label y is determined by argmax xᵀW."
//!
//! The presets in [`presets`] reproduce the *shapes* (N, D, C, density) of
//! every dataset in the paper's Table 2 and §6 — public datasets we cannot
//! ship (SUSY, Higgs, Criteo, Epsilon, RCV1) and Tencent-internal ones we
//! cannot obtain (Gender, Age, Taste) are replaced by synthetic equivalents
//! with the same shape, which is the property all of the paper's cost
//! analysis depends on. Densities for the public datasets are set from their
//! published sizes; real data in LIBSVM format can be substituted via
//! [`crate::libsvm`].

use crate::dataset::{Dataset, FeatureMatrix};
use crate::dense::DenseMatrix;
use crate::sparse::CsrBuilder;
use crate::FeatureId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random linear-regression-model generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of instances N.
    pub n_instances: usize,
    /// Feature dimensionality D.
    pub n_features: usize,
    /// Number of classes C (0 = regression, 2 = binary, ≥3 = multi-class).
    pub n_classes: usize,
    /// Feature density φ: expected fraction of nonzero features per instance.
    pub density: f64,
    /// Informative ratio p: fraction of features with nonzero weight per class.
    pub informative_ratio: f64,
    /// Probability of replacing a label with a uniformly random class, so the
    /// learning problem is not perfectly separable.
    pub label_noise: f64,
    /// Materialize as a dense matrix (`density` is then treated as 1.0).
    pub dense: bool,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
    /// Dataset name carried into experiment output.
    pub name: String,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_instances: 10_000,
            n_features: 100,
            n_classes: 2,
            density: 0.2,
            informative_ratio: 0.2,
            label_noise: 0.05,
            dense: false,
            seed: 42,
            name: "synthetic".into(),
        }
    }
}

impl SyntheticConfig {
    /// Generates the dataset described by this configuration.
    pub fn generate(&self) -> Dataset {
        assert!(self.n_features > 0, "need at least one feature");
        assert!((0.0..=1.0).contains(&self.density), "density must be in [0, 1]");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let c_eff = self.n_classes.max(1);
        let weights = self.random_weights(&mut rng, c_eff);

        let density = if self.dense { 1.0 } else { self.density };
        let nnz_per_row = ((self.n_features as f64) * density).round().max(1.0) as usize;
        let nnz_per_row = nnz_per_row.min(self.n_features);

        let mut labels = Vec::with_capacity(self.n_instances);
        let mut scores = vec![0f64; c_eff];

        if self.dense {
            let mut values = Vec::with_capacity(self.n_instances * self.n_features);
            for _ in 0..self.n_instances {
                scores.iter_mut().for_each(|s| *s = 0.0);
                let base = values.len();
                for j in 0..self.n_features {
                    let v: f32 = rng.gen_range(-1.0..1.0);
                    values.push(v);
                    for (c, s) in scores.iter_mut().enumerate() {
                        *s += f64::from(v) * f64::from(weights[j * c_eff + c]);
                    }
                }
                debug_assert_eq!(values.len() - base, self.n_features);
                labels.push(self.label_from_scores(&scores, &mut rng));
            }
            let dense = DenseMatrix::from_flat(self.n_instances, self.n_features, values)
                .expect("generator produces a consistent flat buffer");
            Dataset::new(FeatureMatrix::Dense(dense), labels, self.n_classes, self.name.clone())
                .expect("generator produces valid labels")
        } else {
            let mut builder = CsrBuilder::with_capacity(
                self.n_features,
                self.n_instances,
                self.n_instances * nnz_per_row,
            );
            let mut entries: Vec<(FeatureId, f32)> = Vec::with_capacity(nnz_per_row);
            for _ in 0..self.n_instances {
                scores.iter_mut().for_each(|s| *s = 0.0);
                entries.clear();
                let picked = rand::seq::index::sample(&mut rng, self.n_features, nnz_per_row);
                for j in picked {
                    let v: f32 = rng.gen_range(-1.0..1.0);
                    entries.push((j as FeatureId, v));
                    for (c, s) in scores.iter_mut().enumerate() {
                        *s += f64::from(v) * f64::from(weights[j * c_eff + c]);
                    }
                }
                builder.push_row(&entries).expect("sampled indices are distinct and in range");
                labels.push(self.label_from_scores(&scores, &mut rng));
            }
            Dataset::new(
                FeatureMatrix::Sparse(builder.build()),
                labels,
                self.n_classes,
                self.name.clone(),
            )
            .expect("generator produces valid labels")
        }
    }

    /// D×C weight matrix, row-major, with `(1 - p)·D` rows zeroed per class.
    fn random_weights(&self, rng: &mut StdRng, c_eff: usize) -> Vec<f32> {
        let mut w = vec![0f32; self.n_features * c_eff];
        let informative =
            ((self.n_features as f64) * self.informative_ratio).round().max(1.0) as usize;
        let informative = informative.min(self.n_features);
        for c in 0..c_eff {
            let picked = rand::seq::index::sample(rng, self.n_features, informative);
            for j in picked {
                w[j * c_eff + c] = rng.gen_range(-1.0f32..1.0);
            }
        }
        w
    }

    fn label_from_scores(&self, scores: &[f64], rng: &mut StdRng) -> f32 {
        if self.n_classes == 0 {
            // Regression: the linear response plus bounded noise.
            let noise: f64 = rng.gen_range(-0.1..0.1);
            return (scores[0] + noise) as f32;
        }
        if self.label_noise > 0.0 && rng.gen_bool(self.label_noise) {
            return rng.gen_range(0..self.n_classes) as f32;
        }
        let mut best = 0usize;
        for (c, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = c;
            }
        }
        best as f32
    }
}

/// Shape presets for every dataset in the paper's evaluation.
pub mod presets {
    use super::SyntheticConfig;

    /// Workload category from the paper's Table 2.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Category {
        /// Low-dimensional dense.
        LowDimDense,
        /// High-dimensional sparse.
        HighDimSparse,
        /// Multi-classification.
        MultiClass,
        /// Tencent industrial (§6).
        Industrial,
    }

    /// A named dataset shape from the paper.
    #[derive(Debug, Clone, Copy)]
    pub struct Preset {
        /// Dataset name as used in the paper.
        pub name: &'static str,
        /// Paper-scale instance count N.
        pub n_instances: usize,
        /// Feature dimensionality D.
        pub n_features: usize,
        /// Number of label classes.
        pub n_classes: usize,
        /// Feature density φ (1.0 = dense).
        pub density: f64,
        /// Materialized densely?
        pub dense: bool,
        /// Workload category.
        pub category: Category,
        /// Number of workers the paper used for this dataset.
        pub paper_workers: usize,
    }

    /// All dataset shapes from Table 2 (public + synthetic) and §6 (industrial).
    pub const ALL: &[Preset] = &[
        Preset { name: "susy", n_instances: 5_000_000, n_features: 18, n_classes: 2, density: 1.0, dense: true, category: Category::LowDimDense, paper_workers: 5 },
        Preset { name: "higgs", n_instances: 11_000_000, n_features: 28, n_classes: 2, density: 1.0, dense: true, category: Category::LowDimDense, paper_workers: 5 },
        Preset { name: "criteo", n_instances: 45_000_000, n_features: 39, n_classes: 2, density: 1.0, dense: true, category: Category::LowDimDense, paper_workers: 5 },
        Preset { name: "epsilon", n_instances: 500_000, n_features: 2_000, n_classes: 2, density: 1.0, dense: true, category: Category::LowDimDense, paper_workers: 5 },
        Preset { name: "rcv1", n_instances: 697_000, n_features: 47_000, n_classes: 2, density: 0.0016, dense: false, category: Category::HighDimSparse, paper_workers: 5 },
        Preset { name: "synthesis", n_instances: 50_000_000, n_features: 100_000, n_classes: 2, density: 0.001, dense: false, category: Category::HighDimSparse, paper_workers: 8 },
        Preset { name: "rcv1-multi", n_instances: 534_000, n_features: 47_000, n_classes: 53, density: 0.0016, dense: false, category: Category::MultiClass, paper_workers: 8 },
        Preset { name: "synthesis-multi", n_instances: 50_000_000, n_features: 25_000, n_classes: 10, density: 0.0012, dense: false, category: Category::MultiClass, paper_workers: 8 },
        Preset { name: "gender", n_instances: 122_000_000, n_features: 330_000, n_classes: 2, density: 0.0003, dense: false, category: Category::Industrial, paper_workers: 50 },
        Preset { name: "age", n_instances: 48_000_000, n_features: 330_000, n_classes: 9, density: 0.0003, dense: false, category: Category::Industrial, paper_workers: 20 },
        Preset { name: "taste", n_instances: 10_000_000, n_features: 15_000, n_classes: 100, density: 0.005, dense: false, category: Category::Industrial, paper_workers: 20 },
    ];

    /// Looks a preset up by its paper name.
    pub fn by_name(name: &str) -> Option<&'static Preset> {
        ALL.iter().find(|p| p.name == name)
    }

    impl Preset {
        /// Generator config with N divided by `scale` (floored at 2 000
        /// instances so metrics stay meaningful) and D divided by
        /// `feature_scale` (floored at 16). `scale = 1.0` reproduces the
        /// paper-scale shape exactly.
        pub fn config(&self, scale: f64, feature_scale: f64, seed: u64) -> SyntheticConfig {
            assert!(scale >= 1.0 && feature_scale >= 1.0, "scales must be >= 1");
            let n = ((self.n_instances as f64 / scale).round() as usize).max(2_000);
            let d = ((self.n_features as f64 / feature_scale).round() as usize).max(16);
            // Keep the per-row nonzero count of the original shape so the
            // paper's `d` (avg nonzeros) is preserved when D shrinks.
            let target_nnz = (self.n_features as f64 * self.density).max(1.0);
            let density = if self.dense { 1.0 } else { (target_nnz / d as f64).min(1.0) };
            SyntheticConfig {
                n_instances: n,
                n_features: d,
                n_classes: self.n_classes,
                density,
                informative_ratio: 0.2,
                label_noise: 0.05,
                dense: self.dense,
                seed,
                name: self.name.to_string(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig { n_instances: 200, n_features: 50, ..Default::default() };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        let c = SyntheticConfig { seed: 7, ..cfg }.generate();
        assert_ne!(a, c);
    }

    #[test]
    fn shape_matches_config() {
        let cfg = SyntheticConfig {
            n_instances: 300,
            n_features: 40,
            density: 0.25,
            ..Default::default()
        };
        let ds = cfg.generate();
        assert_eq!(ds.n_instances(), 300);
        assert_eq!(ds.n_features(), 40);
        // density 0.25 of 40 features = 10 nonzeros per row, exactly.
        assert!((ds.avg_nnz_per_row() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dense_generation_is_fully_dense() {
        let cfg = SyntheticConfig {
            n_instances: 50,
            n_features: 8,
            dense: true,
            ..Default::default()
        };
        let ds = cfg.generate();
        assert_eq!(ds.features.n_stored(), 50 * 8);
        assert!(matches!(ds.features, FeatureMatrix::Dense(_)));
    }

    #[test]
    fn binary_labels_are_binary() {
        let ds = SyntheticConfig { n_instances: 500, ..Default::default() }.generate();
        assert!(ds.labels.iter().all(|&y| y == 0.0 || y == 1.0));
        // Both classes appear (argmax of a random linear model is balanced-ish).
        assert!(ds.labels.contains(&0.0));
        assert!(ds.labels.contains(&1.0));
    }

    #[test]
    fn multiclass_labels_cover_range() {
        let cfg = SyntheticConfig {
            n_instances: 2_000,
            n_features: 60,
            n_classes: 5,
            ..Default::default()
        };
        let ds = cfg.generate();
        assert!(ds.labels.iter().all(|&y| (0.0..5.0).contains(&y)));
        let distinct: std::collections::HashSet<i32> =
            ds.labels.iter().map(|&y| y as i32).collect();
        assert!(distinct.len() >= 4, "expected most classes to appear, got {distinct:?}");
    }

    #[test]
    fn labels_are_learnable_not_random() {
        // A linear model generated the labels, so a single informative
        // feature should correlate with the label far better than chance.
        let cfg = SyntheticConfig {
            n_instances: 4_000,
            n_features: 10,
            density: 1.0,
            label_noise: 0.0,
            ..Default::default()
        };
        let ds = cfg.generate();
        let csr = ds.features.to_csr();
        // Find the feature whose sign best predicts the label.
        let mut best_acc = 0.0f64;
        for j in 0..10u32 {
            let mut hits = 0usize;
            for i in 0..ds.n_instances() {
                let v = csr.get(i, j).unwrap_or(0.0);
                let pred = if v > 0.0 { 1.0 } else { 0.0 };
                if pred == ds.labels[i] {
                    hits += 1;
                }
            }
            let acc = hits as f64 / ds.n_instances() as f64;
            best_acc = best_acc.max(acc.max(1.0 - acc));
        }
        assert!(best_acc > 0.55, "expected a predictive feature, best_acc = {best_acc}");
    }

    #[test]
    fn regression_labels_track_linear_response() {
        let cfg = SyntheticConfig {
            n_instances: 100,
            n_features: 5,
            n_classes: 0,
            density: 1.0,
            ..Default::default()
        };
        let ds = cfg.generate();
        // Labels are real-valued and not all equal.
        let min = ds.labels.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = ds.labels.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max > min);
    }

    #[test]
    fn presets_cover_all_paper_datasets() {
        assert_eq!(presets::ALL.len(), 11);
        for name in [
            "susy", "higgs", "criteo", "epsilon", "rcv1", "synthesis", "rcv1-multi",
            "synthesis-multi", "gender", "age", "taste",
        ] {
            assert!(presets::by_name(name).is_some(), "missing preset {name}");
        }
        assert!(presets::by_name("unknown").is_none());
    }

    #[test]
    fn preset_scaling_preserves_avg_nnz() {
        let p = presets::by_name("synthesis").unwrap();
        let cfg = p.config(10_000.0, 100.0, 1);
        let ds = cfg.generate();
        assert_eq!(ds.n_instances(), 5_000);
        assert_eq!(ds.n_features(), 1_000);
        // Original avg nnz = 100k * 0.001 = 100 per row.
        assert!((ds.avg_nnz_per_row() - 100.0).abs() < 1.0);
    }
}
