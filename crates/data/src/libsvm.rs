//! LIBSVM format reader/writer.
//!
//! Every public dataset the paper evaluates (Table 2) ships in LIBSVM text
//! format: one instance per line, `label idx:value idx:value …` with 1-based
//! ascending feature indices. We accept both 0- and 1-based indices
//! (auto-detected per file: if any index 0 appears, the file is 0-based) and
//! map class labels `{-1, +1}` to `{0, 1}` for binary tasks.

use crate::dataset::{Dataset, FeatureMatrix};
use crate::error::DataError;
use crate::sparse::CsrBuilder;
use crate::FeatureId;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parsed but not yet index-normalized LIBSVM content.
struct RawFile {
    labels: Vec<f32>,
    rows: Vec<Vec<(u32, f32)>>,
    max_index: u32,
    has_zero_index: bool,
}

fn parse_reader<R: Read>(reader: R) -> Result<RawFile, DataError> {
    let mut raw = RawFile { labels: Vec::new(), rows: Vec::new(), max_index: 0, has_zero_index: false };
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let label_tok = parts.next().ok_or_else(|| DataError::Parse {
            line: lineno + 1,
            message: "empty line content".into(),
        })?;
        let label: f32 = label_tok.parse().map_err(|_| DataError::Parse {
            line: lineno + 1,
            message: format!("bad label '{label_tok}'"),
        })?;
        let mut row = Vec::new();
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| DataError::Parse {
                line: lineno + 1,
                message: format!("expected idx:value, got '{tok}'"),
            })?;
            let idx: u32 = idx_s.parse().map_err(|_| DataError::Parse {
                line: lineno + 1,
                message: format!("bad feature index '{idx_s}'"),
            })?;
            let val: f32 = val_s.parse().map_err(|_| DataError::Parse {
                line: lineno + 1,
                message: format!("bad feature value '{val_s}'"),
            })?;
            raw.max_index = raw.max_index.max(idx);
            raw.has_zero_index |= idx == 0;
            row.push((idx, val));
        }
        raw.labels.push(label);
        raw.rows.push(row);
    }
    Ok(raw)
}

/// Reads a LIBSVM dataset from any reader.
///
/// `n_classes` declares the task (see [`Dataset`]); for binary tasks labels
/// `-1`/`+1` are remapped to `0`/`1`. `n_features` may force a dimensionality
/// larger than the maximum observed index (pass `None` to infer).
pub fn read_from<R: Read>(
    reader: R,
    n_classes: usize,
    n_features: Option<usize>,
    name: impl Into<String>,
) -> Result<Dataset, DataError> {
    let mut raw = parse_reader(reader)?;
    let offset: u32 = if raw.has_zero_index { 0 } else { 1 };
    let inferred = if raw.max_index == 0 && !raw.has_zero_index {
        0
    } else {
        (raw.max_index + 1 - offset) as usize
    };
    let n_features = n_features.unwrap_or(inferred).max(inferred);

    if n_classes == 2 {
        for y in &mut raw.labels {
            if *y == -1.0 {
                *y = 0.0;
            }
        }
    }

    let nnz = raw.rows.iter().map(Vec::len).sum();
    let mut builder = CsrBuilder::with_capacity(n_features, raw.rows.len(), nnz);
    let mut entries: Vec<(FeatureId, f32)> = Vec::new();
    for row in &raw.rows {
        entries.clear();
        entries.extend(row.iter().map(|&(i, v)| (i - offset, v)));
        builder.push_row(&entries)?;
    }
    Dataset::new(FeatureMatrix::Sparse(builder.build()), raw.labels, n_classes, name)
}

/// Reads a LIBSVM dataset from a file path.
pub fn read_file(
    path: impl AsRef<Path>,
    n_classes: usize,
    n_features: Option<usize>,
) -> Result<Dataset, DataError> {
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "libsvm".to_string());
    let file = std::fs::File::open(path.as_ref())?;
    read_from(file, n_classes, n_features, name)
}

/// Writes a dataset in LIBSVM format (1-based indices).
pub fn write_to<W: Write>(writer: &mut W, dataset: &Dataset) -> Result<(), DataError> {
    let csr = dataset.features.to_csr();
    for (i, feats, vals) in csr.iter_rows() {
        write!(writer, "{}", dataset.labels[i])?;
        for (&f, &v) in feats.iter().zip(vals) {
            write!(writer, " {}:{}", f + 1, v)?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_one_based_file() {
        let text = "1 1:0.5 3:2.0\n-1 2:1.5\n";
        let ds = read_from(text.as_bytes(), 2, None, "t").unwrap();
        assert_eq!(ds.n_instances(), 2);
        assert_eq!(ds.n_features(), 3);
        assert_eq!(ds.labels, vec![1.0, 0.0]); // -1 remapped
        let csr = ds.features.to_csr();
        assert_eq!(csr.get(0, 0), Some(0.5));
        assert_eq!(csr.get(0, 2), Some(2.0));
        assert_eq!(csr.get(1, 1), Some(1.5));
    }

    #[test]
    fn parses_zero_based_file() {
        let text = "0 0:1.0 4:2.0\n1 1:3.0\n";
        let ds = read_from(text.as_bytes(), 2, None, "t").unwrap();
        assert_eq!(ds.n_features(), 5);
        assert_eq!(ds.features.to_csr().get(0, 0), Some(1.0));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n1 1:1.0\n";
        let ds = read_from(text.as_bytes(), 2, None, "t").unwrap();
        assert_eq!(ds.n_instances(), 1);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let text = "1 1:1.0\nbogus 1:1.0\n";
        let err = read_from(text.as_bytes(), 2, None, "t").unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let text = "1 nocolon\n";
        assert!(read_from(text.as_bytes(), 2, None, "t").is_err());
    }

    #[test]
    fn forced_dimensionality_is_respected() {
        let text = "1 1:1.0\n";
        let ds = read_from(text.as_bytes(), 2, Some(10), "t").unwrap();
        assert_eq!(ds.n_features(), 10);
    }

    #[test]
    fn multiclass_labels_pass_through() {
        let text = "0 1:1\n2 1:1\n1 2:1\n";
        let ds = read_from(text.as_bytes(), 3, None, "t").unwrap();
        assert_eq!(ds.labels, vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn write_read_roundtrip() {
        let text = "1 1:0.5 3:2\n0 2:1.5\n1 1:7\n";
        let ds = read_from(text.as_bytes(), 2, None, "t").unwrap();
        let mut buf = Vec::new();
        write_to(&mut buf, &ds).unwrap();
        let back = read_from(buf.as_slice(), 2, Some(ds.n_features()), "t").unwrap();
        assert_eq!(ds.labels, back.labels);
        assert_eq!(ds.features, back.features);
    }
}
