//! Minimal CSV dataset reader.
//!
//! Industrial GBDT pipelines (the paper's §6 setting) commonly stage
//! tabular extracts as delimited text. This reader handles the dense
//! numeric case: one instance per line, a label column, every other column
//! a feature. Empty cells and literal `NA`/`nan` become missing values
//! (dropped from the sparse representation, so they flow through the
//! missing-value default-direction machinery rather than being imputed).

use crate::dataset::{Dataset, FeatureMatrix};
use crate::error::DataError;
use crate::sparse::CsrBuilder;
use crate::FeatureId;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first non-comment line is a header to skip.
    pub has_header: bool,
    /// Zero-based index of the label column.
    pub label_column: usize,
    /// Number of classes (see [`Dataset`]); 0 = regression.
    pub n_classes: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions { delimiter: ',', has_header: true, label_column: 0, n_classes: 2 }
    }
}

fn is_missing(cell: &str) -> bool {
    cell.is_empty() || cell.eq_ignore_ascii_case("na") || cell.eq_ignore_ascii_case("nan")
}

/// Reads a CSV dataset from any reader.
pub fn read_from<R: Read>(
    reader: R,
    options: &CsvOptions,
    name: impl Into<String>,
) -> Result<Dataset, DataError> {
    let mut labels: Vec<f32> = Vec::new();
    let mut rows: Vec<Vec<(FeatureId, f32)>> = Vec::new();
    let mut n_features: Option<usize> = None;
    let mut header_skipped = !options.has_header;

    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !header_skipped {
            header_skipped = true;
            continue;
        }
        let cells: Vec<&str> = line.split(options.delimiter).map(str::trim).collect();
        if options.label_column >= cells.len() {
            return Err(DataError::Parse {
                line: lineno + 1,
                message: format!(
                    "label column {} out of range for {} cells",
                    options.label_column,
                    cells.len()
                ),
            });
        }
        let width = cells.len() - 1;
        match n_features {
            None => n_features = Some(width),
            Some(w) if w != width => {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: format!("expected {w} feature cells, found {width}"),
                })
            }
            _ => {}
        }
        let label_cell = cells[options.label_column];
        let label: f32 = label_cell.parse().map_err(|_| DataError::Parse {
            line: lineno + 1,
            message: format!("bad label '{label_cell}'"),
        })?;
        let label = if options.n_classes == 2 && label == -1.0 { 0.0 } else { label };

        let mut row: Vec<(FeatureId, f32)> = Vec::with_capacity(width);
        let mut feature_idx = 0u32;
        for (k, cell) in cells.iter().enumerate() {
            if k == options.label_column {
                continue;
            }
            if !is_missing(cell) {
                let value: f32 = cell.parse().map_err(|_| DataError::Parse {
                    line: lineno + 1,
                    message: format!("bad value '{cell}' in column {k}"),
                })?;
                // Explicit zeros are kept: CSV is a dense format and zero is
                // informative there, unlike sparse LIBSVM.
                row.push((feature_idx, value));
            }
            feature_idx += 1;
        }
        labels.push(label);
        rows.push(row);
    }

    let d = n_features.unwrap_or(0);
    let mut builder = CsrBuilder::new(d);
    for row in &rows {
        builder.push_row(row)?;
    }
    Dataset::new(FeatureMatrix::Sparse(builder.build()), labels, options.n_classes, name)
}

/// Reads a CSV dataset from a file path.
pub fn read_file(path: impl AsRef<Path>, options: &CsvOptions) -> Result<Dataset, DataError> {
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "csv".to_string());
    let file = std::fs::File::open(path.as_ref())?;
    read_from(file, options, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_dense_csv_with_header() {
        let text = "label,f0,f1\n1,0.5,2.0\n0,1.5,0.0\n";
        let ds = read_from(text.as_bytes(), &CsvOptions::default(), "t").unwrap();
        assert_eq!(ds.n_instances(), 2);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.labels, vec![1.0, 0.0]);
        let csr = ds.features.to_csr();
        assert_eq!(csr.get(0, 1), Some(2.0));
        // Explicit zero kept.
        assert_eq!(csr.get(1, 1), Some(0.0));
    }

    #[test]
    fn label_column_in_the_middle() {
        let text = "0.1,1,0.9\n0.2,0,0.8\n";
        let opts = CsvOptions { has_header: false, label_column: 1, ..Default::default() };
        let ds = read_from(text.as_bytes(), &opts, "t").unwrap();
        assert_eq!(ds.labels, vec![1.0, 0.0]);
        let csr = ds.features.to_csr();
        assert_eq!(csr.get(0, 0), Some(0.1));
        assert_eq!(csr.get(0, 1), Some(0.9));
    }

    #[test]
    fn missing_cells_become_missing_values() {
        let text = "y,a,b\n1,,2.0\n0,3.0,NA\n1,nan,4.0\n";
        let ds = read_from(text.as_bytes(), &CsvOptions::default(), "t").unwrap();
        let csr = ds.features.to_csr();
        assert_eq!(csr.get(0, 0), None);
        assert_eq!(csr.get(0, 1), Some(2.0));
        assert_eq!(csr.get(1, 1), None);
        assert_eq!(csr.get(2, 0), None);
        assert_eq!(ds.avg_nnz_per_row(), 1.0);
    }

    #[test]
    fn rejects_ragged_rows_and_bad_cells() {
        let opts = CsvOptions { has_header: false, ..Default::default() };
        assert!(matches!(
            read_from("1,2.0\n0,1.0,9.0\n".as_bytes(), &opts, "t"),
            Err(DataError::Parse { line: 2, .. })
        ));
        assert!(read_from("1,abc\n".as_bytes(), &opts, "t").is_err());
        assert!(read_from("zz,1.0\n".as_bytes(), &opts, "t").is_err());
    }

    #[test]
    fn minus_one_labels_remap_for_binary() {
        let opts = CsvOptions { has_header: false, ..Default::default() };
        let ds = read_from("-1,1.0\n1,2.0\n".as_bytes(), &opts, "t").unwrap();
        assert_eq!(ds.labels, vec![0.0, 1.0]);
    }

    #[test]
    fn semicolon_delimiter_and_comments() {
        let opts = CsvOptions {
            delimiter: ';',
            has_header: false,
            n_classes: 0,
            ..Default::default()
        };
        let text = "# comment\n3.5;1.0;2.0\n";
        let ds = read_from(text.as_bytes(), &opts, "t").unwrap();
        assert_eq!(ds.labels, vec![3.5]);
        assert_eq!(ds.n_features(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join("gbdt-csv-test.csv");
        std::fs::write(&path, "label,x\n1,0.25\n0,0.75\n").unwrap();
        let ds = read_file(&path, &CsvOptions::default()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ds.n_instances(), 2);
        assert_eq!(ds.name, "gbdt-csv-test");
    }
}
