//! Dense row-major matrix for low-dimensional dense workloads.
//!
//! The paper's "LD" datasets (SUSY, Higgs, Criteo, Epsilon — Table 2) are
//! fully dense with few features; storing them sparsely would waste 4 bytes
//! of index per value. Trainers treat a dense matrix as a row-store whose
//! every feature is present.

use crate::error::DataError;
use crate::sparse::CsrMatrix;
use crate::FeatureId;
use serde::{Deserialize, Serialize};

/// Dense row-major feature matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    values: Vec<f32>,
}

impl DenseMatrix {
    /// Builds a dense matrix from a flat row-major buffer.
    pub fn from_flat(n_rows: usize, n_cols: usize, values: Vec<f32>) -> Result<Self, DataError> {
        if values.len() != n_rows * n_cols {
            return Err(DataError::Shape(format!(
                "flat buffer len {} != {n_rows} x {n_cols}",
                values.len()
            )));
        }
        Ok(DenseMatrix { n_rows, n_cols, values })
    }

    /// Builds a dense matrix from per-row vectors, all of equal length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, DataError> {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut values = Vec::with_capacity(rows.len() * n_cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_cols {
                return Err(DataError::Shape(format!(
                    "row {i} has {} values, expected {n_cols}",
                    row.len()
                )));
            }
            values.extend_from_slice(row);
        }
        Ok(DenseMatrix { n_rows: rows.len(), n_cols, values })
    }

    /// Number of instances (rows).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features (columns).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Row `i` as a value slice of length `n_cols`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.values[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.values[row * self.n_cols + col]
    }

    /// Converts to a CSR matrix, keeping explicit zeros out of the storage.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for i in 0..self.n_rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j as FeatureId);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_parts(self.n_rows, self.n_cols, row_ptr, col_idx, vals)
            .expect("dense-to-CSR conversion preserves invariants")
    }

    /// Bytes of heap storage used by the matrix.
    pub fn heap_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_checks_uniform_width() {
        assert!(DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn from_flat_checks_len() {
        assert!(DenseMatrix::from_flat(2, 2, vec![0.0; 3]).is_err());
        assert!(DenseMatrix::from_flat(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn to_csr_drops_zeros_and_preserves_values() {
        let m = DenseMatrix::from_rows(&[vec![0.0, 5.0], vec![7.0, 0.0]]).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), Some(5.0));
        assert_eq!(csr.get(1, 0), Some(7.0));
        assert_eq!(csr.get(0, 0), None);
    }
}
