//! Instance-placement bitmaps (§4.2.2).
//!
//! After a node splits under vertical partitioning, only the worker owning
//! the split feature knows each instance's side; it broadcasts one bit per
//! instance ("we use a bitmap to represent the instance placement, which can
//! reduce the network overhead by 32×" — versus sending 32-bit instance
//! ids). All workers then apply the same bitmap to their node-to-instance
//! indexes, which keeps those indexes identical across the cluster.

use serde::{Deserialize, Serialize};

/// A packed left/right placement bitmap: bit `i` set means the `i`-th
/// instance *of the node being split* (in index order) goes left.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementBitmap {
    n_bits: usize,
    words: Vec<u64>,
}

impl PlacementBitmap {
    /// An all-right (all zero) bitmap for `n_bits` instances.
    pub fn new(n_bits: usize) -> Self {
        PlacementBitmap { n_bits, words: vec![0; n_bits.div_ceil(64)] }
    }

    /// Builds a bitmap by evaluating `goes_left` on `0..n_bits`.
    pub fn from_predicate(n_bits: usize, mut goes_left: impl FnMut(usize) -> bool) -> Self {
        let mut bm = Self::new(n_bits);
        for i in 0..n_bits {
            if goes_left(i) {
                bm.set(i);
            }
        }
        bm
    }

    /// Number of instances covered.
    pub fn len(&self) -> usize {
        self.n_bits
    }

    /// True when covering zero instances.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Marks instance `i` as going left.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.n_bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether instance `i` goes left.
    #[inline]
    pub fn goes_left(&self, i: usize) -> bool {
        debug_assert!(i < self.n_bits);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of instances going left.
    pub fn count_left(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Exact wire encoding: ⌈N/8⌉ bytes plus an 8-byte header — the `⌈N/8⌉`
    /// of the paper's §3.1.3 communication formula.
    pub fn encode_bytes(&self) -> Vec<u8> {
        let n_bytes = self.n_bits.div_ceil(8);
        let mut out = Vec::with_capacity(8 + n_bytes);
        out.extend_from_slice(&(self.n_bits as u64).to_le_bytes());
        for chunk in 0..n_bytes {
            let word = self.words[chunk / 8];
            out.push((word >> ((chunk % 8) * 8)) as u8);
        }
        out
    }

    /// Decodes [`Self::encode_bytes`] output.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let n_bits = u64::from_le_bytes(bytes[0..8].try_into().ok()?) as usize;
        let n_bytes = n_bits.div_ceil(8);
        let payload = &bytes[8..];
        if payload.len() != n_bytes {
            return None;
        }
        let mut words = vec![0u64; n_bits.div_ceil(64)];
        for (chunk, &b) in payload.iter().enumerate() {
            words[chunk / 8] |= u64::from(b) << ((chunk % 8) * 8);
        }
        // Reject stray bits beyond n_bits (defensive: malformed input).
        if !n_bits.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (n_bits % 64) != 0 {
                    return None;
                }
            }
        }
        Some(PlacementBitmap { n_bits, words })
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + self.n_bits.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut bm = PlacementBitmap::new(130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.goes_left(0));
        assert!(!bm.goes_left(1));
        assert!(bm.goes_left(64));
        assert!(bm.goes_left(129));
        assert_eq!(bm.count_left(), 3);
        assert_eq!(bm.len(), 130);
    }

    #[test]
    fn from_predicate_matches() {
        let bm = PlacementBitmap::from_predicate(100, |i| i % 3 == 0);
        for i in 0..100 {
            assert_eq!(bm.goes_left(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_left(), 34);
    }

    #[test]
    fn wire_roundtrip_various_sizes() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 128, 1000] {
            let bm = PlacementBitmap::from_predicate(n, |i| (i * 7) % 3 == 1);
            let bytes = bm.encode_bytes();
            assert_eq!(bytes.len(), bm.wire_bytes(), "n={n}");
            assert_eq!(PlacementBitmap::decode_bytes(&bytes).unwrap(), bm, "n={n}");
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(PlacementBitmap::decode_bytes(&[1, 2, 3]).is_none());
        let bm = PlacementBitmap::from_predicate(20, |i| i % 2 == 0);
        let mut bytes = bm.encode_bytes();
        bytes.push(0);
        assert!(PlacementBitmap::decode_bytes(&bytes).is_none());
    }

    #[test]
    fn achieves_32x_reduction_vs_u32_ids() {
        // One bit per instance vs one u32 per instance.
        let n = 1_000_000;
        let bm = PlacementBitmap::new(n);
        let naive = n * 4;
        assert!(naive as f64 / bm.wire_bytes() as f64 > 31.0);
    }
}
