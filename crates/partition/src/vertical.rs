//! Vertical (column) partitioning: assigning features to column groups.
//!
//! The paper lists round-robin, hash-based, and range-based grouping and
//! observes that none guarantee load balance; Vero balances the number of
//! key-value pairs per group with a greedy assignment over per-feature
//! occurrence counts taken from the global quantile sketches (§4.2.3).

use crate::balance::greedy_partition;
use gbdt_data::FeatureId;
use serde::{Deserialize, Serialize};

/// Column grouping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupingStrategy {
    /// Feature `f` goes to group `f mod W`.
    RoundRobin,
    /// Feature `f` goes to group `hash(f) mod W`.
    Hash,
    /// Contiguous feature ranges of equal width.
    Range,
    /// Greedy balance over per-feature key-value counts (Vero's default).
    GreedyBalanced,
}

/// A complete assignment of D features to W column groups, with local-id
/// renumbering (paper §4.2.1 step 3: "for each feature, we assign a new
/// feature id starting from 0 inside the column group").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnGrouping {
    /// `assignment[f]` — group (worker) owning global feature `f`.
    assignment: Vec<u32>,
    /// `local_ids[f]` — the feature's id inside its group.
    local_ids: Vec<u32>,
    /// `groups[w]` — global feature ids owned by group `w`, ascending; the
    /// position of a feature in this list is its local id.
    groups: Vec<Vec<FeatureId>>,
}

fn fnv1a(x: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl ColumnGrouping {
    /// Builds a grouping of `n_features` features into `world` groups.
    ///
    /// `weights[f]` is the number of stored key-value pairs of feature `f`
    /// (only used by [`GroupingStrategy::GreedyBalanced`]).
    pub fn build(
        strategy: GroupingStrategy,
        n_features: usize,
        world: usize,
        weights: &[u64],
    ) -> Self {
        assert!(world >= 1, "need at least one group");
        let assignment: Vec<u32> = match strategy {
            GroupingStrategy::RoundRobin => {
                (0..n_features).map(|f| (f % world) as u32).collect()
            }
            GroupingStrategy::Hash => {
                (0..n_features).map(|f| (fnv1a(f as u32) % world as u64) as u32).collect()
            }
            GroupingStrategy::Range => {
                let p = crate::horizontal::HorizontalPartition::new(n_features, world);
                (0..n_features).map(|f| p.owner_of(f) as u32).collect()
            }
            GroupingStrategy::GreedyBalanced => {
                assert_eq!(weights.len(), n_features, "need one weight per feature");
                greedy_partition(weights, world).into_iter().map(|g| g as u32).collect()
            }
        };
        Self::from_assignment(assignment, world)
    }

    /// Builds the grouping directly from a per-feature group assignment.
    pub fn from_assignment(assignment: Vec<u32>, world: usize) -> Self {
        let mut groups: Vec<Vec<FeatureId>> = vec![Vec::new(); world];
        let mut local_ids = vec![0u32; assignment.len()];
        for (f, &g) in assignment.iter().enumerate() {
            assert!((g as usize) < world, "group {g} out of range");
            local_ids[f] = groups[g as usize].len() as u32;
            groups[g as usize].push(f as FeatureId);
        }
        ColumnGrouping { assignment, local_ids, groups }
    }

    /// Number of global features.
    pub fn n_features(&self) -> usize {
        self.assignment.len()
    }

    /// Number of groups (workers).
    pub fn world(&self) -> usize {
        self.groups.len()
    }

    /// Group owning global feature `f`.
    #[inline]
    pub fn group_of(&self, f: FeatureId) -> usize {
        self.assignment[f as usize] as usize
    }

    /// Group-local id of global feature `f`.
    #[inline]
    pub fn local_id(&self, f: FeatureId) -> u32 {
        self.local_ids[f as usize]
    }

    /// Global feature ids owned by group `w` (position = local id).
    pub fn group_features(&self, w: usize) -> &[FeatureId] {
        &self.groups[w]
    }

    /// Global id of `(group, local id)`.
    #[inline]
    pub fn global_id(&self, w: usize, local: u32) -> FeatureId {
        self.groups[w][local as usize]
    }

    /// Number of features in group `w` (the paper's `p`).
    pub fn group_len(&self, w: usize) -> usize {
        self.groups[w].len()
    }

    /// Exact wire encoding of the assignment (step 3 broadcast).
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.assignment.len() * 4);
        out.extend_from_slice(&(self.world() as u32).to_le_bytes());
        out.extend_from_slice(&(self.assignment.len() as u32).to_le_bytes());
        for &g in &self.assignment {
            out.extend_from_slice(&g.to_le_bytes());
        }
        out
    }

    /// Decodes [`Self::encode_bytes`] output.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let world = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let d = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let payload = &bytes[8..];
        if payload.len() != d * 4 || world == 0 {
            return None;
        }
        let assignment: Vec<u32> = payload
            .chunks_exact(4)
            .map(|ch| u32::from_le_bytes(ch.try_into().unwrap()))
            .collect();
        if assignment.iter().any(|&g| g as usize >= world) {
            return None;
        }
        Some(Self::from_assignment(assignment, world))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{group_loads, imbalance};

    fn check_bijection(g: &ColumnGrouping) {
        // Every feature appears in exactly one group at its local position.
        let mut seen = vec![false; g.n_features()];
        for w in 0..g.world() {
            for (local, &f) in g.group_features(w).iter().enumerate() {
                assert!(!seen[f as usize], "feature {f} in two groups");
                seen[f as usize] = true;
                assert_eq!(g.group_of(f), w);
                assert_eq!(g.local_id(f), local as u32);
                assert_eq!(g.global_id(w, local as u32), f);
            }
        }
        assert!(seen.iter().all(|&s| s), "some feature unassigned");
    }

    #[test]
    fn round_robin_cycles() {
        let g = ColumnGrouping::build(GroupingStrategy::RoundRobin, 7, 3, &[]);
        assert_eq!(g.group_of(0), 0);
        assert_eq!(g.group_of(4), 1);
        assert_eq!(g.group_of(5), 2);
        check_bijection(&g);
    }

    #[test]
    fn range_is_contiguous() {
        let g = ColumnGrouping::build(GroupingStrategy::Range, 10, 3, &[]);
        check_bijection(&g);
        for w in 0..3 {
            let feats = g.group_features(w);
            for pair in feats.windows(2) {
                assert_eq!(pair[1], pair[0] + 1, "range group not contiguous");
            }
        }
    }

    #[test]
    fn hash_covers_all_groups() {
        let g = ColumnGrouping::build(GroupingStrategy::Hash, 100, 4, &[]);
        check_bijection(&g);
        for w in 0..4 {
            assert!(g.group_len(w) > 0, "hash left group {w} empty");
        }
    }

    #[test]
    fn greedy_balances_skewed_weights() {
        let mut weights = vec![10_000u64, 9_000, 8_000];
        weights.extend(std::iter::repeat_n(100, 97));
        let g = ColumnGrouping::build(GroupingStrategy::GreedyBalanced, 100, 4, &weights);
        check_bijection(&g);
        let assignment: Vec<usize> = (0..100).map(|f| g.group_of(f)).collect();
        let loads = group_loads(&weights, &assignment, 4);
        assert!(imbalance(&loads) < 1.1, "imbalance {}", imbalance(&loads));
        // Round-robin on the same weights is far worse.
        let rr = ColumnGrouping::build(GroupingStrategy::RoundRobin, 100, 4, &[]);
        let rr_assignment: Vec<usize> = (0..100).map(|f| rr.group_of(f)).collect();
        assert!(imbalance(&group_loads(&weights, &rr_assignment, 4)) > 1.2);
    }

    #[test]
    fn wire_roundtrip() {
        let g = ColumnGrouping::build(GroupingStrategy::RoundRobin, 9, 4, &[]);
        let bytes = g.encode_bytes();
        assert_eq!(ColumnGrouping::decode_bytes(&bytes).unwrap(), g);
        assert!(ColumnGrouping::decode_bytes(&bytes[..5]).is_none());
        // Corrupt a group id beyond world.
        let mut bad = bytes.clone();
        bad[8] = 200;
        assert!(ColumnGrouping::decode_bytes(&bad).is_none());
    }

    #[test]
    fn local_ids_are_dense_and_ascending() {
        let g = ColumnGrouping::build(GroupingStrategy::Hash, 50, 3, &[]);
        for w in 0..3 {
            let feats = g.group_features(w);
            for pair in feats.windows(2) {
                assert!(pair[0] < pair[1], "group features must ascend");
            }
        }
    }
}
