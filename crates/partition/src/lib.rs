//! Data management policies: how the dataset matrix is split across workers.
//!
//! * [`horizontal`] — row sharding (QD1/QD2; how data arrives from HDFS).
//! * [`vertical`] — column grouping strategies: round-robin, hash, range,
//!   and the greedy load-balanced assignment of §4.2.3.
//! * [`balance`] — greedy multiway number partitioning (the NP-hard feature
//!   assignment heuristic the paper solves greedily).
//! * [`bitmap`] — instance-placement bitmap broadcast after node splitting
//!   (§4.2.2, the 32× network reduction).
//! * [`transform`] — the five-step horizontal-to-vertical transformation of
//!   §4.2.1 (Figure 8) with naïve / compressed / blockified wire variants
//!   (Appendix A, Table 5).

pub mod balance;
pub mod bitmap;
pub mod horizontal;
pub mod transform;
pub mod vertical;

pub use bitmap::PlacementBitmap;
pub use horizontal::HorizontalPartition;
pub use vertical::{ColumnGrouping, GroupingStrategy};
