//! Greedy multiway number partitioning.
//!
//! Assigning features to W column groups so the per-group key-value counts
//! are "as close as possible" is NP-hard; the paper uses a greedy method
//! (§4.2.3): sort items by descending weight, repeatedly give the next item
//! to the lightest group.

/// Assigns `weights.len()` items to `n_groups` groups; returns the group id
/// of each item. Deterministic: ties (equal weights or equal group loads)
/// break toward the smaller index.
pub fn greedy_partition(weights: &[u64], n_groups: usize) -> Vec<usize> {
    assert!(n_groups >= 1, "need at least one group");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    // Descending weight, ascending index on ties.
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut loads = vec![0u64; n_groups];
    let mut assignment = vec![0usize; weights.len()];
    for item in order {
        let lightest = (0..n_groups).min_by_key(|&g| (loads[g], g)).expect("n_groups >= 1");
        assignment[item] = lightest;
        loads[lightest] += weights[item];
    }
    assignment
}

/// Total weight per group for a given assignment.
pub fn group_loads(weights: &[u64], assignment: &[usize], n_groups: usize) -> Vec<u64> {
    let mut loads = vec![0u64; n_groups];
    for (item, &g) in assignment.iter().enumerate() {
        loads[g] += weights[item];
    }
    loads
}

/// Load imbalance ratio: `max_load / mean_load` (1.0 = perfect balance).
pub fn imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = *loads.iter().max().unwrap() as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_items_are_assigned() {
        let weights = [5, 3, 8, 1, 9, 2];
        let asg = greedy_partition(&weights, 3);
        assert_eq!(asg.len(), 6);
        assert!(asg.iter().all(|&g| g < 3));
    }

    #[test]
    fn balances_known_instance() {
        // Classic: {9, 8, 5, 3, 2, 1} into 2 groups -> loads {14, 14}.
        let weights = [5, 3, 8, 1, 9, 2];
        let asg = greedy_partition(&weights, 2);
        let loads = group_loads(&weights, &asg, 2);
        assert_eq!(loads.iter().sum::<u64>(), 28);
        assert_eq!(*loads.iter().max().unwrap(), 14);
        assert!((imbalance(&loads) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn beats_round_robin_on_skewed_weights() {
        // One heavy feature plus many light ones — the situation the paper's
        // load-balance concern describes.
        let mut weights = vec![1_000u64];
        weights.extend(std::iter::repeat_n(10, 99));
        let greedy = greedy_partition(&weights, 4);
        let greedy_imb = imbalance(&group_loads(&weights, &greedy, 4));
        let rr: Vec<usize> = (0..weights.len()).map(|i| i % 4).collect();
        let rr_imb = imbalance(&group_loads(&weights, &rr, 4));
        assert!(greedy_imb < rr_imb, "greedy {greedy_imb} vs rr {rr_imb}");
    }

    #[test]
    fn deterministic_under_ties() {
        let weights = [4, 4, 4, 4];
        assert_eq!(greedy_partition(&weights, 2), greedy_partition(&weights, 2));
        assert_eq!(greedy_partition(&weights, 2), vec![0, 1, 0, 1]);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(greedy_partition(&[], 3), Vec::<usize>::new());
        assert_eq!(greedy_partition(&[7], 3), vec![0]);
        let asg = greedy_partition(&[1, 2, 3], 1);
        assert_eq!(asg, vec![0, 0, 0]);
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }
}
