//! Horizontal (row) partitioning: contiguous instance ranges per worker —
//! the de facto layout of datasets arriving from distributed file systems.

use serde::{Deserialize, Serialize};

/// A horizontal partition of N instances over W workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HorizontalPartition {
    n_instances: usize,
    world: usize,
}

impl HorizontalPartition {
    /// Partitions `n_instances` rows over `world` workers as evenly as
    /// possible (earlier workers take the remainder).
    pub fn new(n_instances: usize, world: usize) -> Self {
        assert!(world >= 1, "need at least one worker");
        HorizontalPartition { n_instances, world }
    }

    /// Total instance count.
    pub fn n_instances(&self) -> usize {
        self.n_instances
    }

    /// Worker count.
    pub fn world(&self) -> usize {
        self.world
    }

    /// The `[lo, hi)` row range of worker `w`.
    pub fn bounds(&self, w: usize) -> (usize, usize) {
        assert!(w < self.world, "worker {w} out of range");
        let base = self.n_instances / self.world;
        let extra = self.n_instances % self.world;
        let lo = w * base + w.min(extra);
        let hi = lo + base + usize::from(w < extra);
        (lo, hi)
    }

    /// Number of rows on worker `w`.
    pub fn shard_len(&self, w: usize) -> usize {
        let (lo, hi) = self.bounds(w);
        hi - lo
    }

    /// The worker owning global row `i`.
    pub fn owner_of(&self, i: usize) -> usize {
        assert!(i < self.n_instances, "row {i} out of range");
        let base = self.n_instances / self.world;
        let extra = self.n_instances % self.world;
        let boundary = extra * (base + 1);
        if i < boundary {
            i / (base + 1)
        } else {
            extra + (i - boundary) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_cover_all_rows_contiguously() {
        for (n, w) in [(10, 3), (7, 7), (5, 8), (100, 1), (0, 4)] {
            let p = HorizontalPartition::new(n, w);
            let mut expected = 0;
            for worker in 0..w {
                let (lo, hi) = p.bounds(worker);
                assert_eq!(lo, expected, "n={n} w={w} worker={worker}");
                assert!(hi >= lo);
                expected = hi;
            }
            assert_eq!(expected, n);
        }
    }

    #[test]
    fn shards_differ_by_at_most_one() {
        let p = HorizontalPartition::new(10, 3);
        let sizes: Vec<_> = (0..3).map(|w| p.shard_len(w)).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn owner_of_inverts_bounds() {
        for (n, w) in [(10, 3), (17, 5), (8, 8), (23, 4)] {
            let p = HorizontalPartition::new(n, w);
            for i in 0..n {
                let owner = p.owner_of(i);
                let (lo, hi) = p.bounds(owner);
                assert!(
                    (lo..hi).contains(&i),
                    "n={n} w={w}: row {i} claimed by {owner} with range {lo}..{hi}"
                );
            }
        }
    }
}
