//! The five-step horizontal-to-vertical transformation (§4.2.1, Figure 8).
//!
//! Datasets arrive horizontally partitioned (one row shard per worker, as
//! from HDFS); vertical trainers need each worker to hold *all* rows of a
//! feature subset. The transformation:
//!
//! 1. **Build quantile sketches** — each worker sketches every feature of
//!    its shard, then sketches are repartitioned by feature and merged into
//!    global per-feature sketches.
//! 2. **Generate candidate splits** — each sketch owner proposes `q` splits;
//!    the master collects and broadcasts the full [`BinCuts`].
//! 3. **Column grouping** — the master assigns features to workers
//!    (greedy-balanced by key-value counts from the sketches, §4.2.3) and
//!    broadcasts the assignment; each worker re-encodes its shard as W
//!    partial column groups with group-local feature ids and bin indexes.
//! 4. **Repartition column groups** — partial groups are exchanged so each
//!    worker holds all rows of its group, as [`BlockedRows`] sorted by
//!    source file split and merged down to a handful of blocks (Figure 9).
//! 5. **Broadcast instance labels** — the master collects every shard's
//!    labels and broadcasts the full vector.
//!
//! Step 4's wire format is selectable ([`WireEncoding`]) to reproduce the
//! Table 5 ablation: naïve 12-byte pairs, compressed pairs (still framed
//! per row), or the blockified flat-array format.

use crate::horizontal::HorizontalPartition;
use crate::vertical::{ColumnGrouping, GroupingStrategy};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gbdt_cluster::comm::protocol::REPARTITION_A2A_TAG;
use gbdt_cluster::{CommError, Phase, WorkerCtx};
use gbdt_core::{BinCuts, QuantileSketch};
use gbdt_data::block::{Block, BlockedRows};
use gbdt_data::dataset::Dataset;
use gbdt_data::encoding;
use gbdt_data::{BinId, FeatureId};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wire format of the step-4 repartition (the Table 5 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireEncoding {
    /// Original 〈u32 feature, f64 value〉 pairs, framed per row.
    Naive,
    /// Compact 〈⌈log p⌉-byte local feature, ⌈log q⌉-byte bin〉 pairs, still
    /// framed per row (compression without blockify).
    Compressed,
    /// Compressed pairs as three flat arrays with one header (Vero).
    Blockified,
}

/// Transformation parameters.
#[derive(Debug, Clone)]
pub struct TransformConfig {
    /// q — candidate splits per feature.
    pub n_bins: usize,
    /// Quantile sketch per-level capacity.
    pub sketch_capacity: usize,
    /// Column grouping strategy (Vero: greedy balanced).
    pub strategy: GroupingStrategy,
    /// Step-4 wire format.
    pub encoding: WireEncoding,
    /// Block-merge target (paper: ≤ 5 blocks after merge).
    pub max_blocks: usize,
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig {
            n_bins: 20,
            sketch_capacity: QuantileSketch::DEFAULT_CAP,
            strategy: GroupingStrategy::GreedyBalanced,
            encoding: WireEncoding::Blockified,
            max_blocks: 5,
        }
    }
}

/// Timing/traffic breakdown of one transformation (Appendix A, Table 5).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransformReport {
    /// Steps 1–2: sketching, merge, candidate split generation (comp s).
    pub sketch_seconds: f64,
    /// Steps 3–4: grouping, encode, exchange, decode, merge (comp s).
    pub repartition_seconds: f64,
    /// Step 5: label gather + broadcast (comp s).
    pub label_seconds: f64,
    /// Modelled communication seconds across all steps.
    pub comm_seconds: f64,
    /// Bytes this worker sent during the step-4 exchange.
    pub repartition_bytes_sent: u64,
}

/// Result of the transformation on one worker.
#[derive(Debug)]
pub struct TransformOutput {
    /// Global candidate splits for every feature.
    pub cuts: BinCuts,
    /// The feature → group assignment.
    pub grouping: ColumnGrouping,
    /// All N rows of this worker's column group (group-local feature ids).
    pub local_data: BlockedRows,
    /// All N instance labels.
    pub labels: Vec<f32>,
    /// Per-feature key-value counts (from the global sketches).
    pub feature_counts: Vec<u64>,
    /// Timing and traffic breakdown.
    pub report: TransformReport,
}

/// Steps 1–2: global candidate splits + per-feature counts.
///
/// Also used alone by the horizontal trainers (QD1/QD2), which need global
/// cuts so locally built histograms are aggregatable.
pub fn build_global_cuts(
    ctx: &mut WorkerCtx,
    shard: &Dataset,
    n_bins: usize,
    sketch_capacity: usize,
) -> Result<(BinCuts, Vec<u64>), CommError> {
    let w = ctx.world();
    let rank = ctx.rank();
    let d = shard.n_features();

    // Local sketches over this shard.
    let local = ctx.time(Phase::Sketch, || BinCuts::sketch_dataset(shard, sketch_capacity));

    // Repartition: feature f's sketches merge on worker f mod W.
    let payloads = ctx.time(Phase::Sketch, || {
        let mut payloads: Vec<BytesMut> = (0..w).map(|_| BytesMut::new()).collect();
        for (f, sketch) in local.iter().enumerate() {
            let dest = f % w;
            if dest == rank || sketch.is_empty() {
                continue;
            }
            let bytes = sketch.encode_bytes();
            payloads[dest].put_u32(f as u32);
            payloads[dest].put_u32(bytes.len() as u32);
            payloads[dest].put_slice(&bytes);
        }
        payloads
    });
    let mut merged: Vec<QuantileSketch> = local;
    // Send per-destination batches, receive and merge.
    let mut incoming: Vec<Bytes> = Vec::with_capacity(w);
    {
        let tag_payloads: Vec<Bytes> = payloads.into_iter().map(BytesMut::freeze).collect();
        // All-to-all via pairwise send/recv on a gathered tag.
        let batches = all_to_all(ctx, tag_payloads)?;
        incoming.extend(batches);
    }
    ctx.time(Phase::Sketch, || {
        for mut batch in incoming {
            while batch.has_remaining() {
                let f = batch.get_u32() as usize;
                let len = batch.get_u32() as usize;
                let sk = QuantileSketch::decode_bytes(&batch.split_to(len))
                    .expect("peer sends well-formed sketches");
                merged[f].merge(&sk);
            }
        }
    });

    // Owned features: cuts + counts, gathered at master.
    let partial = ctx.time(Phase::Sketch, || {
        let mut out = BytesMut::new();
        for f in (rank..d).step_by(w) {
            let cuts = merged[f].candidate_splits(n_bins);
            out.put_u32(f as u32);
            out.put_u64(merged[f].count());
            out.put_u16(cuts.len() as u16);
            for c in &cuts {
                out.put_f32(*c);
            }
        }
        out.freeze()
    });
    let gathered = ctx.comm.gather(0, partial)?;
    let full = if let Some(parts) = gathered {
        let mut cut_values: Vec<Vec<f32>> = vec![Vec::new(); d];
        let mut counts = vec![0u64; d];
        for mut part in parts {
            while part.has_remaining() {
                let f = part.get_u32() as usize;
                counts[f] = part.get_u64();
                let len = part.get_u16() as usize;
                let mut cuts = Vec::with_capacity(len);
                for _ in 0..len {
                    cuts.push(part.get_f32());
                }
                cut_values[f] = cuts;
            }
        }
        let cuts = BinCuts::from_cut_values(cut_values);
        let mut payload = BytesMut::new();
        let cut_bytes = cuts.encode_bytes();
        payload.put_u32(cut_bytes.len() as u32);
        payload.put_slice(&cut_bytes);
        for &c in &counts {
            payload.put_u64(c);
        }
        payload.freeze()
    } else {
        Bytes::new()
    };
    let mut full = ctx.comm.broadcast(0, full)?;
    let cut_len = full.get_u32() as usize;
    let cuts = BinCuts::decode_bytes(&full.split_to(cut_len))
        .expect("master broadcasts well-formed cuts");
    let mut counts = Vec::with_capacity(d);
    while full.has_remaining() {
        counts.push(full.get_u64());
    }
    Ok((cuts, counts))
}

/// All-to-all exchange: `payloads[w]` goes to worker `w`; returns the
/// payloads received from every worker (own payload included, rank order).
fn all_to_all(ctx: &mut WorkerCtx, payloads: Vec<Bytes>) -> Result<Vec<Bytes>, CommError> {
    assert_eq!(payloads.len(), ctx.world(), "one payload per destination");
    let rank = ctx.rank();
    let mut own = Bytes::new();
    for (dest, payload) in payloads.into_iter().enumerate() {
        if dest == rank {
            own = payload;
        } else {
            // Reuse the collective tag allocator by round-tripping through
            // all_gather-compatible point-to-point sends: one tag per
            // all-to-all, aligned across ranks because every rank calls this
            // in the same program order.
            ctx.comm.send(dest, REPARTITION_A2A_TAG, payload)?;
        }
    }
    let mut out = Vec::with_capacity(ctx.world());
    for from in 0..ctx.world() {
        if from == rank {
            out.push(own.clone());
        } else {
            out.push(ctx.comm.recv(from, REPARTITION_A2A_TAG)?);
        }
    }
    Ok(out)
}

/// Runs the full five-step transformation on this worker.
pub fn horizontal_to_vertical(
    ctx: &mut WorkerCtx,
    shard: &Dataset,
    partition: HorizontalPartition,
    cfg: &TransformConfig,
) -> Result<TransformOutput, CommError> {
    let w = ctx.world();
    let rank = ctx.rank();
    let d = shard.n_features();
    let q = cfg.n_bins;
    let (row_lo, row_hi) = partition.bounds(rank);
    assert_eq!(shard.n_instances(), row_hi - row_lo, "shard does not match partition");
    let mut report = TransformReport::default();
    let comm_before = ctx.comm.counters();

    // Steps 1-2.
    // lint: allow(wall-clock) — measures computation time for modelled stats only
    let t = Instant::now();
    let (cuts, feature_counts) = build_global_cuts(ctx, shard, q, cfg.sketch_capacity)?;
    report.sketch_seconds = t.elapsed().as_secs_f64();

    // Step 3: master decides the grouping, broadcasts the assignment.
    // lint: allow(wall-clock) — measures computation time for modelled stats only
    let t = Instant::now();
    let grouping_bytes = if rank == 0 {
        let g = ColumnGrouping::build(cfg.strategy, d, w, &feature_counts);
        Bytes::from(g.encode_bytes())
    } else {
        Bytes::new()
    };
    let grouping_bytes = ctx.comm.broadcast(0, grouping_bytes)?;
    let grouping = ColumnGrouping::decode_bytes(&grouping_bytes)
        .expect("master broadcasts well-formed grouping");

    // Encode this shard as W partial column groups.
    let binned = cuts.apply(shard);
    let bytes_before_exchange = ctx.comm.counters().bytes_sent;
    let mut to_send: Vec<Bytes> = Vec::with_capacity(w);
    for dest in 0..w {
        let p = grouping.group_len(dest).max(1);
        // Collect this destination's pairs, framed per row.
        let mut feats: Vec<FeatureId> = Vec::new();
        let mut bins: Vec<BinId> = Vec::new();
        let mut row_ptr: Vec<u32> = Vec::with_capacity(binned.n_rows() + 1);
        row_ptr.push(0);
        for i in 0..binned.n_rows() {
            let (rf, rb) = binned.row(i);
            for (&f, &b) in rf.iter().zip(rb) {
                if grouping.group_of(f) == dest {
                    feats.push(grouping.local_id(f));
                    bins.push(b);
                }
            }
            row_ptr.push(feats.len() as u32);
        }
        let payload = match cfg.encoding {
            WireEncoding::Blockified => {
                let block = Block::new(rank as u32, row_lo as u32, feats, bins, row_ptr)
                    .expect("partial group arrays are consistent");
                encoding::encode_block(&block, p, q)
            }
            WireEncoding::Compressed => {
                encode_rowframed_compressed(rank as u32, row_lo as u32, &feats, &bins, &row_ptr, p, q)
            }
            WireEncoding::Naive => encode_rowframed_naive(
                rank as u32,
                row_lo as u32,
                shard,
                &grouping,
                dest,
                &row_ptr,
            ),
        };
        to_send.push(payload);
    }
    report.repartition_seconds += t.elapsed().as_secs_f64();
    ctx.stats.add_comp(Phase::Transform, t.elapsed().as_secs_f64());

    // Step 4: exchange and reassemble.
    let received = all_to_all(ctx, to_send)?;
    // lint: allow(wall-clock) — measures computation time for modelled stats only
    let t = Instant::now();
    let p_local = grouping.group_len(rank).max(1);
    let mut blocks = Vec::with_capacity(w);
    for payload in received {
        let block = match cfg.encoding {
            WireEncoding::Blockified => encoding::decode_block(payload, p_local, q)
                .expect("peer sends well-formed blocks"),
            WireEncoding::Compressed => decode_rowframed_compressed(payload, p_local, q)
                .expect("peer sends well-formed compressed rows"),
            WireEncoding::Naive => decode_rowframed_naive(payload, &cuts, &grouping, rank)
                .expect("peer sends well-formed naive rows"),
        };
        blocks.push(block);
    }
    let mut local_data = BlockedRows::assemble(grouping.group_len(rank), blocks)
        .expect("received blocks tile the instance space");
    local_data.merge(cfg.max_blocks);
    report.repartition_seconds += t.elapsed().as_secs_f64();
    ctx.stats.add_comp(Phase::Transform, t.elapsed().as_secs_f64());
    report.repartition_bytes_sent = ctx.comm.counters().bytes_sent - bytes_before_exchange;

    // Step 5: labels.
    // lint: allow(wall-clock) — measures computation time for modelled stats only
    let t = Instant::now();
    let label_payload = {
        let mut out = BytesMut::with_capacity(shard.labels.len() * 4);
        for &y in &shard.labels {
            out.put_f32(y);
        }
        out.freeze()
    };
    let gathered = ctx.comm.gather(0, label_payload)?;
    let all_labels = if let Some(parts) = gathered {
        let mut out = BytesMut::new();
        for part in parts {
            out.put_slice(&part);
        }
        out.freeze()
    } else {
        Bytes::new()
    };
    let mut all_labels = ctx.comm.broadcast(0, all_labels)?;
    let mut labels = Vec::with_capacity(partition.n_instances());
    while all_labels.has_remaining() {
        labels.push(all_labels.get_f32());
    }
    report.label_seconds = t.elapsed().as_secs_f64();
    ctx.stats.add_comp(Phase::Transform, t.elapsed().as_secs_f64());

    report.comm_seconds = ctx.comm.counters().comm_seconds - comm_before.comm_seconds;

    Ok(TransformOutput { cuts, grouping, local_data, labels, feature_counts, report })
}

fn encode_rowframed_compressed(
    split: u32,
    row_offset: u32,
    feats: &[FeatureId],
    bins: &[BinId],
    row_ptr: &[u32],
    p: usize,
    q: usize,
) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u32(split);
    out.put_u32(row_offset);
    out.put_u32(row_ptr.len() as u32 - 1);
    for win in row_ptr.windows(2) {
        let (lo, hi) = (win[0] as usize, win[1] as usize);
        out.put_u32((hi - lo) as u32);
        let pairs: Vec<(FeatureId, BinId)> =
            feats[lo..hi].iter().copied().zip(bins[lo..hi].iter().copied()).collect();
        out.put_slice(&encoding::encode_compressed(&pairs, p, q));
    }
    out.freeze()
}

fn decode_rowframed_compressed(mut bytes: Bytes, p: usize, q: usize) -> Option<Block> {
    if bytes.len() < 12 {
        return None;
    }
    let split = bytes.get_u32();
    let row_offset = bytes.get_u32();
    let n_rows = bytes.get_u32() as usize;
    let pair_bytes = encoding::compressed_pair_bytes(p, q);
    let mut feats = Vec::new();
    let mut bins = Vec::new();
    let mut row_ptr = Vec::with_capacity(n_rows + 1);
    row_ptr.push(0u32);
    for _ in 0..n_rows {
        if bytes.remaining() < 4 {
            return None;
        }
        let n = bytes.get_u32() as usize;
        if bytes.remaining() < n * pair_bytes {
            return None;
        }
        let pairs = encoding::decode_compressed(bytes.split_to(n * pair_bytes), p, q).ok()?;
        for (f, b) in pairs {
            feats.push(f);
            bins.push(b);
        }
        row_ptr.push(feats.len() as u32);
    }
    if bytes.has_remaining() {
        return None;
    }
    Block::new(split, row_offset, feats, bins, row_ptr).ok()
}

fn encode_rowframed_naive(
    split: u32,
    row_offset: u32,
    shard: &Dataset,
    grouping: &ColumnGrouping,
    dest: usize,
    row_ptr: &[u32],
) -> Bytes {
    // The naïve format ships the ORIGINAL 〈global feature id, f64 value〉
    // pairs (12 bytes each) — exactly what a transformation without the
    // bin-index compression would send.
    let csr = shard.features.to_csr();
    let mut out = BytesMut::new();
    out.put_u32(split);
    out.put_u32(row_offset);
    out.put_u32(row_ptr.len() as u32 - 1);
    for i in 0..csr.n_rows() {
        let (feats, vals) = csr.row(i);
        let pairs: Vec<(FeatureId, f64)> = feats
            .iter()
            .zip(vals)
            .filter(|&(&f, _)| grouping.group_of(f) == dest)
            .map(|(&f, &v)| (f, f64::from(v)))
            .collect();
        out.put_u32(pairs.len() as u32);
        out.put_slice(&encoding::encode_naive(&pairs));
    }
    out.freeze()
}

fn decode_rowframed_naive(
    mut bytes: Bytes,
    cuts: &BinCuts,
    grouping: &ColumnGrouping,
    rank: usize,
) -> Option<Block> {
    if bytes.len() < 12 {
        return None;
    }
    let split = bytes.get_u32();
    let row_offset = bytes.get_u32();
    let n_rows = bytes.get_u32() as usize;
    let mut feats = Vec::new();
    let mut bins = Vec::new();
    let mut row_ptr = Vec::with_capacity(n_rows + 1);
    row_ptr.push(0u32);
    for _ in 0..n_rows {
        if bytes.remaining() < 4 {
            return None;
        }
        let n = bytes.get_u32() as usize;
        if bytes.remaining() < n * encoding::NAIVE_PAIR_BYTES {
            return None;
        }
        let pairs =
            encoding::decode_naive(bytes.split_to(n * encoding::NAIVE_PAIR_BYTES)).ok()?;
        for (f, v) in pairs {
            debug_assert_eq!(grouping.group_of(f), rank);
            if let Some(b) = cuts.bin(f, v as f32) {
                feats.push(grouping.local_id(f));
                bins.push(b);
            }
        }
        row_ptr.push(feats.len() as u32);
    }
    if bytes.has_remaining() {
        return None;
    }
    Block::new(split, row_offset, feats, bins, row_ptr).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_cluster::Cluster;
    use gbdt_data::synthetic::SyntheticConfig;

    fn toy_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        SyntheticConfig {
            n_instances: n,
            n_features: d,
            n_classes: 2,
            density: 0.5,
            seed,
            ..Default::default()
        }
        .generate()
    }

    fn run_transform(world: usize, encoding: WireEncoding) {
        let full = toy_dataset(120, 13, 7);
        let partition = HorizontalPartition::new(full.n_instances(), world);
        let cfg = TransformConfig { encoding, ..Default::default() };
        let cluster = Cluster::new(world);
        let full_ref = &full;
        let cfg_ref = &cfg;
        let (outputs, _) = cluster.run(move |ctx| {
            let (lo, hi) = partition.bounds(ctx.rank());
            let csr = full_ref.features.to_csr().slice_rows(lo, hi);
            let shard = Dataset::new(
                gbdt_data::FeatureMatrix::Sparse(csr),
                full_ref.labels[lo..hi].to_vec(),
                full_ref.n_classes,
                "shard",
            )
            .unwrap();
            horizontal_to_vertical(ctx, &shard, partition, cfg_ref).unwrap()
        });

        // Global reference: single-pass cuts + binning.
        let ref_binned = {
            let cuts = &outputs[0].cuts;
            cuts.apply(&full)
        };

        // Every worker agrees on cuts, grouping, labels.
        for out in &outputs {
            assert_eq!(out.cuts, outputs[0].cuts);
            assert_eq!(out.grouping, outputs[0].grouping);
            assert_eq!(out.labels, full.labels);
            assert!(out.local_data.n_blocks() <= cfg.max_blocks);
            assert_eq!(out.local_data.n_rows(), full.n_instances());
        }

        // The union of vertical shards reproduces the binned matrix exactly.
        let grouping = &outputs[0].grouping;
        for (w, out) in outputs.iter().enumerate() {
            let local = out.local_data.to_binned_rows();
            assert_eq!(local.n_features(), grouping.group_len(w));
            for i in 0..full.n_instances() {
                for (local_id, &global_f) in grouping.group_features(w).iter().enumerate() {
                    assert_eq!(
                        local.get(i, local_id as u32),
                        ref_binned.get(i, global_f),
                        "worker {w} row {i} feature {global_f} (encoding {:?})",
                        cfg.encoding
                    );
                }
            }
        }
    }

    #[test]
    fn blockified_transform_preserves_data() {
        run_transform(3, WireEncoding::Blockified);
    }

    #[test]
    fn compressed_transform_preserves_data() {
        run_transform(3, WireEncoding::Compressed);
    }

    #[test]
    fn naive_transform_preserves_data() {
        run_transform(3, WireEncoding::Naive);
    }

    #[test]
    fn single_worker_transform_works() {
        run_transform(1, WireEncoding::Blockified);
    }

    #[test]
    fn many_workers_few_features() {
        // More workers than some groups have features.
        let full = toy_dataset(40, 3, 9);
        let partition = HorizontalPartition::new(full.n_instances(), 4);
        let cfg = TransformConfig::default();
        let cluster = Cluster::new(4);
        let (full_ref, cfg_ref) = (&full, &cfg);
        let (outputs, _) = cluster.run(move |ctx| {
            let (lo, hi) = partition.bounds(ctx.rank());
            let csr = full_ref.features.to_csr().slice_rows(lo, hi);
            let shard = Dataset::new(
                gbdt_data::FeatureMatrix::Sparse(csr),
                full_ref.labels[lo..hi].to_vec(),
                full_ref.n_classes,
                "shard",
            )
            .unwrap();
            horizontal_to_vertical(ctx, &shard, partition, cfg_ref).unwrap()
        });
        let total_feats: usize =
            (0..4).map(|w| outputs[0].grouping.group_len(w)).sum();
        assert_eq!(total_feats, 3);
        for out in &outputs {
            assert_eq!(out.labels.len(), 40);
        }
    }

    #[test]
    fn compression_shrinks_repartition_traffic() {
        let full = toy_dataset(200, 20, 11);
        let partition = HorizontalPartition::new(full.n_instances(), 2);
        let cluster = Cluster::new(2);
        let mut sent = Vec::new();
        for encoding in [WireEncoding::Naive, WireEncoding::Compressed, WireEncoding::Blockified] {
            let cfg = TransformConfig { encoding, ..Default::default() };
            let (full_ref, cfg_ref) = (&full, &cfg);
            let (outputs, _) = cluster.run(move |ctx| {
                let (lo, hi) = partition.bounds(ctx.rank());
                let csr = full_ref.features.to_csr().slice_rows(lo, hi);
                let shard = Dataset::new(
                    gbdt_data::FeatureMatrix::Sparse(csr),
                    full_ref.labels[lo..hi].to_vec(),
                    full_ref.n_classes,
                    "shard",
                )
                .unwrap();
                horizontal_to_vertical(ctx, &shard, partition, cfg_ref).unwrap()
            });
            sent.push(
                outputs.iter().map(|o| o.report.repartition_bytes_sent).sum::<u64>(),
            );
        }
        let (naive, compressed, blockified) = (sent[0], sent[1], sent[2]);
        assert!(
            compressed < naive,
            "compressed {compressed} should beat naive {naive}"
        );
        // Blockify removes per-row framing in favour of one pointer array —
        // byte counts are close (its win is (de)serialization time); allow a
        // small header-sized slack but never more than compressed + headers.
        assert!(
            blockified <= compressed + 64,
            "blockified {blockified} should not exceed compressed {compressed} by more than headers"
        );
        // The pair compression alone is ~4x (12 bytes -> 3 with row framing).
        assert!(naive as f64 / blockified as f64 > 3.0);
    }
}
