//! Stress/consistency tests of the cluster substrate beyond unit scale:
//! interleaved collectives, large payloads, and agreement between the three
//! aggregation primitives.

#![allow(clippy::unwrap_used)]

use gbdt_cluster::collectives::segment_bounds;
use gbdt_cluster::{Cluster, NetworkCostModel};

#[test]
fn interleaved_collectives_keep_tags_aligned() {
    // A mix of broadcasts, all-reduces and gathers in a loop — any tag
    // misalignment would deadlock or cross wires.
    let cluster = Cluster::with_cost(4, NetworkCostModel::infinite());
    let (outputs, _) = cluster.run(|ctx| {
        let mut acc = 0.0f64;
        for round in 0..10 {
            let mut buf = vec![(ctx.rank() + round) as f64; 17];
            ctx.comm.all_reduce_f64(&mut buf).unwrap();
            acc += buf[0];
            let payload = if ctx.rank() == round % 4 {
                bytes::Bytes::from(vec![round as u8])
            } else {
                bytes::Bytes::new()
            };
            let got = ctx.comm.broadcast(round % 4, payload).unwrap();
            assert_eq!(got[0] as usize, round);
            ctx.comm.barrier().unwrap();
        }
        acc
    });
    // Each round's all-reduce sums (0+r)+(1+r)+(2+r)+(3+r) = 6 + 4r.
    let expected: f64 = (0..10).map(|r| 6.0 + 4.0 * r as f64).sum();
    for o in outputs {
        assert_eq!(o, expected);
    }
}

#[test]
fn aggregation_primitives_agree_on_large_buffers() {
    // all-reduce, reduce-to-root+broadcast, and PS-sharded reduction must
    // produce identical sums (up to fp ordering) on a 100k-element buffer.
    let len = 100_000usize;
    let world = 3;
    let cluster = Cluster::with_cost(world, NetworkCostModel::infinite());
    let (outputs, stats) = cluster.run(|ctx| {
        let base: Vec<f64> =
            (0..len).map(|i| ((ctx.rank() + 1) * (i % 97)) as f64).collect();

        let mut ring = base.clone();
        ctx.comm.all_reduce_f64(&mut ring).unwrap();

        let mut rooted = base.clone();
        ctx.comm.reduce_to_root_f64(0, &mut rooted).unwrap();
        ctx.comm.broadcast_f64(0, &mut rooted).unwrap();

        let ranges: Vec<_> = (0..ctx.world()).map(|w| segment_bounds(len, ctx.world(), w)).collect();
        let shard = ctx.comm.ps_push_and_reduce(&base, &ranges).unwrap();
        let (lo, _hi) = ranges[ctx.rank()];

        // Compare my PS shard against the same region of the ring result.
        for (k, &v) in shard.iter().enumerate() {
            assert_eq!(v, ring[lo + k], "ps vs ring at {k}");
        }
        for (a, b) in ring.iter().zip(&rooted) {
            assert_eq!(a, b, "ring vs rooted");
        }
        ring[0]
    });
    // Element 0 is (rank + 1) · (0 % 97) = 0 on every worker.
    let expected = 0.0f64;
    for o in outputs {
        assert_eq!(o, expected);
    }
    // 100k f64 across three aggregation schemes: traffic was really moved.
    assert!(stats.total_bytes_sent() > (len * 8) as u64);
}

#[test]
fn cost_model_scales_with_bandwidth() {
    // Same program, 10x bandwidth -> ~1/10 modelled comm time (latency
    // fixed at zero for exactness).
    let run = |gbps: f64| {
        let model = NetworkCostModel { latency_s: 0.0, bandwidth_bytes_per_s: gbps * 1e9 / 8.0 };
        let cluster = Cluster::with_cost(2, model);
        let (_, stats) = cluster.run(|ctx| {
            let mut buf = vec![1.0f64; 50_000];
            ctx.comm.all_reduce_f64(&mut buf).unwrap();
        });
        stats.comm_seconds()
    };
    let slow = run(1.0);
    let fast = run(10.0);
    assert!((slow / fast - 10.0).abs() < 0.5, "slow {slow} fast {fast}");
}

#[test]
fn per_worker_byte_accounting_is_symmetric() {
    let cluster = Cluster::with_cost(4, NetworkCostModel::infinite());
    let (_, stats) = cluster.run(|ctx| {
        let payload = bytes::Bytes::from(vec![0u8; 1000]);
        ctx.comm.all_gather(payload).unwrap();
    });
    let sent: u64 = stats.workers.iter().map(|w| w.bytes_sent).sum();
    let received: u64 = stats.workers.iter().map(|w| w.bytes_received).sum();
    assert_eq!(sent, received, "every sent byte is received exactly once");
    assert_eq!(sent, 4 * 3 * 1000);
    for w in &stats.workers {
        assert_eq!(w.messages_sent, 3);
    }
}
