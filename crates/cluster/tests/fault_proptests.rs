//! Property tests for the failure layer (ISSUE satellite c):
//!
//! * tag-matched `recv` delivers the right payloads under **arbitrary send
//!   reordering** (the pending buffer absorbs out-of-order arrivals);
//! * the parameter-server emulation merges **bit-identical histograms**
//!   under seeded duplication/drop faults, with the duplicates detected and
//!   discarded at intake.

#![allow(clippy::unwrap_used)]

use bytes::Bytes;
use gbdt_cluster::comm::Comm;
use gbdt_cluster::{FaultPlan, NetworkCostModel, WireCodec};
use proptest::prelude::*;
use std::thread;

/// Deterministic per-rank "histogram" so every worker pushes distinct data.
fn histogram_for(rank: usize, len: usize) -> Vec<f64> {
    (0..len).map(|i| (rank * 1000 + i) as f64 * 0.5 - 3.0).collect()
}

/// Deterministic Fisher–Yates permutation of `0..n` (splitmix64-driven;
/// the proptest shim has no shuffle strategy).
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    order
}

/// Even shard ranges covering `len` slots across `world` servers.
fn shard_ranges(world: usize, len: usize) -> Vec<(usize, usize)> {
    (0..world)
        .map(|s| (s * len / world, (s + 1) * len / world))
        .collect()
}

/// Runs `ps_push_and_reduce_codec` on every rank of a fresh mesh and
/// returns each server's merged shard plus total duplicates dropped.
fn run_ps(
    world: usize,
    len: usize,
    faults: Option<FaultPlan>,
) -> (Vec<Vec<f64>>, u64) {
    let (mesh, _control) = Comm::mesh_with(world, NetworkCostModel::lab_cluster(), faults);
    let ranges = shard_ranges(world, len);
    let handles: Vec<_> = mesh
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            let ranges = ranges.clone();
            thread::spawn(move || {
                let buf = histogram_for(rank, len);
                // Two rounds: the second round's receives drain any of the
                // first round's duplicates still buffered in the channel, so
                // the duplicate counter reflects every injected copy.
                let first = comm
                    .ps_push_and_reduce_codec(WireCodec::Dense, &buf, &ranges)
                    .unwrap();
                let second = comm
                    .ps_push_and_reduce_codec(WireCodec::Dense, &buf, &ranges)
                    .unwrap();
                assert_eq!(first, second, "rounds merge identically");
                (first, comm.counters().duplicates_dropped)
            })
        })
        .collect();
    let mut shards = Vec::new();
    let mut dup_total = 0;
    for h in handles {
        let (shard, dups) = h.join().unwrap();
        shards.push(shard);
        dup_total += dups;
    }
    (shards, dup_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Messages sent in any order are received correctly in canonical tag
    /// order: the `(from, tag)` match plus the pending buffer make the
    /// receive path order-independent.
    #[test]
    fn recv_is_order_independent(n in 1usize..12, shuffle_seed in any::<u64>()) {
        let send_order = shuffled(n, shuffle_seed);
        let (mesh, _control) =
            Comm::mesh_with(2, NetworkCostModel::lab_cluster(), None);
        let mut it = mesh.into_iter();
        let (tx, rx) = (it.next().unwrap(), it.next().unwrap());
        let sender = thread::spawn(move || {
            for tag in send_order {
                let payload = Bytes::from(vec![tag as u8; tag + 1]);
                tx.send(1, tag as u64, payload).unwrap();
            }
        });
        for tag in 0..n {
            let got = rx.recv(0, tag as u64).unwrap();
            prop_assert_eq!(got.len(), tag + 1);
            prop_assert!(got.iter().all(|&b| b == tag as u8));
        }
        sender.join().unwrap();
    }

    /// The PS merge is bit-identical under any seeded duplication/drop mix:
    /// duplicates are discarded at intake, drops are retried, and every
    /// server ends with exactly the fault-free shard.
    #[test]
    fn ps_merge_survives_duplication_and_reordering(
        world in 2usize..5,
        len in 1usize..40,
        seed in any::<u64>(),
        dup_p in 0.0f64..0.9,
        drop_p in 0.0f64..0.3,
    ) {
        let (clean, clean_dups) = run_ps(world, len, None);
        prop_assert_eq!(clean_dups, 0);
        // Cross-check the merge against a direct sum.
        let ranges = shard_ranges(world, len);
        for (server, &(lo, hi)) in ranges.iter().enumerate() {
            for (slot, i) in (lo..hi).enumerate() {
                let want: f64 =
                    (0..world).map(|r| histogram_for(r, len)[i]).sum();
                prop_assert!((clean[server][slot] - want).abs() < 1e-9);
            }
        }
        let plan = FaultPlan::new(seed).with_dup(dup_p).with_drop(drop_p);
        let (faulted, _) = run_ps(world, len, Some(plan));
        // Bit-identical merge, not just approximately equal.
        prop_assert_eq!(clean, faulted);
    }
}

/// With certain duplication every inter-rank message is delivered twice;
/// the receiver must detect and discard each duplicate.
#[test]
fn certain_duplication_is_fully_detected() {
    let world = 3;
    let len = 12;
    let (clean, _) = run_ps(world, len, None);
    let plan = FaultPlan::new(41).with_dup(1.0);
    let (faulted, dups) = run_ps(world, len, Some(plan));
    assert_eq!(clean, faulted);
    // Every rank pushes world-1 shards per round; each inter-rank message
    // is duplicated exactly once. Round 1's duplicates are all drained (and
    // counted) by round 2's receives; round 2 may leave trailing duplicates
    // unread, so the counter is bounded by the two-round total.
    let per_round = (world * (world - 1)) as u64;
    assert!(
        (per_round..=2 * per_round).contains(&dups),
        "expected {per_round}..={} duplicates, saw {dups}",
        2 * per_round
    );
}
