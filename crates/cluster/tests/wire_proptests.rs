//! Property-based round-trips of the histogram wire codecs (DESIGN.md §4.7).
//!
//! Buffers are shaped like real gradient histograms — `(g, h)` pairs per
//! bin, with a random fraction of completely empty bins — so the sparse
//! encoder sees the zero patterns the trainers actually produce.

use gbdt_cluster::wire::{self, WireCodec};
use proptest::prelude::*;

/// Histogram-shaped buffers: bins of `(g, h)` pairs, ~half of them empty.
fn histogram_buffer() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(prop::option::of((-1e6f64..1e6, 0.0f64..1e3)), 0..96).prop_map(
        |bins| {
            let mut buf = Vec::with_capacity(bins.len() * 2);
            for bin in bins {
                let (g, h) = bin.unwrap_or((0.0, 0.0));
                buf.push(g);
                buf.push(h);
            }
            buf
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every lossless codec must reproduce the exact input.
    #[test]
    fn lossless_codecs_roundtrip(buf in histogram_buffer()) {
        for codec in [WireCodec::Dense, WireCodec::Sparse, WireCodec::Auto] {
            let mut out = vec![0.0; buf.len()];
            wire::decode_into(&wire::encode(codec, &buf), &mut out);
            prop_assert_eq!(&out, &buf, "{}", codec);
        }
    }

    /// The f32 codec quantizes each value through f32 and nothing else.
    #[test]
    fn f32_codec_roundtrips_to_f32_precision(buf in histogram_buffer()) {
        let mut out = vec![0.0; buf.len()];
        wire::decode_into(&wire::encode(WireCodec::F32, &buf), &mut out);
        let expected: Vec<f64> = buf.iter().map(|v| f64::from(*v as f32)).collect();
        prop_assert_eq!(out, expected);
    }

    /// Sparse decode-add (which skips empty bins) must match the dense
    /// element-wise add bit for bit.
    #[test]
    fn decode_add_matches_dense_add(buf in histogram_buffer(), base in -1e3f64..1e3) {
        let reference: Vec<f64> = buf.iter().map(|v| base + v).collect();
        for codec in [WireCodec::Sparse, WireCodec::Auto] {
            let mut acc = vec![base; buf.len()];
            wire::decode_add(&wire::encode(codec, &buf), &mut acc);
            prop_assert_eq!(&acc, &reference, "{}", codec);
        }
    }

    /// Auto always ships the smaller of the two lossless layouts.
    #[test]
    fn auto_is_the_minimum_of_both_layouts(buf in histogram_buffer()) {
        let auto = wire::encode(WireCodec::Auto, &buf).len();
        let dense = wire::encode(WireCodec::Dense, &buf).len();
        let sparse = wire::encode(WireCodec::Sparse, &buf).len();
        prop_assert_eq!(auto, dense.min(sparse));
    }
}

/// Deterministic edge shapes: empty, all-zero, single-nonzero, fully dense,
/// and a multi-class histogram (C = 3 widens the per-bin stride).
#[test]
fn edge_case_buffers_roundtrip_under_every_codec() {
    let single_nonzero = {
        let mut v = vec![0.0; 41];
        v[17] = 3.5;
        v
    };
    let multiclass: Vec<f64> = (0..3 * 4 * 3 * 2)
        .map(|i| if i % 5 == 0 { 0.0 } else { (i as f64) * 0.25 - 8.0 })
        .collect();
    let cases: Vec<Vec<f64>> = vec![
        vec![],
        vec![0.0; 40],
        single_nonzero,
        (1..=40).map(f64::from).collect(),
        multiclass,
    ];
    for buf in &cases {
        for codec in [WireCodec::Dense, WireCodec::Sparse, WireCodec::Auto] {
            let mut out = vec![1.0; buf.len()]; // nonzero garbage must be overwritten
            wire::decode_into(&wire::encode(codec, buf), &mut out);
            assert_eq!(&out, buf, "{codec} len={}", buf.len());
        }
        let mut out = vec![1.0; buf.len()];
        wire::decode_into(&wire::encode(WireCodec::F32, buf), &mut out);
        let expected: Vec<f64> = buf.iter().map(|v| f64::from(*v as f32)).collect();
        assert_eq!(out, expected, "f32 len={}", buf.len());
    }
}
