//! Collective operations over the mesh: broadcast, gather, all-gather, ring
//! all-reduce and ring reduce-scatter — the "different aggregation methods"
//! of §3.1.3 (map-reduce, all-reduce, reduce-scatter).
//!
//! Every rank must call the same collectives in the same program order; tags
//! are auto-allocated from a per-endpoint counter that stays aligned across
//! ranks. All reductions run in deterministic order, so repeated runs produce
//! bit-identical results.

use crate::comm::Comm;
use bytes::Bytes;

fn f64s_to_bytes(buf: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(buf.len() * 8);
    for v in buf {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

fn bytes_to_f64s(bytes: &Bytes) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|ch| f64::from_le_bytes(ch.try_into().unwrap()))
        .collect()
}

/// Segment `[start, end)` of a length-`len` buffer owned by `seg` of `world`.
pub fn segment_bounds(len: usize, world: usize, seg: usize) -> (usize, usize) {
    let base = len / world;
    let extra = len % world;
    let start = seg * base + seg.min(extra);
    let size = base + usize::from(seg < extra);
    (start, start + size)
}

impl Comm {
    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.all_gather(Bytes::new());
    }

    /// Broadcasts `payload` (significant at `root`) to every rank; returns
    /// the received payload everywhere.
    pub fn broadcast(&self, root: usize, payload: Bytes) -> Bytes {
        let tag = self.alloc_collective_tag();
        if self.rank() == root {
            for to in 0..self.world() {
                if to != root {
                    self.send(to, tag, payload.clone());
                }
            }
            payload
        } else {
            self.recv(root, tag)
        }
    }

    /// Gathers every rank's payload at `root` (rank order). Non-roots get
    /// `None`.
    pub fn gather(&self, root: usize, payload: Bytes) -> Option<Vec<Bytes>> {
        let tag = self.alloc_collective_tag();
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.world());
            for from in 0..self.world() {
                if from == root {
                    out.push(payload.clone());
                } else {
                    out.push(self.recv(from, tag));
                }
            }
            Some(out)
        } else {
            self.send(root, tag, payload);
            None
        }
    }

    /// All ranks exchange payloads; returns all of them in rank order.
    pub fn all_gather(&self, payload: Bytes) -> Vec<Bytes> {
        let tag = self.alloc_collective_tag();
        for to in 0..self.world() {
            if to != self.rank() {
                self.send(to, tag, payload.clone());
            }
        }
        let mut out = Vec::with_capacity(self.world());
        for from in 0..self.world() {
            if from == self.rank() {
                out.push(payload.clone());
            } else {
                out.push(self.recv(from, tag));
            }
        }
        out
    }

    /// Reduces (element-wise sum) `buf` to `root` in rank order — the
    /// gather-style aggregation whose single-point bottleneck DimBoost's
    /// parameter server avoids (§4.1). Non-roots keep their input.
    pub fn reduce_to_root_f64(&self, root: usize, buf: &mut [f64]) {
        let tag = self.alloc_collective_tag();
        if self.rank() == root {
            for from in 0..self.world() {
                if from == root {
                    continue;
                }
                let other = bytes_to_f64s(&self.recv(from, tag));
                assert_eq!(other.len(), buf.len(), "reduce buffer length mismatch");
                for (a, b) in buf.iter_mut().zip(&other) {
                    *a += b;
                }
            }
        } else {
            self.send(root, tag, f64s_to_bytes(buf));
        }
    }

    /// Broadcasts an f64 buffer from `root`, overwriting `buf` elsewhere.
    pub fn broadcast_f64(&self, root: usize, buf: &mut [f64]) {
        let payload =
            if self.rank() == root { f64s_to_bytes(buf) } else { Bytes::new() };
        let received = self.broadcast(root, payload);
        if self.rank() != root {
            let vals = bytes_to_f64s(&received);
            assert_eq!(vals.len(), buf.len(), "broadcast buffer length mismatch");
            buf.copy_from_slice(&vals);
        }
    }

    /// Ring reduce-scatter: on return, rank `r` holds the fully reduced
    /// segment `r` of `buf` (bounds from [`segment_bounds`]); the rest of
    /// `buf` is garbage. Each rank moves `(W−1)/W · len` elements each way —
    /// the bandwidth-optimal aggregation LightGBM uses (§4.1).
    pub fn reduce_scatter_f64(&self, buf: &mut [f64]) -> (usize, usize) {
        let w = self.world();
        let r = self.rank();
        if w == 1 {
            return (0, buf.len());
        }
        let tag = self.alloc_collective_tags(w as u64 - 1);
        let next = (r + 1) % w;
        let prev = (r + w - 1) % w;
        // Step s: send segment (r − s) mod w to next, receive and accumulate
        // segment (r − s − 1) mod w from prev. After w−1 steps rank r fully
        // owns segment (r + 1) mod w; a final rotation hop below leaves it
        // with segment r.
        for s in 0..w - 1 {
            let send_seg = (r + w - s) % w;
            let recv_seg = (r + w - s - 1) % w;
            let (slo, shi) = segment_bounds(buf.len(), w, send_seg);
            self.send(next, tag + s as u64, f64s_to_bytes(&buf[slo..shi]));
            let incoming = bytes_to_f64s(&self.recv(prev, tag + s as u64));
            let (rlo, rhi) = segment_bounds(buf.len(), w, recv_seg);
            assert_eq!(incoming.len(), rhi - rlo, "segment length mismatch");
            for (a, b) in buf[rlo..rhi].iter_mut().zip(&incoming) {
                *a += b;
            }
        }
        // After the loop, rank r fully owns segment (r + 1) mod w. Rotate one
        // more hop so rank r ends with segment r (one extra segment-sized
        // transfer, keeping the API intuitive).
        let owned = (r + 1) % w;
        let (olo, ohi) = segment_bounds(buf.len(), w, owned);
        let tag2 = self.alloc_collective_tag();
        // Rank r owns segment r+1, which is exactly what `next` wants; my
        // segment r sits on `prev`.
        self.send(next, tag2, f64s_to_bytes(&buf[olo..ohi]));
        let mine = bytes_to_f64s(&self.recv(prev, tag2));
        let (mlo, mhi) = segment_bounds(buf.len(), w, r);
        assert_eq!(mine.len(), mhi - mlo, "final segment length mismatch");
        buf[mlo..mhi].copy_from_slice(&mine);
        (mlo, mhi)
    }

    /// Ring all-gather of segments: rank `r` contributes segment `r` of
    /// `buf`; on return every rank holds the complete buffer.
    pub fn all_gather_segments_f64(&self, buf: &mut [f64]) {
        let w = self.world();
        let r = self.rank();
        if w == 1 {
            return;
        }
        let tag = self.alloc_collective_tags(w as u64 - 1);
        let next = (r + 1) % w;
        let prev = (r + w - 1) % w;
        for s in 0..w - 1 {
            let send_seg = (r + w - s) % w;
            let recv_seg = (r + w - s - 1) % w;
            let (slo, shi) = segment_bounds(buf.len(), w, send_seg);
            self.send(next, tag + s as u64, f64s_to_bytes(&buf[slo..shi]));
            let incoming = bytes_to_f64s(&self.recv(prev, tag + s as u64));
            let (rlo, rhi) = segment_bounds(buf.len(), w, recv_seg);
            assert_eq!(incoming.len(), rhi - rlo, "segment length mismatch");
            buf[rlo..rhi].copy_from_slice(&incoming);
        }
    }

    /// Ring all-reduce: element-wise sum of `buf` across all ranks, complete
    /// everywhere (reduce-scatter + all-gather; ~2·len traffic per rank).
    pub fn all_reduce_f64(&self, buf: &mut [f64]) {
        self.reduce_scatter_f64(buf);
        self.all_gather_segments_f64(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::NetworkCostModel;

    /// Runs `f(rank)` on a `world`-sized mesh, returning per-rank outputs.
    fn run<T: Send>(world: usize, f: impl Fn(&Comm) -> T + Sync) -> Vec<T> {
        let mesh = Comm::mesh(world, NetworkCostModel::infinite());
        let mut out: Vec<Option<T>> = (0..world).map(|_| None).collect();
        std::thread::scope(|s| {
            for (comm, slot) in mesh.into_iter().zip(out.iter_mut()) {
                let f = &f;
                s.spawn(move || {
                    *slot = Some(f(&comm));
                });
            }
        });
        out.into_iter().map(Option::unwrap).collect()
    }

    #[test]
    fn segment_bounds_cover_buffer() {
        let len = 10;
        let w = 3;
        let segs: Vec<_> = (0..w).map(|s| segment_bounds(len, w, s)).collect();
        assert_eq!(segs, vec![(0, 4), (4, 7), (7, 10)]);
        // Degenerate: more workers than elements.
        let segs: Vec<_> = (0..4).map(|s| segment_bounds(2, 4, s)).collect();
        assert_eq!(segs, vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
    }

    #[test]
    fn broadcast_delivers_everywhere() {
        let got = run(4, |c| {
            let payload = if c.rank() == 1 { Bytes::from_static(b"root") } else { Bytes::new() };
            c.broadcast(1, payload)
        });
        for g in got {
            assert_eq!(&g[..], b"root");
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let got = run(3, |c| {
            let payload = Bytes::from(vec![c.rank() as u8]);
            c.gather(0, payload)
        });
        assert_eq!(
            got[0].as_ref().unwrap().iter().map(|b| b[0]).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(got[1].is_none());
        assert!(got[2].is_none());
    }

    #[test]
    fn all_gather_everywhere() {
        let got = run(3, |c| {
            c.all_gather(Bytes::from(vec![c.rank() as u8 * 10]))
        });
        for g in got {
            assert_eq!(g.iter().map(|b| b[0]).collect::<Vec<_>>(), vec![0, 10, 20]);
        }
    }

    #[test]
    fn reduce_to_root_sums() {
        let got = run(4, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.reduce_to_root_f64(2, &mut buf);
            buf
        });
        assert_eq!(got[2], vec![0.0 + 1.0 + 2.0 + 3.0, 4.0]);
        assert_eq!(got[0], vec![0.0, 1.0]); // non-root unchanged
    }

    #[test]
    fn broadcast_f64_overwrites() {
        let got = run(3, |c| {
            let mut buf = if c.rank() == 0 { vec![1.5, 2.5] } else { vec![0.0, 0.0] };
            c.broadcast_f64(0, &mut buf);
            buf
        });
        for g in got {
            assert_eq!(g, vec![1.5, 2.5]);
        }
    }

    #[test]
    fn ring_all_reduce_matches_sum() {
        for world in [1, 2, 3, 4, 5] {
            let len = 11;
            let got = run(world, move |c| {
                let mut buf: Vec<f64> =
                    (0..len).map(|i| (c.rank() * 100 + i) as f64).collect();
                c.all_reduce_f64(&mut buf);
                buf
            });
            let expected: Vec<f64> = (0..len)
                .map(|i| (0..world).map(|r| (r * 100 + i) as f64).sum())
                .collect();
            for (r, g) in got.iter().enumerate() {
                assert_eq!(g, &expected, "world={world} rank={r}");
            }
        }
    }

    #[test]
    fn reduce_scatter_owns_reduced_segment() {
        for world in [2, 3, 4] {
            let len = 10;
            let got = run(world, move |c| {
                let mut buf: Vec<f64> = (0..len).map(|i| (c.rank() + i) as f64).collect();
                let (lo, hi) = c.reduce_scatter_f64(&mut buf);
                (lo, hi, buf[lo..hi].to_vec())
            });
            for (r, (lo, hi, seg)) in got.iter().enumerate() {
                let (elo, ehi) = segment_bounds(len, world, r);
                assert_eq!((*lo, *hi), (elo, ehi), "world={world} rank={r}");
                let expected: Vec<f64> = (elo..ehi)
                    .map(|i| (0..world).map(|w| (w + i) as f64).sum())
                    .collect();
                assert_eq!(seg, &expected, "world={world} rank={r}");
            }
        }
    }

    #[test]
    fn collective_byte_accounting_is_exact() {
        let mesh = Comm::mesh(2, NetworkCostModel::infinite());
        let counters = std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|c| {
                    s.spawn(move || {
                        let payload = Bytes::from(vec![0u8; 100]);
                        c.all_gather(payload);
                        c.counters()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        // Each of 2 workers sends 100 bytes to 1 peer and receives 100.
        for c in counters {
            assert_eq!(c.bytes_sent, 100);
            assert_eq!(c.bytes_received, 100);
        }
    }
}
